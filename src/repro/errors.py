"""Exception hierarchy for the Scorpion reproduction.

Every error raised by this package derives from :class:`ScorpionError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure families below.
"""

from __future__ import annotations


class ScorpionError(Exception):
    """Base class for all errors raised by this package."""


class SchemaError(ScorpionError):
    """A table, column, or query referenced the schema inconsistently.

    Raised for unknown column names, duplicate column names, length
    mismatches between columns, and type mismatches between a column and
    the values supplied for it.
    """


class QueryError(ScorpionError):
    """A group-by query or SQL string was malformed or unexecutable."""


class PredicateError(ScorpionError):
    """A predicate was constructed or combined inconsistently.

    Examples: a range clause with ``lo > hi``, two clauses over the same
    attribute in one conjunction, or merging clauses of different kinds.
    """


class AggregateError(ScorpionError):
    """An aggregate function was misused.

    Raised when an aggregate is evaluated on an empty input where its
    value is undefined, when incremental removal is requested from an
    aggregate that does not support it, or when ``remove`` would produce
    a state describing a negative number of rows.
    """


class PartitionerError(ScorpionError):
    """A partitioning algorithm received an unusable problem instance."""


class BackendError(ScorpionError):
    """An execution backend was misconfigured or asked for an
    unsupported pushdown.

    Raised for unknown backend names, for pushdown requests the engine
    cannot express (e.g. a cube over a continuous attribute), and for
    cube size limits.  Eligibility misses on supported shapes are *not*
    errors — backends answer them through the numpy reference path and
    count a fallback instead.
    """


class BackendUnavailable(BackendError):
    """The requested execution backend's engine is not importable.

    ``resolve_backend`` catches this and degrades gracefully to the
    numpy reference backend with a warning, so an explicit
    ``--backend duckdb`` on a machine without ``duckdb`` still serves
    correct (numpy-computed) results.
    """


class DatasetError(ScorpionError):
    """A synthetic dataset generator received inconsistent parameters."""


class ParallelError(ScorpionError):
    """The shared-memory parallel scoring executor failed or was
    misconfigured.

    Raised for invalid worker counts and wrapped around worker-pool
    failures (a crashed worker process, a shard that exceeded its
    timeout, or a shard that could not be submitted).  The scorer
    absorbs executor failures internally — retrying, restarting the
    pool, and degrading single batches to serial scoring — so callers
    of ``score_batch`` only see this exception for configuration
    mistakes.
    """


class ResourceExhausted(ScorpionError):
    """The service ran out of a bounded resource and shedding did not
    help.

    Raised when a problem build hits :class:`MemoryError` even after
    the cache shed every unpinned entry and the build was retried once
    (serve mode maps it to the structured ``oom_retry`` error code),
    and by the serve loop's backpressure path for requests beyond the
    in-flight limit (structured code ``overloaded``).
    """
