"""Filter-based dimensionality reduction (paper Section 6.4).

The paper defers automatic attribute selection to future work but names
the technique: filter feature selection via correlation / mutual
information scores [13], used to drop non-informative explanation
attributes before partitioning.  This package implements it.
"""

from repro.featsel.filters import (
    attribute_relevance,
    mutual_information,
    pearson_correlation,
    select_attributes,
)

__all__ = [
    "attribute_relevance",
    "mutual_information",
    "pearson_correlation",
    "select_attributes",
]
