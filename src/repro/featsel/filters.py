"""Correlation and mutual-information relevance filters.

Given the per-tuple influence values the DT path computes anyway, these
filters score each candidate explanation attribute by how much it tells
us about influence — attributes scoring near zero are noise dimensions
the partitioners need not search.

* continuous attributes: absolute Pearson correlation with influence;
* discrete attributes: mutual information between the attribute and
  binned influence, normalized to [0, 1] by the influence entropy.

``select_attributes`` applies the filter to a Scorpion problem and
returns the attributes worth keeping, so callers can run
``ScorpionQuery(..., attributes=selected)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.errors import PartitionerError


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (0.0 when either side is
    constant)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise PartitionerError(f"shape mismatch: {x.shape} vs {y.shape}")
    if len(x) < 2:
        return 0.0
    x_std = float(np.std(x))
    y_std = float(np.std(y))
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    return float(np.mean((x - np.mean(x)) * (y - np.mean(y))) / (x_std * y_std))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-np.sum(probabilities * np.log2(probabilities)))


def mutual_information(labels, y: np.ndarray, n_bins: int = 8) -> float:
    """Mutual information between a discrete variable and a continuous
    one (the continuous side is equi-width binned)."""
    y = np.asarray(y, dtype=np.float64)
    if len(labels) != len(y):
        raise PartitionerError("labels and values must be the same length")
    if len(y) == 0:
        return 0.0
    lo, hi = float(np.min(y)), float(np.max(y))
    if lo == hi:
        return 0.0
    bins = np.clip(((y - lo) / (hi - lo) * n_bins).astype(int), 0, n_bins - 1)
    label_codes: dict = {}
    codes = np.empty(len(y), dtype=np.int64)
    for i, label in enumerate(labels):
        codes[i] = label_codes.setdefault(label, len(label_codes))
    joint = np.zeros((len(label_codes), n_bins))
    for code, bin_index in zip(codes, bins):
        joint[code, bin_index] += 1
    h_label = _entropy(joint.sum(axis=1))
    h_bin = _entropy(joint.sum(axis=0))
    h_joint = _entropy(joint.ravel())
    return max(h_label + h_bin - h_joint, 0.0)


def attribute_relevance(problem: ScorpionQuery,
                        scorer: InfluenceScorer | None = None,
                        ) -> dict[str, float]:
    """Relevance score in [0, 1] for each explanation attribute.

    Continuous attributes score |Pearson correlation| between the
    attribute and per-tuple influence over the outlier groups; discrete
    attributes score mutual information normalized by the influence-bin
    entropy.
    """
    scorer = scorer or InfluenceScorer(problem)
    rows = np.concatenate([ctx.indices for ctx in scorer.outlier_contexts])
    influence = np.concatenate([
        np.nan_to_num(scorer.tuple_influences(ctx), nan=0.0, posinf=0.0, neginf=0.0)
        for ctx in scorer.outlier_contexts
    ])
    relevance: dict[str, float] = {}
    for spec in problem.domain:
        values = problem.table.values(spec.name)[rows]
        if spec.is_continuous:
            relevance[spec.name] = abs(pearson_correlation(
                np.asarray(values, dtype=np.float64), influence))
        else:
            lo, hi = float(np.min(influence)), float(np.max(influence))
            if lo == hi:
                relevance[spec.name] = 0.0
                continue
            n_bins = 8
            bins = np.clip(((influence - lo) / (hi - lo) * n_bins).astype(int),
                           0, n_bins - 1)
            h_influence = _entropy(np.bincount(bins, minlength=n_bins).astype(float))
            mi = mutual_information(values, influence, n_bins=n_bins)
            relevance[spec.name] = mi / h_influence if h_influence > 0 else 0.0
    return relevance


def select_attributes(problem: ScorpionQuery, threshold: float = 0.05,
                      min_keep: int = 1,
                      scorer: InfluenceScorer | None = None) -> list[str]:
    """Attributes whose relevance clears ``threshold`` (always keeping at
    least the ``min_keep`` best so the search space never empties)."""
    if min_keep < 1:
        raise PartitionerError(f"min_keep must be >= 1, got {min_keep}")
    relevance = attribute_relevance(problem, scorer)
    ordered = sorted(relevance, key=lambda a: relevance[a], reverse=True)
    kept = [a for a in ordered if relevance[a] >= threshold]
    if len(kept) < min_keep:
        kept = ordered[:min_keep]
    return kept
