"""Attribute domains and the NAIVE predicate-space enumerator.

:class:`Domain` records, for every explanation attribute (``A_rest``),
its observed range (continuous) or distinct values (discrete).  All
partitioners derive their search space from it, and the Merger's
cached-tuple approximation uses it for relative box volumes.

:class:`PredicateEnumerator` generates the NAIVE search space lazily in
increasing complexity order — the Section 8.2 modification that lets the
exhaustive algorithm emit its best-so-far predicate under a time budget.
Complexity is graded exactly as the paper describes: first by the number
of clauses in the predicate, then by the size of its largest discrete
value-set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import PredicateError
from repro.predicates.clause import Clause, RangeClause, SetClause
from repro.predicates.discretizer import EquiWidthDiscretizer
from repro.predicates.predicate import Predicate
from repro.table.schema import ColumnKind
from repro.table.table import Table


@dataclass(frozen=True)
class AttributeDomain:
    """Observed domain of one attribute."""

    name: str
    kind: ColumnKind
    lo: float = 0.0
    hi: float = 0.0
    values: tuple = ()

    @property
    def is_continuous(self) -> bool:
        return self.kind is ColumnKind.CONTINUOUS

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def full_clause(self) -> Clause:
        """A clause covering the entire domain."""
        if self.is_continuous:
            return RangeClause(self.name, self.lo, self.hi, include_hi=True)
        return SetClause(self.name, self.values)

    def clause_fraction(self, clause: Clause) -> float:
        """Fraction of this domain the clause covers (volume term)."""
        if self.is_continuous:
            if not isinstance(clause, RangeClause):
                raise PredicateError(f"range domain {self.name!r} vs clause {clause!r}")
            if self.width == 0:
                return 1.0
            overlap = min(clause.hi, self.hi) - max(clause.lo, self.lo)
            return max(overlap, 0.0) / self.width
        if not isinstance(clause, SetClause):
            raise PredicateError(f"set domain {self.name!r} vs clause {clause!r}")
        if not self.values:
            return 1.0
        return len(clause.values & set(self.values)) / len(self.values)


class Domain:
    """Domains of all explanation attributes, derived from a table.

    >>> # doctest setup omitted; see tests/test_space.py
    """

    def __init__(self, attributes: Sequence[AttributeDomain]):
        self._by_name = {a.name: a for a in attributes}
        self._order = tuple(a.name for a in attributes)
        if len(self._by_name) != len(self._order):
            raise PredicateError("duplicate attribute in domain")

    @classmethod
    def from_table(cls, table: Table, attributes: Iterable[str]) -> "Domain":
        """Observe attribute domains from the data."""
        domains = []
        for name in attributes:
            spec = table.schema[name]
            column = table.column(name)
            if spec.is_continuous:
                if len(column) == 0:
                    raise PredicateError(f"cannot derive domain of empty column {name!r}")
                domains.append(AttributeDomain(
                    name=name, kind=ColumnKind.CONTINUOUS,
                    lo=column.min(), hi=column.max(),
                ))
            else:
                domains.append(AttributeDomain(
                    name=name, kind=ColumnKind.DISCRETE,
                    values=tuple(column.distinct()),
                ))
        return cls(domains)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self._order

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> AttributeDomain:
        try:
            return self._by_name[name]
        except KeyError:
            raise PredicateError(f"attribute {name!r} not in domain") from None

    def __iter__(self) -> Iterator[AttributeDomain]:
        return (self._by_name[name] for name in self._order)

    def volume_fraction(self, predicate: Predicate) -> float:
        """Relative volume of the predicate's box inside the domain
        (unconstrained attributes contribute a factor of 1)."""
        volume = 1.0
        for clause in predicate:
            if clause.attribute in self._by_name:
                volume *= self._by_name[clause.attribute].clause_fraction(clause)
        return volume

    def full_predicate(self) -> Predicate:
        """A predicate explicitly spanning the whole domain (used as the
        DT root partition)."""
        return Predicate(a.full_clause() for a in self)

    def simplify(self, predicate: Predicate) -> Predicate:
        """Drop clauses that cover their attribute's entire observed
        domain — they match every row, so the simplified predicate selects
        exactly the same tuples while reading like the paper's output
        (``sensorid = 15`` instead of four clauses spanning full ranges)."""
        kept = []
        for clause in predicate:
            if clause.attribute not in self._by_name:
                kept.append(clause)
                continue
            if not clause.contains(self._by_name[clause.attribute].full_clause()):
                kept.append(clause)
        return Predicate(kept)


class PredicateEnumerator:
    """Lazy, complexity-ordered enumeration of the NAIVE predicate space.

    Parameters
    ----------
    domain:
        Explanation-attribute domains.
    n_bins:
        Equi-width bins per continuous attribute (paper: 15).
    max_clauses:
        Cap on the number of clauses per predicate (None = all attributes).
    max_discrete_set_size:
        Cap on discrete value-set size (None = attribute cardinality).
    """

    def __init__(self, domain: Domain, n_bins: int = 15,
                 max_clauses: int | None = None,
                 max_discrete_set_size: int | None = None):
        if n_bins < 1:
            raise PredicateError(f"n_bins must be >= 1, got {n_bins}")
        self.domain = domain
        self.n_bins = n_bins
        self.max_clauses = max_clauses if max_clauses is not None else len(domain)
        self.max_discrete_set_size = max_discrete_set_size
        self._discretizers = {
            a.name: EquiWidthDiscretizer(a.name, a.lo, a.hi, n_bins)
            for a in domain if a.is_continuous
        }

    # ------------------------------------------------------------------
    # Clause inventories
    # ------------------------------------------------------------------
    def discretizer(self, attribute: str) -> EquiWidthDiscretizer:
        try:
            return self._discretizers[attribute]
        except KeyError:
            raise PredicateError(f"{attribute!r} is not continuous") from None

    def unit_clauses(self, attribute: str) -> list[Clause]:
        """Finest-granularity clauses: grid cells (continuous) or single
        values (discrete) — MC's initial units."""
        spec = self.domain[attribute]
        if spec.is_continuous:
            return list(self._discretizers[attribute].cells())
        return [SetClause(attribute, [v]) for v in spec.values]

    def continuous_clauses(self, attribute: str) -> list[Clause]:
        """All consecutive-cell ranges for a continuous attribute."""
        return list(self.discretizer(attribute).consecutive_ranges())

    def discrete_clauses(self, attribute: str, set_size: int) -> Iterator[Clause]:
        """All value subsets of exactly ``set_size`` for a discrete attribute."""
        spec = self.domain[attribute]
        if spec.is_continuous:
            raise PredicateError(f"{attribute!r} is not discrete")
        for combo in itertools.combinations(spec.values, set_size):
            yield SetClause(attribute, combo)

    def _clauses_at(self, attribute: str, set_size: int) -> Iterator[Clause]:
        """Clauses of the given discrete complexity for one attribute.

        Continuous attributes expose their full range inventory at
        ``set_size == 1`` and nothing at higher sizes, so each wave of the
        enumeration is duplicate-free.
        """
        spec = self.domain[attribute]
        if spec.is_continuous:
            if set_size == 1:
                yield from self.continuous_clauses(attribute)
            return
        if set_size <= spec.cardinality:
            yield from self.discrete_clauses(attribute, set_size)

    # ------------------------------------------------------------------
    # Full enumeration
    # ------------------------------------------------------------------
    def enumerate(self) -> Iterator[Predicate]:
        """Yield predicates in increasing complexity order.

        Wave ``(k, s)`` yields every conjunction of exactly ``k`` clauses
        whose largest discrete value-set has exactly ``s`` values; waves
        are ordered by ``k`` then ``s``.  Every predicate in the bounded
        space appears exactly once.
        """
        names = self.domain.attribute_names
        max_size = self._max_set_size()
        for k in range(1, self.max_clauses + 1):
            for s in range(1, max_size + 1):
                for attrs in itertools.combinations(names, k):
                    yield from self._conjunctions(attrs, s)

    def _max_set_size(self) -> int:
        cardinalities = [a.cardinality for a in self.domain if not a.is_continuous]
        limit = max(cardinalities) if cardinalities else 1
        if self.max_discrete_set_size is not None:
            limit = min(limit, self.max_discrete_set_size)
        return max(limit, 1)

    def _conjunctions(self, attrs: tuple[str, ...], max_set_size: int) -> Iterator[Predicate]:
        """Conjunctions over ``attrs`` whose largest discrete set size is
        exactly ``max_set_size``."""
        per_attr_upto: list[list[Clause]] = []
        for attribute in attrs:
            clauses = [c for size in range(1, max_set_size + 1)
                       for c in self._clauses_at(attribute, size)]
            if not clauses:
                return
            per_attr_upto.append(clauses)
        for combo in itertools.product(*per_attr_upto):
            if max_set_size > 1 and not any(
                isinstance(c, SetClause) and len(c.values) == max_set_size for c in combo
            ):
                continue  # counted in an earlier wave
            yield Predicate(combo)
