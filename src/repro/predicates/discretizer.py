"""Equi-width discretization of continuous attributes.

NAIVE and MC both grid each continuous attribute into a fixed number of
equi-sized ranges (the paper's experiments use 15, Section 8.2).  Cells
are half-open ``[lo, hi)`` except the last, which closes at the domain
maximum so no row is lost.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredicateError
from repro.predicates.clause import RangeClause


class EquiWidthDiscretizer:
    """Splits ``[lo, hi]`` into ``n_bins`` equal-width cells.

    >>> d = EquiWidthDiscretizer("a", 0.0, 100.0, 4)
    >>> [str(c) for c in d.cells()]
    ['a in [0, 25)', 'a in [25, 50)', 'a in [50, 75)', 'a in [75, 100]']
    """

    def __init__(self, attribute: str, lo: float, hi: float, n_bins: int):
        if n_bins < 1:
            raise PredicateError(f"n_bins must be >= 1, got {n_bins}")
        if not np.isfinite(lo) or not np.isfinite(hi) or lo > hi:
            raise PredicateError(f"invalid domain [{lo}, {hi}] for {attribute!r}")
        self.attribute = attribute
        self.lo = float(lo)
        self.hi = float(hi)
        # Degenerate single-value domains collapse to one cell.
        self.n_bins = 1 if lo == hi else int(n_bins)
        self.edges = np.linspace(self.lo, self.hi, self.n_bins + 1)

    def cell(self, index: int) -> RangeClause:
        """The ``index``-th grid cell as a range clause."""
        if not (0 <= index < self.n_bins):
            raise PredicateError(f"cell index {index} out of range [0, {self.n_bins})")
        is_last = index == self.n_bins - 1
        return RangeClause(
            self.attribute,
            float(self.edges[index]),
            float(self.edges[index + 1]),
            include_hi=is_last,
        )

    def cells(self) -> list[RangeClause]:
        """All grid cells, in order."""
        return [self.cell(i) for i in range(self.n_bins)]

    def consecutive_ranges(self) -> list[RangeClause]:
        """Every union of consecutive cells, as NAIVE enumerates
        (Section 4.2): ``n_bins · (n_bins + 1) / 2`` clauses."""
        ranges = []
        for start in range(self.n_bins):
            for end in range(start, self.n_bins):
                is_last = end == self.n_bins - 1
                ranges.append(RangeClause(
                    self.attribute,
                    float(self.edges[start]),
                    float(self.edges[end + 1]),
                    include_hi=is_last,
                ))
        return ranges

    def bin_index(self, value: float) -> int:
        """Index of the cell containing ``value`` (clamped to the domain)."""
        if self.n_bins == 1:
            return 0
        index = int(np.searchsorted(self.edges, value, side="right")) - 1
        return min(max(index, 0), self.n_bins - 1)
