"""Scorpion's predicate language (paper Section 3.1).

A predicate is a conjunction of clauses, at most one per attribute:
range clauses (``lo ≤ attr ≤ hi``) over continuous attributes and
set-containment clauses (``attr ∈ {…}``) over discrete attributes.

Beyond evaluation (``p(D)`` as a boolean mask), the package provides the
geometric operations the partitioners and the Merger need — containment
(``p_i ≺_D p_j``), intersection, bounding-box merge, adjacency, and box
subtraction (used to split outlier partitions along hold-out partitions,
Section 6.1.4) — plus the equi-width discretizer NAIVE and MC use to
grid continuous attributes.
"""

from repro.predicates.clause import Clause, RangeClause, SetClause
from repro.predicates.discretizer import EquiWidthDiscretizer
from repro.predicates.predicate import Predicate
from repro.predicates.space import AttributeDomain, Domain, PredicateEnumerator

__all__ = [
    "AttributeDomain",
    "Clause",
    "Domain",
    "EquiWidthDiscretizer",
    "Predicate",
    "PredicateEnumerator",
    "RangeClause",
    "SetClause",
]
