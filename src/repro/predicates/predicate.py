"""Conjunctive predicates and their box algebra.

A :class:`Predicate` holds at most one clause per attribute (paper
Section 3.1); attributes without a clause are unconstrained.  The empty
conjunction is the ``TRUE`` predicate matching every row.

Geometric operations treat a predicate as an axis-aligned box over the
constrained attributes:

* :meth:`Predicate.intersect` — clause-wise intersection (MC's predicate
  refinement, Section 6.2);
* :meth:`Predicate.merge` — clause-wise bounding box / set union (the
  Merger, Section 4.3);
* :meth:`Predicate.is_adjacent_to` — no gap on any shared attribute, so a
  merge does not bridge empty space;
* :meth:`Predicate.subtract` — decompose ``p − q`` into disjoint boxes
  (used to split outlier partitions along hold-out partitions,
  Section 6.1.4).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import PredicateError
from repro.predicates.clause import Clause, RangeClause, SetClause
from repro.table.table import Table


class Predicate:
    """An immutable conjunction of single-attribute clauses.

    >>> p = Predicate([RangeClause("voltage", 2.3, 2.4), SetClause("sensorid", [15])])
    >>> sorted(p.attributes)
    ['sensorid', 'voltage']
    >>> str(Predicate([]))
    'TRUE'
    """

    __slots__ = ("_clauses", "_hash")

    def __init__(self, clauses: Iterable[Clause]):
        by_attr: dict[str, Clause] = {}
        for clause in clauses:
            if clause.attribute in by_attr:
                raise PredicateError(
                    f"attribute {clause.attribute!r} appears in more than one clause"
                )
            by_attr[clause.attribute] = clause
        ordered = tuple(by_attr[a] for a in sorted(by_attr))
        self._clauses = ordered
        self._hash = hash(ordered)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def true(cls) -> "Predicate":
        """The always-true predicate (empty conjunction)."""
        return cls([])

    @classmethod
    def from_dict(cls, clauses: Mapping[str, Clause]) -> "Predicate":
        return cls(clauses.values())

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def clauses(self) -> tuple[Clause, ...]:
        return self._clauses

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(c.attribute for c in self._clauses)

    def clause_for(self, attribute: str) -> Clause | None:
        for clause in self._clauses:
            if clause.attribute == attribute:
                return clause
        return None

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def is_true(self) -> bool:
        return not self._clauses

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self._clauses == other._clauses

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Predicate({str(self)})"

    def __str__(self) -> str:
        if not self._clauses:
            return "TRUE"
        return " & ".join(str(c) for c in self._clauses)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows satisfying the conjunction — ``p(D)``."""
        mask = np.ones(len(table), dtype=bool)
        for clause in self._clauses:
            mask &= clause.mask(table)
        return mask

    def filter(self, table: Table) -> Table:
        """Rows of ``table`` satisfying the predicate, as a new table."""
        return table.filter(self.mask(table))

    def mask_arrays(self, values_by_attr: Mapping[str, np.ndarray], n_rows: int,
                    ) -> np.ndarray:
        """Evaluate the conjunction over pre-sliced value arrays.

        ``values_by_attr`` maps attribute name to that attribute's values
        for some row subset of length ``n_rows``; attributes the predicate
        does not constrain may be omitted.  Used by the DT partitioner to
        score partition pieces without re-touching the full table.
        """
        mask = np.ones(n_rows, dtype=bool)
        for clause in self._clauses:
            mask &= clause.mask_values(values_by_attr[clause.attribute])
        return mask

    def selectivity(self, table: Table) -> float:
        """Fraction of ``table`` rows matched (0 for an empty table)."""
        if len(table) == 0:
            return 0.0
        return float(np.count_nonzero(self.mask(table))) / len(table)

    # ------------------------------------------------------------------
    # Containment
    # ------------------------------------------------------------------
    def contains(self, other: "Predicate") -> bool:
        """Syntactic containment: ``other``'s rows ⊆ ``self``'s rows for
        *any* dataset (sufficient condition for the paper's ``≺_D``)."""
        for clause in self._clauses:
            other_clause = other.clause_for(clause.attribute)
            if other_clause is None or not clause.contains(other_clause):
                return False
        return True

    def contained_in_wrt(self, other: "Predicate", table: Table) -> bool:
        """The paper's data-dependent ``self ≺_D other``:
        ``self(D) ⊂ other(D)`` (strict subset)."""
        self_mask = self.mask(table)
        other_mask = other.mask(table)
        return bool(np.all(other_mask[self_mask])) and bool(
            np.count_nonzero(self_mask) < np.count_nonzero(other_mask)
        )

    # ------------------------------------------------------------------
    # Box algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Predicate") -> "Predicate | None":
        """Conjunction of both predicates, or None if syntactically empty."""
        clauses: dict[str, Clause] = {c.attribute: c for c in self._clauses}
        for clause in other._clauses:
            existing = clauses.get(clause.attribute)
            if existing is None:
                clauses[clause.attribute] = clause
            else:
                merged = existing.intersect(clause)
                if merged is None:
                    return None
                clauses[clause.attribute] = merged
        return Predicate(clauses.values())

    def merge(self, other: "Predicate") -> "Predicate":
        """Bounding predicate: clause-wise bounding range / set union.

        An attribute constrained in only one operand becomes unconstrained
        in the merge (its bounding box with the full domain is the full
        domain).
        """
        clauses = []
        for clause in self._clauses:
            other_clause = other.clause_for(clause.attribute)
            if other_clause is not None:
                clauses.append(clause.merge(other_clause))
        return Predicate(clauses)

    def is_adjacent_to(self, other: "Predicate") -> bool:
        """The Merger's notion of neighbouring partitions.

        Two boxes are adjacent when they constrain the same attributes
        and overlap or touch on every one of them, with one restriction
        on discrete attributes: a merge may union discrete value sets
        only when *every other clause matches exactly* (and only one
        discrete attribute differs).  Hierarchically split partitions
        rarely share exact faces, so continuous extents may differ freely
        — but a "diagonal" merge that simultaneously widens a range and
        absorbs foreign discrete values bounds a region neither box
        covers, which is exactly how unrelated values leak into a growing
        predicate.
        """
        if set(self.attributes) != set(other.attributes):
            return False
        differing_discrete = 0
        differing_continuous = 0
        for clause in self._clauses:
            other_clause = other.clause_for(clause.attribute)
            assert other_clause is not None
            if not clause.touches(other_clause):
                return False
            if clause != other_clause:
                if isinstance(clause, SetClause):
                    differing_discrete += 1
                else:
                    differing_continuous += 1
        if differing_discrete == 0:
            return True
        return differing_discrete == 1 and differing_continuous == 0

    def subtract(self, other: "Predicate") -> "list[Predicate]":
        """Disjoint predicates covering exactly ``self − other``.

        Standard axis-sweep box subtraction: for each attribute that
        ``other`` constrains, peel off the part of the current remainder
        lying outside ``other``'s clause, then narrow the remainder to the
        overlap and continue.  Returns ``[self]`` untouched when the
        boxes do not intersect; returns ``[]`` when ``other`` syntactically
        covers ``self``.

        Disjointness caveat: when ``other`` has a *closed* upper bound
        strictly inside ``self``'s range, the right-hand piece shares that
        single boundary value with ``other`` (open lower bounds are not
        representable).  DT partitions follow a half-open ``[lo, hi)``
        discipline (closed tops only at the domain maximum), so the
        partition-combination step never hits this case.
        """
        if self.intersect(other) is None:
            return [self]
        pieces: list[Predicate] = []
        remainder: dict[str, Clause] = {c.attribute: c for c in self._clauses}
        for other_clause in other._clauses:
            attribute = other_clause.attribute
            current = remainder.get(attribute)
            outside = _clause_difference(current, other_clause)
            for piece_clause in outside:
                piece = dict(remainder)
                piece[piece_clause.attribute] = piece_clause
                pieces.append(Predicate(piece.values()))
            if current is None:
                narrowed = other_clause
            else:
                narrowed_maybe = current.intersect(other_clause)
                assert narrowed_maybe is not None  # checked via intersect above
                narrowed = narrowed_maybe
            remainder[attribute] = narrowed
        return pieces


def _clause_difference(current: Clause | None, cutter: Clause) -> list[Clause]:
    """Clauses covering the part of ``current`` outside ``cutter``.

    ``current is None`` means the attribute is unconstrained; for ranges
    we cannot represent the unbounded complement, so the caller must make
    sure subtraction happens within a bounded partitioning (DT partitions
    always carry explicit bounds for attributes they split on).  In that
    unconstrained-range case we conservatively return no outside pieces,
    which keeps results sound (pieces are a subset of the true
    difference).
    """
    if isinstance(cutter, RangeClause):
        if current is None:
            return []
        if not isinstance(current, RangeClause):
            raise PredicateError(
                f"clause kind mismatch on {cutter.attribute!r}: {current!r} vs {cutter!r}"
            )
        pieces: list[Clause] = []
        if current.lo < cutter.lo:
            pieces.append(
                RangeClause(current.attribute, current.lo, min(current.hi, cutter.lo),
                            include_hi=False)
            )
        cutter_open_top = not cutter.include_hi and current.include_hi
        if current.hi > cutter.hi or (current.hi == cutter.hi and cutter_open_top):
            lo = max(current.lo, cutter.hi)
            pieces.append(RangeClause(current.attribute, lo, current.hi, current.include_hi))
        return pieces
    if isinstance(cutter, SetClause):
        if current is None:
            return []
        if not isinstance(current, SetClause):
            raise PredicateError(
                f"clause kind mismatch on {cutter.attribute!r}: {current!r} vs {cutter!r}"
            )
        difference = current.difference(cutter)
        return [difference] if difference is not None else []
    raise PredicateError(f"unknown clause kind {type(cutter).__name__}")
