"""Fast repeated predicate evaluation over a fixed row set.

The scorer and the partitioners evaluate thousands of predicates against
the *same* rows (the labeled rows of ``D``, or one input group).  For
discrete attributes, testing set-containment against raw object arrays
costs a Python-level comparison per row; factorizing each column into
integer codes once turns every later clause into a vectorized
``np.isin`` over ints.

:class:`ArrayMaskEvaluator` wraps a ``{attribute: values}`` mapping and
evaluates conjunctions against it.  Two entry points share the same
clause semantics:

* :meth:`ArrayMaskEvaluator.mask` — one predicate → one boolean row;
* :meth:`ArrayMaskEvaluator.evaluate_batch` — a predicate *set* → an
  ``(n_predicates, n_rows)`` boolean matrix, built attribute-by-attribute
  with broadcast comparisons (ranges) and code-lookup tables (sets)
  rather than a per-predicate Python loop.

The batch path is the foundation of the batched influence-scoring engine
(see :mod:`repro.core.influence`): each row of the matrix is exactly the
mask :meth:`mask` would return for that predicate, so scalar and batched
scoring see identical row sets.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import PredicateError
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate


def _factorize(values: np.ndarray) -> tuple[np.ndarray, dict]:
    """Integer codes plus a value → code table for a discrete column.

    Uses ``np.unique(return_inverse=True)`` (one vectorized pass) when the
    values are sortable; mixed-type object columns fall back to a
    first-appearance dict loop.  Only the *mapping* matters — callers
    translate clause values through the table and never compare codes
    across columns — so the two paths are interchangeable.
    """
    try:
        uniques, codes = np.unique(values, return_inverse=True)
    except TypeError:
        # Unorderable mixed types (e.g. ints and strings in one object
        # column): assign codes in order of first appearance.
        code_of: dict = {}
        codes = np.empty(len(values), dtype=np.int64)
        for i, item in enumerate(values):
            code = code_of.get(item)
            if code is None:
                code = len(code_of)
                code_of[item] = code
            codes[i] = code
        return codes, code_of
    code_of = {value: code for code, value in enumerate(uniques.tolist())}
    return codes.astype(np.int64, copy=False).ravel(), code_of


class ArrayMaskEvaluator:
    """Evaluates predicates over pre-sliced per-attribute value arrays.

    Parameters
    ----------
    values_by_attr:
        Attribute name → values for the fixed row set.  Float arrays are
        treated as continuous, anything else as discrete (factorized).
    """

    def __init__(self, values_by_attr: Mapping[str, np.ndarray]):
        self._n_rows: int | None = None
        self._continuous: dict[str, np.ndarray] = {}
        self._codes: dict[str, np.ndarray] = {}
        self._code_of: dict[str, dict] = {}
        for name, values in values_by_attr.items():
            values = np.asarray(values)
            if self._n_rows is None:
                self._n_rows = len(values)
            elif len(values) != self._n_rows:
                raise PredicateError(
                    f"attribute {name!r} has {len(values)} rows, expected {self._n_rows}"
                )
            if values.dtype.kind == "f":
                self._continuous[name] = values
            else:
                self._codes[name], self._code_of[name] = _factorize(values)
        if self._n_rows is None:
            raise PredicateError("evaluator needs at least one attribute")

    @property
    def n_rows(self) -> int:
        assert self._n_rows is not None
        return self._n_rows

    def supports(self, attribute: str) -> bool:
        return attribute in self._continuous or attribute in self._codes

    @property
    def continuous_attributes(self) -> tuple[str, ...]:
        """Names of the attributes held as continuous value arrays."""
        return tuple(self._continuous)

    def continuous_values(self, attribute: str) -> np.ndarray:
        """The raw value array of a continuous attribute (the exact rows
        clause comparisons run against — index builders sort these so
        sorted-slice membership equals mask membership)."""
        try:
            return self._continuous[attribute]
        except KeyError:
            raise PredicateError(
                f"no continuous attribute {attribute!r} in evaluator"
            ) from None

    @property
    def discrete_attributes(self) -> tuple[str, ...]:
        """Names of the attributes held as factorized discrete codes."""
        return tuple(self._codes)

    def discrete_codes(self, attribute: str) -> np.ndarray:
        """The factorized code array of a discrete attribute (the exact
        codes set-clause lookups run against — index builders bucket
        these so bucket membership equals mask membership)."""
        try:
            return self._codes[attribute]
        except KeyError:
            raise PredicateError(
                f"no discrete attribute {attribute!r} in evaluator"
            ) from None

    def code_table(self, attribute: str) -> dict:
        """The value → code table of a discrete attribute."""
        try:
            return self._code_of[attribute]
        except KeyError:
            raise PredicateError(
                f"no discrete attribute {attribute!r} in evaluator"
            ) from None

    def supports_predicate(self, predicate: Predicate) -> bool:
        """Whether every clause attribute is known to this evaluator."""
        return all(self.supports(clause.attribute) for clause in predicate)

    def resident_bytes(self) -> int:
        """Bytes of comparison-array data held (continuous values plus
        factorized codes; the small value → code dicts are ignored) —
        one term of the resident service's per-entry memory accounting."""
        return int(sum(values.nbytes for values in self._continuous.values())
                   + sum(codes.nbytes for codes in self._codes.values()))

    # ------------------------------------------------------------------
    # Cross-process reconstruction (the parallel scoring executor)
    # ------------------------------------------------------------------
    def export_state(self) -> tuple[dict[str, np.ndarray],
                                    dict[str, np.ndarray],
                                    dict[str, dict]]:
        """The evaluator's complete comparison state: ``(continuous
        value arrays, factorized discrete code arrays, value → code
        tables)``.  Shallow copies — the arrays are shared, which is the
        point: an executor packs them into shared memory and rebuilds an
        equivalent evaluator in each worker via :meth:`from_state`."""
        return dict(self._continuous), dict(self._codes), dict(self._code_of)

    @classmethod
    def from_state(cls, continuous: Mapping[str, np.ndarray],
                   codes: Mapping[str, np.ndarray],
                   code_of: Mapping[str, dict]) -> "ArrayMaskEvaluator":
        """Rebuild an evaluator around already-factorized arrays.

        Skips re-factorization entirely; because every clause comparison
        runs against byte-identical arrays through the same code, masks
        from the rebuilt evaluator equal the original's bit for bit."""
        self = cls.__new__(cls)
        self._continuous = dict(continuous)
        self._codes = dict(codes)
        self._code_of = dict(code_of)
        self._n_rows = None
        for values in (*self._continuous.values(), *self._codes.values()):
            self._n_rows = len(values)
            break
        if self._n_rows is None:
            raise PredicateError("evaluator needs at least one attribute")
        return self

    def clause_mask(self, clause) -> np.ndarray:
        """Boolean mask of rows satisfying one clause."""
        if isinstance(clause, RangeClause):
            try:
                values = self._continuous[clause.attribute]
            except KeyError:
                raise PredicateError(
                    f"no continuous attribute {clause.attribute!r} in evaluator"
                ) from None
            return clause.mask_values(values)
        if isinstance(clause, SetClause):
            try:
                codes = self._codes[clause.attribute]
                code_of = self._code_of[clause.attribute]
            except KeyError:
                raise PredicateError(
                    f"no discrete attribute {clause.attribute!r} in evaluator"
                ) from None
            wanted = [code_of[v] for v in clause.values if v in code_of]
            if not wanted:
                return np.zeros(self.n_rows, dtype=bool)
            if len(wanted) == 1:
                return codes == wanted[0]
            return np.isin(codes, np.asarray(wanted, dtype=np.int64))
        raise PredicateError(f"unknown clause kind {type(clause).__name__}")

    def mask(self, predicate: Predicate) -> np.ndarray:
        """Boolean mask of rows satisfying the conjunction."""
        mask = np.ones(self.n_rows, dtype=bool)
        for clause in predicate:
            mask &= self.clause_mask(clause)
        return mask

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def evaluate_batch(self, predicates: Sequence[Predicate] | Iterable[Predicate],
                       ) -> np.ndarray:
        """``(n_predicates, n_rows)`` boolean matrix of conjunction masks.

        Row ``i`` equals ``self.mask(predicates[i])`` exactly.  Instead of
        looping predicates, clauses are grouped by attribute and each
        group is evaluated in one vectorized operation:

        * range clauses over one attribute become a broadcast
          ``(k, 1) × (n_rows,)`` bound comparison;
        * set clauses become a ``(k, n_codes)`` boolean lookup table
          indexed by the column's factorized codes.

        Unconstrained attributes (and ``TRUE`` predicates) leave their
        rows all-True.  Raises :class:`PredicateError` on attributes this
        evaluator does not hold, exactly like :meth:`clause_mask`.
        """
        predicates = list(predicates)
        out = np.ones((len(predicates), self.n_rows), dtype=bool)
        range_groups: dict[str, list[tuple[int, RangeClause]]] = {}
        set_groups: dict[str, list[tuple[int, SetClause]]] = {}
        for i, predicate in enumerate(predicates):
            for clause in predicate:
                if isinstance(clause, RangeClause):
                    if clause.attribute not in self._continuous:
                        raise PredicateError(
                            f"no continuous attribute {clause.attribute!r} in evaluator"
                        )
                    range_groups.setdefault(clause.attribute, []).append((i, clause))
                elif isinstance(clause, SetClause):
                    if clause.attribute not in self._codes:
                        raise PredicateError(
                            f"no discrete attribute {clause.attribute!r} in evaluator"
                        )
                    set_groups.setdefault(clause.attribute, []).append((i, clause))
                else:
                    raise PredicateError(
                        f"unknown clause kind {type(clause).__name__}")

        for attribute, items in range_groups.items():
            values = self._continuous[attribute]
            rows = np.fromiter((i for i, _ in items), dtype=np.int64,
                               count=len(items))
            los = np.array([clause.lo for _, clause in items])[:, np.newaxis]
            his = np.array([clause.hi for _, clause in items])[:, np.newaxis]
            closed = np.array([clause.include_hi for _, clause in items],
                              dtype=bool)[:, np.newaxis]
            if closed.all():
                below = values <= his
            elif not closed.any():
                below = values < his
            else:
                below = np.where(closed, values <= his, values < his)
            # One clause per attribute per predicate → ``rows`` is unique,
            # so in-place fancy-indexed AND touches each row once.
            out[rows] &= (values >= los) & below

        for attribute, items in set_groups.items():
            codes = self._codes[attribute]
            code_of = self._code_of[attribute]
            rows = np.fromiter((i for i, _ in items), dtype=np.int64,
                               count=len(items))
            lookup = np.zeros((len(items), len(code_of)), dtype=bool)
            for j, (_, clause) in enumerate(items):
                wanted = [code_of[v] for v in clause.values if v in code_of]
                lookup[j, wanted] = True
            out[rows] &= lookup[:, codes]

        return out
