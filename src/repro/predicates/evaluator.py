"""Fast repeated predicate evaluation over a fixed row set.

The scorer and the partitioners evaluate thousands of predicates against
the *same* rows (the labeled rows of ``D``, or one input group).  For
discrete attributes, testing set-containment against raw object arrays
costs a Python-level comparison per row; factorizing each column into
integer codes once turns every later clause into a vectorized
``np.isin`` over ints.

:class:`ArrayMaskEvaluator` wraps a ``{attribute: values}`` mapping and
evaluates conjunctions against it.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import PredicateError
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate


class ArrayMaskEvaluator:
    """Evaluates predicates over pre-sliced per-attribute value arrays.

    Parameters
    ----------
    values_by_attr:
        Attribute name → values for the fixed row set.  Float arrays are
        treated as continuous, anything else as discrete (factorized).
    """

    def __init__(self, values_by_attr: Mapping[str, np.ndarray]):
        self._n_rows: int | None = None
        self._continuous: dict[str, np.ndarray] = {}
        self._codes: dict[str, np.ndarray] = {}
        self._code_of: dict[str, dict] = {}
        for name, values in values_by_attr.items():
            values = np.asarray(values)
            if self._n_rows is None:
                self._n_rows = len(values)
            elif len(values) != self._n_rows:
                raise PredicateError(
                    f"attribute {name!r} has {len(values)} rows, expected {self._n_rows}"
                )
            if values.dtype.kind == "f":
                self._continuous[name] = values
            else:
                code_of: dict = {}
                codes = np.empty(len(values), dtype=np.int64)
                for i, item in enumerate(values):
                    code = code_of.get(item)
                    if code is None:
                        code = len(code_of)
                        code_of[item] = code
                    codes[i] = code
                self._codes[name] = codes
                self._code_of[name] = code_of
        if self._n_rows is None:
            raise PredicateError("evaluator needs at least one attribute")

    @property
    def n_rows(self) -> int:
        assert self._n_rows is not None
        return self._n_rows

    def supports(self, attribute: str) -> bool:
        return attribute in self._continuous or attribute in self._codes

    def clause_mask(self, clause) -> np.ndarray:
        """Boolean mask of rows satisfying one clause."""
        if isinstance(clause, RangeClause):
            try:
                values = self._continuous[clause.attribute]
            except KeyError:
                raise PredicateError(
                    f"no continuous attribute {clause.attribute!r} in evaluator"
                ) from None
            return clause.mask_values(values)
        if isinstance(clause, SetClause):
            try:
                codes = self._codes[clause.attribute]
                code_of = self._code_of[clause.attribute]
            except KeyError:
                raise PredicateError(
                    f"no discrete attribute {clause.attribute!r} in evaluator"
                ) from None
            wanted = [code_of[v] for v in clause.values if v in code_of]
            if not wanted:
                return np.zeros(self.n_rows, dtype=bool)
            if len(wanted) == 1:
                return codes == wanted[0]
            return np.isin(codes, np.asarray(wanted, dtype=np.int64))
        raise PredicateError(f"unknown clause kind {type(clause).__name__}")

    def mask(self, predicate: Predicate) -> np.ndarray:
        """Boolean mask of rows satisfying the conjunction."""
        mask = np.ones(self.n_rows, dtype=bool)
        for clause in predicate:
            mask &= self.clause_mask(clause)
        return mask
