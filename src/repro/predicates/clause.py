"""Single-attribute clauses: ranges over continuous attributes, set
containment over discrete attributes.

Clauses are immutable and hashable so predicates can be cached and
de-duplicated.  Range clauses carry an ``include_hi`` flag: grid cells
produced by the discretizer are half-open ``[lo, hi)`` so neighbours do
not double-count rows, while the top cell and user-written clauses are
closed ``[lo, hi]``.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from repro.errors import PredicateError
from repro.table.table import Table


class Clause(abc.ABC):
    """A constraint on one attribute."""

    attribute: str

    @abc.abstractmethod
    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows in ``table`` satisfying the clause."""

    @abc.abstractmethod
    def mask_values(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask over a raw value array (for evaluating the clause
        on a subset of rows without materializing a table)."""

    @abc.abstractmethod
    def contains(self, other: "Clause") -> bool:
        """Syntactic containment: every value satisfying ``other``
        satisfies ``self``.  Sufficient (not necessary) for ``≺_D``."""

    @abc.abstractmethod
    def intersect(self, other: "Clause") -> "Clause | None":
        """Clause satisfied exactly by values satisfying both, or None if
        that set is syntactically empty."""

    @abc.abstractmethod
    def merge(self, other: "Clause") -> "Clause":
        """Smallest clause of this kind containing both (bounding range /
        set union) — the Merger's merge primitive (Section 4.3)."""

    @abc.abstractmethod
    def touches(self, other: "Clause") -> bool:
        """Whether the two clauses overlap or are adjacent (no gap), so a
        merge does not bridge empty space."""


class RangeClause(Clause):
    """``lo ≤ attribute ≤ hi`` (or ``< hi`` when ``include_hi`` is False).

    >>> c = RangeClause("voltage", 2.3, 2.4)
    >>> c.contains(RangeClause("voltage", 2.32, 2.35))
    True
    """

    __slots__ = ("attribute", "lo", "hi", "include_hi")

    def __init__(self, attribute: str, lo: float, hi: float, include_hi: bool = True):
        lo = float(lo)
        hi = float(hi)
        if not np.isfinite(lo) or not np.isfinite(hi):
            raise PredicateError(f"range bounds must be finite, got [{lo}, {hi}]")
        if lo > hi:
            raise PredicateError(f"empty range [{lo}, {hi}] on {attribute!r}")
        if lo == hi and not include_hi:
            raise PredicateError(f"empty half-open range [{lo}, {hi}) on {attribute!r}")
        self.attribute = attribute
        self.lo = lo
        self.hi = hi
        self.include_hi = bool(include_hi)

    def mask(self, table: Table) -> np.ndarray:
        return table.column(self.attribute).range_mask(self.lo, self.hi, self.include_hi)

    def mask_values(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if self.include_hi:
            return (values >= self.lo) & (values <= self.hi)
        return (values >= self.lo) & (values < self.hi)

    def contains(self, other: Clause) -> bool:
        if not isinstance(other, RangeClause) or other.attribute != self.attribute:
            return False
        if other.lo < self.lo:
            return False
        if other.hi < self.hi:
            return True
        if other.hi > self.hi:
            return False
        # Equal upper bounds: closed contains half-open, not vice versa.
        return self.include_hi or not other.include_hi

    def intersect(self, other: Clause) -> Clause | None:
        if not isinstance(other, RangeClause) or other.attribute != self.attribute:
            raise PredicateError(f"cannot intersect {self!r} with {other!r}")
        lo = max(self.lo, other.lo)
        if self.hi < other.hi:
            hi, include_hi = self.hi, self.include_hi
        elif other.hi < self.hi:
            hi, include_hi = other.hi, other.include_hi
        else:
            hi, include_hi = self.hi, self.include_hi and other.include_hi
        if lo > hi or (lo == hi and not include_hi):
            return None
        return RangeClause(self.attribute, lo, hi, include_hi)

    def merge(self, other: Clause) -> Clause:
        if not isinstance(other, RangeClause) or other.attribute != self.attribute:
            raise PredicateError(f"cannot merge {self!r} with {other!r}")
        if self.hi > other.hi:
            hi, include_hi = self.hi, self.include_hi
        elif other.hi > self.hi:
            hi, include_hi = other.hi, other.include_hi
        else:
            hi, include_hi = self.hi, self.include_hi or other.include_hi
        return RangeClause(self.attribute, min(self.lo, other.lo), hi, include_hi)

    def touches(self, other: Clause) -> bool:
        if not isinstance(other, RangeClause) or other.attribute != self.attribute:
            return False
        return self.lo <= other.hi and other.lo <= self.hi

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RangeClause)
                and self.attribute == other.attribute
                and self.lo == other.lo
                and self.hi == other.hi
                and self.include_hi == other.include_hi)

    def __hash__(self) -> int:
        return hash((self.attribute, self.lo, self.hi, self.include_hi))

    def __repr__(self) -> str:
        bracket = "]" if self.include_hi else ")"
        return f"RangeClause({self.attribute} in [{self.lo:g}, {self.hi:g}{bracket})"

    def __str__(self) -> str:
        bracket = "]" if self.include_hi else ")"
        return f"{self.attribute} in [{self.lo:g}, {self.hi:g}{bracket}"


class SetClause(Clause):
    """``attribute ∈ {values}`` over a discrete attribute.

    >>> c = SetClause("sensorid", [15])
    >>> str(c)
    'sensorid = 15'
    """

    __slots__ = ("attribute", "values")

    def __init__(self, attribute: str, values: Iterable):
        values = frozenset(values)
        if not values:
            raise PredicateError(f"empty value set on {attribute!r}")
        self.attribute = attribute
        self.values = values

    def mask(self, table: Table) -> np.ndarray:
        return table.column(self.attribute).membership_mask(self.values)

    def mask_values(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        allowed = list(self.values)
        if len(allowed) == 1:
            return values == allowed[0]
        # np.isin drives object-array comparisons from C; still O(n·k)
        # worst case, so hot paths should prefer ArrayMaskEvaluator's
        # factorized codes.
        return np.isin(values, np.asarray(allowed, dtype=object))

    def contains(self, other: Clause) -> bool:
        if not isinstance(other, SetClause) or other.attribute != self.attribute:
            return False
        return other.values <= self.values

    def intersect(self, other: Clause) -> Clause | None:
        if not isinstance(other, SetClause) or other.attribute != self.attribute:
            raise PredicateError(f"cannot intersect {self!r} with {other!r}")
        common = self.values & other.values
        if not common:
            return None
        return SetClause(self.attribute, common)

    def merge(self, other: Clause) -> Clause:
        if not isinstance(other, SetClause) or other.attribute != self.attribute:
            raise PredicateError(f"cannot merge {self!r} with {other!r}")
        return SetClause(self.attribute, self.values | other.values)

    def touches(self, other: Clause) -> bool:
        # Discrete domains have no geometry; any two value sets may merge.
        return isinstance(other, SetClause) and other.attribute == self.attribute

    def difference(self, other: "SetClause") -> "SetClause | None":
        """Clause for values in ``self`` but not ``other`` (None if empty)."""
        remaining = self.values - other.values
        if not remaining:
            return None
        return SetClause(self.attribute, remaining)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SetClause)
                and self.attribute == other.attribute
                and self.values == other.values)

    def __hash__(self) -> int:
        return hash((self.attribute, self.values))

    def _sorted_values(self) -> list:
        try:
            return sorted(self.values)
        except TypeError:
            return sorted(self.values, key=repr)

    def __repr__(self) -> str:
        return f"SetClause({self})"

    def __str__(self) -> str:
        values = self._sorted_values()
        if len(values) == 1:
            return f"{self.attribute} = {values[0]}"
        shown = ", ".join(str(v) for v in values[:6])
        if len(values) > 6:
            shown += f", ... ({len(values)} values)"
        return f"{self.attribute} in ({shown})"
