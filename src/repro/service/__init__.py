"""Resident explain service: content-keyed caching of problem images,
index views, and worker pools across calls (see
:mod:`repro.service.service` for the design notes)."""

from repro.service.keys import (
    invalidate_fingerprint,
    problem_key,
    request_key,
    table_fingerprint,
)
from repro.service.service import (
    CACHE_STAT_KEYS,
    DEFAULT_CACHE_BYTES,
    ExplainService,
)

__all__ = [
    "CACHE_STAT_KEYS",
    "DEFAULT_CACHE_BYTES",
    "ExplainService",
    "invalidate_fingerprint",
    "problem_key",
    "request_key",
    "table_fingerprint",
]
