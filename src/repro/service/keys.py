"""Content keys for the resident :class:`~repro.service.ExplainService`.

A cache entry is reusable for a request exactly when the expensive build
inputs match: the dataset bytes, the group-by query (grouping columns,
aggregate, WHERE clause), the labeled result sets with their error
vectors, the explanation attribute set, and the perturbation model.  The
Section 7 knobs ``c`` / ``c_holdout`` / ``λ`` are deliberately *not*
part of the key — the scorer rebinds them in O(1)
(:meth:`~repro.core.influence.InfluenceScorer.rebind`), which is what
makes warm ``c``-slider sweeps cheap.

Dataset identity is a content fingerprint (BLAKE2b over every column's
name, kind, and value bytes), not object identity: two
:class:`~repro.table.table.Table` instances loaded from the same CSV hit
the same entry.  The digest is memoized on the table instance, so the
per-request cost of an identity-stable workload is one attribute read.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

import numpy as np

from repro.query.groupby import GroupByQuery
from repro.table.table import Table

#: Memoization slot for :func:`table_fingerprint` (``Table`` defines
#: ``__eq__`` without ``__hash__``, so an external WeakKeyDictionary
#: cannot hold instances — the digest lives on the object instead).
_FINGERPRINT_ATTR = "_scorpion_content_fingerprint"


def table_fingerprint(table: Table) -> str:
    """Hex BLAKE2b digest of the table's schema and column contents.

    Hashes, per column in schema order: the name, the declared kind, and
    the value bytes (raw float64 bytes for continuous columns; a
    NUL-delimited ``str()`` encoding for discrete object columns, whose
    buffers hold pointers rather than values).  Memoized on the table —
    tables are immutable by convention in this codebase (every mutation
    returns a new ``Table``), so the digest never goes stale.
    """
    cached = getattr(table, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(len(table)).encode())
    for name in table.schema.names:
        spec = table.schema[name]
        digest.update(name.encode())
        digest.update(spec.kind.value.encode())
        values = table.values(name)
        if values.dtype.kind == "f":
            digest.update(np.ascontiguousarray(values).tobytes())
        else:
            digest.update("\0".join(str(v) for v in values.tolist()).encode())
    fingerprint = digest.hexdigest()
    object.__setattr__(table, _FINGERPRINT_ATTR, fingerprint)
    return fingerprint


def invalidate_fingerprint(table: Table) -> None:
    """Drop the memoized content digest of ``table``.

    Tables are immutable by convention — every relational operation
    returns a new ``Table`` and column arrays are flagged read-only — so
    the memoized digest normally never goes stale.  Any code path that
    nevertheless mutates a table in place (e.g. flipping a column
    array's write flag to patch values) MUST call this hook afterwards,
    or the resident service can keep serving cached explanations
    computed from the pre-mutation data.  The next
    :func:`table_fingerprint` call rehashes the current contents.
    """
    if getattr(table, _FINGERPRINT_ATTR, None) is not None:
        object.__delattr__(table, _FINGERPRINT_ATTR)


def _normalize_key(key) -> tuple:
    """Group keys arrive as scalars (single group-by column) or tuples;
    the provenance resolver accepts both for the same group, so the
    cache key must too."""
    return key if isinstance(key, tuple) else (key,)


def _normalize_keys(keys: Iterable) -> tuple[tuple, ...]:
    return tuple(sorted((_normalize_key(k) for k in keys), key=repr))


def _normalize_error_vectors(error_vectors: float | Mapping,
                             outliers: tuple[tuple, ...]) -> tuple:
    """One sorted ``(key, direction)`` item per outlier, whether the
    caller passed a scalar direction or a per-key mapping — matching how
    :class:`~repro.core.problem.ScorpionQuery` resolves them."""
    if isinstance(error_vectors, Mapping):
        items = {_normalize_key(k): float(v) for k, v in error_vectors.items()}
        return tuple((k, items[k]) for k in outliers if k in items)
    direction = float(error_vectors)
    return tuple((k, direction) for k in outliers)


def request_key(table: Table, query: GroupByQuery, outliers: Iterable,
                holdouts: Iterable = (),
                error_vectors: float | Mapping = 1.0,
                attributes: Iterable[str] | None = None,
                ignore: Iterable[str] = (),
                perturbation: str = "delete") -> tuple:
    """Content key from *raw* request inputs, without executing the
    group-by — the point of the resident service is that a cache hit
    never pays the problem build.

    Normalization is best-effort equivalence: scalar group keys become
    1-tuples, label sets are order-insensitive, scalar error vectors
    expand per outlier, and a ``None`` attribute set resolves through
    the (schema-only) ``A_rest`` rule.  Inputs this cannot equate (e.g.
    an outlier key the table does not contain) at worst cause a
    redundant miss — never a wrong hit, because the entry's problem is
    always built from the request's own arguments.
    """
    if attributes is None:
        resolved_attrs = query.rest_attributes(table, ignore=ignore)
    else:
        resolved_attrs = tuple(attributes)
    norm_outliers = _normalize_keys(outliers)
    return (
        table_fingerprint(table),
        repr(query),
        norm_outliers,
        _normalize_keys(holdouts),
        _normalize_error_vectors(error_vectors, norm_outliers),
        resolved_attrs,
        perturbation,
    )


def problem_key(problem) -> tuple:
    """Content key of an already-built
    :class:`~repro.core.problem.ScorpionQuery`.

    Uses the problem's *resolved* state (keys from provenance, expanded
    error vectors, resolved attributes), so it lands on the same key as
    :func:`request_key` for the normalizable inputs both accept.
    """
    return (
        table_fingerprint(problem.raw_table),
        repr(problem.query),
        _normalize_keys(problem.outlier_keys),
        _normalize_keys(problem.holdout_keys),
        tuple(sorted(problem.error_vectors.items(),
                     key=lambda kv: repr(kv[0]))),
        problem.attributes,
        problem.perturbation,
    )
