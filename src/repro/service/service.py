"""The resident :class:`ExplainService` — cross-call caching of the
expensive per-problem artifacts behind a content key.

A one-shot ``Scorpion.explain`` pays, on every call, for work that is
pure function of the *problem* rather than of the Section 7 knobs: the
group-by execution and provenance (the problem image), the labeled
evaluator's factorized comparison arrays, the prefix-aggregate index
views, the DT partitions, and — with ``workers > 1`` — forking a worker
pool and publishing shared-memory segments.  An interactive session
(the paper's ``c``-slider UI, Section 8.3.3) or an eval sweep repeats
the same problem dozens of times with only scalar-knob changes, so a
resident process should pay once.

:class:`ExplainService` holds an LRU of cache entries keyed by
:func:`~repro.service.keys.problem_key` / ``request_key`` — dataset
fingerprint × group-by query × labeled sets × error vectors × attribute
set × perturbation, deliberately excluding ``c`` / ``c_holdout`` / ``λ``
which rebind in O(1).  Each entry owns a narrowed problem, a dedicated
:class:`~repro.core.scorpion.Scorpion` (its own bounded DT cache), and
the live :class:`~repro.core.influence.InfluenceScorer` carrying the
contexts, index views, and (lazily) the started worker pool.

**Equivalence contract.**  A warm ``explain`` returns a result
bit-for-bit equal to a cold ``Scorpion.explain`` of the same problem —
same explanations, influences, and scorer counters — except for keys in
:data:`CACHE_STAT_KEYS`, which report exactly the cache effects (what
was *not* rebuilt) and wall-clock timings.  The service enforces this by
resetting scorer statistics and dropping the predicate-score memo at
every checkout, so warm scoring replays the cold call's operations; the
per-tuple delta memo is kept because tuple deltas are independent of
every knob the key excludes.

**Memory accounting.**  Every entry is billed its scorer's resident
bytes — context index/state arrays, the stacked state matrix, evaluator
comparison arrays, and built index views (the index's shared value
arrays are aliases of evaluator arrays and excluded, so nothing is
billed twice).  Eviction walks LRU order while over ``cache_bytes``
(constructor > ``SCORPION_CACHE_BYTES`` > 512 MiB), skipping pinned
(in-flight) entries; a closed entry releases its worker pool and shared
memory.

Thread-safe: a service-level lock guards the LRU and counters, a
per-entry lock serializes requests that share an entry (scorers are
stateful), and distinct entries execute concurrently.  The asyncio
front end (:meth:`ExplainService.explain_async`) runs requests on
worker threads with a per-request deadline defaulting to the same
``SCORPION_TASK_TIMEOUT`` machinery the parallel executor uses.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import OrderedDict
from typing import Callable, Iterable, Mapping

from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion, ScorpionResult
from repro.errors import ResourceExhausted, ScorpionError
from repro.faults import fault_point
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import Tracer, current_tracer, span, tracing_enabled
from repro.parallel.executor import _resolve_timeout
from repro.query.groupby import GroupByQuery
from repro.service.keys import problem_key, request_key
from repro.table.table import Table

#: Default cache capacity when neither the constructor nor
#: ``SCORPION_CACHE_BYTES`` specifies one.
DEFAULT_CACHE_BYTES = 512 * 1024 * 1024

#: ``scorer_stats`` keys that legitimately differ between a cold
#: ``Scorpion.explain`` and a warm service call for the same problem:
#: the service/DT-cache counters themselves, the build counters for
#: work a warm call reuses instead of redoing, and wall-clock timings.
#: Everything *outside* this set is covered by the bit-for-bit
#: warm-equals-cold contract (the differential oracle in
#: ``tests/test_service.py`` asserts exactly that).
CACHE_STAT_KEYS = frozenset({
    "service_cache_hit", "service_hits", "service_misses",
    "service_evictions", "service_entries", "service_cached_bytes",
    "dtcache_partition_hits", "dtcache_partition_misses",
    "dtcache_entry_evictions", "dtcache_c_evictions", "dtcache_entries",
    "index_builds", "index_build_seconds",
    "batch_seconds", "batch_throughput",
})


#: Per-request ``scorer_stats`` counters the service publishes into its
#: metrics registry as monotonic process totals after every request
#: (``(stats_key, metric_name, help)``).
_PUBLISHED_COUNTERS = (
    ("dtcache_partition_hits", "scorpion_dtcache_partition_hits_total",
     "DT-cache partition reuses across requests"),
    ("dtcache_partition_misses", "scorpion_dtcache_partition_misses_total",
     "DT partitionings actually run"),
    ("dtcache_entry_evictions", "scorpion_dtcache_entry_evictions_total",
     "DT-cache signature entries evicted"),
    ("dtcache_c_evictions", "scorpion_dtcache_c_evictions_total",
     "DT-cache per-c merge results evicted"),
    ("index_builds", "scorpion_index_builds_total",
     "Prefix-aggregate index attribute views built"),
    ("index_build_seconds", "scorpion_index_build_seconds_total",
     "Seconds spent building index attribute views"),
    ("masked_predicates", "scorpion_masked_predicates_total",
     "Predicates scored through the mask-matrix kernel"),
    ("indexed_predicates", "scorpion_indexed_predicates_total",
     "Predicates answered by the prefix-aggregate index"),
    ("cost_routed_mask", "scorpion_cost_routed_mask_total",
     "Cost-model decisions routed to the mask kernel"),
    ("cost_routed_prefix", "scorpion_cost_routed_prefix_total",
     "Cost-model decisions routed to the prefix tier"),
    ("cost_routed_bucket", "scorpion_cost_routed_bucket_total",
     "Cost-model decisions routed to the bucket tier"),
    ("cost_routed_gather", "scorpion_cost_routed_gather_total",
     "Cost-model decisions routed to the gather tier"),
    ("cost_routed_conj", "scorpion_cost_routed_conj_total",
     "Cost-model decisions routed to the conjunction tier"),
    ("parallel_shards", "scorpion_parallel_shards_total",
     "Shards dispatched to the worker pool"),
)


def _resolve_cache_bytes(cache_bytes: int | None) -> int:
    if cache_bytes is None:
        raw = os.environ.get("SCORPION_CACHE_BYTES", "").strip()
        cache_bytes = int(raw) if raw else DEFAULT_CACHE_BYTES
    if cache_bytes < 0:
        raise ScorpionError(
            f"cache_bytes must be non-negative, got {cache_bytes}")
    return int(cache_bytes)


class _CacheEntry:
    """One cached problem: its narrowed query, its Scorpion, and the
    live scorer.  ``pins`` counts in-flight requests — pinned entries
    are never evicted, and an entry evicted while pinned (``dead``) is
    released by the last request to unpin it."""

    __slots__ = ("key", "problem", "scorpion", "scorer", "nbytes",
                 "pins", "dead", "lock")

    def __init__(self, key: tuple):
        self.key = key
        self.problem: ScorpionQuery | None = None
        self.scorpion: Scorpion | None = None
        self.scorer = None
        self.nbytes = 0
        self.pins = 0
        self.dead = False
        self.lock = threading.Lock()

    def release(self) -> None:
        """Free the scorer's resources (worker pool, shared memory) and
        the entry's DT cache.  Idempotent."""
        if self.scorer is not None:
            self.scorer.close()
        if self.scorpion is not None:
            self.scorpion.cache.clear()


class ExplainService:
    """Long-lived explain front end with content-keyed artifact caching.

    Parameters
    ----------
    cache_bytes:
        Resident-byte capacity for cached problem artifacts (None →
        ``SCORPION_CACHE_BYTES``, else :data:`DEFAULT_CACHE_BYTES`;
        ``0`` keeps nothing resident between calls).
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` this service
        publishes into (None → the process-wide
        :data:`~repro.obs.metrics.REGISTRY`).  Pool-level metrics
        (``scorpion_pool_*``) always land in the global registry, since
        the pool layer has no service handle.
    logger:
        Optional :class:`~repro.obs.logs.JsonLogger`; when set, async
        deadline expiries are logged as ``deadline_expired`` events.
    **scorpion_kwargs:
        Forwarded to each entry's :class:`~repro.core.scorpion.Scorpion`
        (``algorithm``, ``workers``, ``top_k``, ``trace``,
        ``backend``, ...).  Content keys are derived from the problem
        alone, never from these kwargs — in particular ``backend`` is an
        execution strategy with a bit-for-bit contract, so cached
        artifacts are valid whichever engine built them.  When
        tracing is on (``trace=True`` or ``SCORPION_TRACE=1``) the
        service activates one tracer per request, so checkout/build
        spans and the inner explain tree share one trace on
        ``result.trace``.
    """

    def __init__(self, cache_bytes: int | None = None,
                 registry: MetricsRegistry | None = None,
                 logger=None, **scorpion_kwargs):
        self.cache_bytes = _resolve_cache_bytes(cache_bytes)
        self._scorpion_kwargs = dict(scorpion_kwargs)
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.cached_bytes = 0
        trace = scorpion_kwargs.get("trace")
        self._trace = tracing_enabled() if trace is None else bool(trace)
        self.logger = logger
        self.registry = registry if registry is not None else REGISTRY
        reg = self.registry
        self._m_requests = reg.counter(
            "scorpion_requests_total", "Explain requests completed")
        self._m_errors = reg.counter(
            "scorpion_request_errors_total", "Explain requests that raised")
        self._m_latency = reg.histogram(
            "scorpion_request_seconds",
            "End-to-end explain request latency (seconds)")
        self._m_hits = reg.counter(
            "scorpion_cache_hits_total", "Content-key cache hits")
        self._m_misses = reg.counter(
            "scorpion_cache_misses_total", "Content-key cache misses")
        self._m_evictions = reg.counter(
            "scorpion_cache_evictions_total",
            "Cache entries evicted by the byte capacity")
        self._m_entries = reg.gauge(
            "scorpion_cache_entries", "Resident cache entries")
        self._m_bytes = reg.gauge(
            "scorpion_cache_resident_bytes",
            "Bytes billed to resident cache entries")
        self._m_dtcache_entries = reg.gauge(
            "scorpion_dtcache_entries",
            "DT-cache entries of the most recently served problem")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def explain(self, problem: ScorpionQuery, *, c: float | None = None,
                c_holdout: float | None = None,
                lam: float | None = None) -> ScorpionResult:
        """Explain an already-built problem, reusing a cached entry when
        one matches its content key.

        ``c`` / ``c_holdout`` / ``λ`` default to the problem's own
        values; passing them sweeps knobs against the cached image
        without constructing new :class:`ScorpionQuery` objects.
        """
        if c is None:
            # No c override: replay the problem's own (already resolved)
            # scalars exactly.
            c_eff = problem.c
            ch_eff = problem.c_holdout if c_holdout is None else float(c_holdout)
        else:
            # c override: an unspecified c_holdout follows c, matching
            # the ScorpionQuery constructor and with_c slider semantics.
            c_eff = float(c)
            ch_eff = None if c_holdout is None else float(c_holdout)
        return self._serve_request(
            problem_key(problem), lambda: problem, c=c_eff, c_holdout=ch_eff,
            lam=problem.lam if lam is None else float(lam))

    def explain_request(self, table: Table, query: GroupByQuery,
                        outliers: Iterable, holdouts: Iterable = (),
                        error_vectors: float | Mapping = 1.0, *,
                        lam: float = 0.5, c: float = 1.0,
                        c_holdout: float | None = None,
                        attributes: Iterable[str] | None = None,
                        ignore: Iterable[str] = (),
                        perturbation: str = "delete") -> ScorpionResult:
        """Explain from raw request inputs.

        The content key is computed *without* executing the group-by,
        so a cache hit skips the problem build entirely — the entry
        point serve mode uses.  Arguments mirror
        :class:`~repro.core.problem.ScorpionQuery`.
        """
        key = request_key(table, query, outliers, holdouts, error_vectors,
                          attributes, ignore, perturbation)

        def make_problem() -> ScorpionQuery:
            return ScorpionQuery(
                table, query, outliers, holdouts=holdouts,
                error_vectors=error_vectors, lam=lam, c=c,
                c_holdout=c_holdout, attributes=attributes,
                ignore=ignore, perturbation=perturbation)

        return self._serve_request(
            key, make_problem, c=float(c),
            c_holdout=None if c_holdout is None else float(c_holdout),
            lam=float(lam))

    def _serve_request(self, key: tuple,
                       make_problem: Callable[[], ScorpionQuery], *,
                       c: float, c_holdout: float | None,
                       lam: float) -> ScorpionResult:
        """Acquire → (build) → run, wrapped in the per-request
        observability envelope: one tracer per request when tracing is
        on (checkout/build spans plus the inner explain tree, exported
        onto ``result.trace``), the latency histogram, and the
        request/cache metric publications."""
        started = time.perf_counter()
        tracer = (Tracer().activate()
                  if self._trace and current_tracer() is None else None)
        hit = False
        try:
            with span("checkout") as csp:
                entry, hit = self._acquire(key)
                if csp:
                    csp.annotate(hit=hit)
            try:
                with entry.lock:
                    if entry.scorer is None:
                        self._build_with_shed(entry, make_problem)
                    result = self._run(entry, hit, c=c, c_holdout=c_holdout,
                                       lam=lam)
            finally:
                self._unpin(entry)
        except Exception:
            self._m_errors.inc()
            raise
        finally:
            if tracer is not None:
                tracer.deactivate()
        if tracer is not None:
            result.trace = tracer.export()
        self._observe(result, time.perf_counter() - started)
        return result

    def _observe(self, result: ScorpionResult, elapsed: float) -> None:
        """Publish one finished request into the metrics registry."""
        self._m_requests.inc()
        self._m_latency.observe(elapsed)
        with self._lock:
            entries = len(self._entries)
            cached = self.cached_bytes
        self._m_entries.set(entries)
        self._m_bytes.set(cached)
        stats = result.scorer_stats
        for stat_key, metric_name, help_text in _PUBLISHED_COUNTERS:
            value = stats.get(stat_key, 0)
            if value:
                self.registry.counter(metric_name, help_text).inc(value)
        if "dtcache_entries" in stats:
            self._m_dtcache_entries.set(stats["dtcache_entries"])

    async def explain_async(self, problem: ScorpionQuery, *,
                            c: float | None = None,
                            c_holdout: float | None = None,
                            lam: float | None = None,
                            deadline: float | None = None) -> ScorpionResult:
        """Queue an explain on a worker thread with a deadline.

        Concurrent calls for the same content key serialize on the
        entry (one build, N reuses); distinct keys run concurrently.
        ``deadline`` is seconds (None → ``SCORPION_TASK_TIMEOUT`` /
        the executor default, the same resolution chain worker shards
        use; ``<= 0`` waits forever); expiry raises
        :class:`asyncio.TimeoutError` via :func:`asyncio.wait_for`.
        """
        if deadline is None:
            deadline = _resolve_timeout(None)
        elif deadline <= 0:
            deadline = None
        coro = asyncio.to_thread(self.explain, problem, c=c,
                                 c_holdout=c_holdout, lam=lam)
        if deadline is None:
            return await coro
        try:
            return await asyncio.wait_for(coro, deadline)
        except asyncio.TimeoutError:
            if self.logger is not None:
                self.logger.log("deadline_expired", deadline_s=deadline,
                                c=c, lam=lam)
            raise

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Current service counters (the same numbers each result
        carries under ``service_*`` keys), plus the process-level view:
        completed-request count and error count, the request-latency
        histogram snapshot, and worker-pool start/failure totals.  The
        extra keys are registry-backed — ``service_requests`` counts
        requests that *completed* while ``service_hits + service_misses``
        counts requests that *started*, so the two only differ by
        in-flight or failed requests."""
        with self._lock:
            base = {
                "service_hits": self.hits,
                "service_misses": self.misses,
                "service_evictions": self.evictions,
                "service_entries": len(self._entries),
                "service_cached_bytes": self.cached_bytes,
            }
        latency = self._m_latency.snapshot()
        base["service_requests"] = latency["count"]
        base["service_request_errors"] = self._m_errors.value
        base["service_request_seconds"] = latency
        # Pool metrics are process-wide and always published to the
        # global registry by the executor layer.
        for stats_key, metric_name in (
                ("service_pool_starts", "scorpion_pool_starts_total"),
                ("service_pool_failures", "scorpion_pool_failures_total")):
            metric = REGISTRY.get(metric_name)
            base[stats_key] = int(metric.value) if metric is not None else 0
        return base

    def health(self) -> dict:
        """Liveness/degradation summary for the serve ``health`` op.

        ``degraded`` is True while any cached scorer's recovery circuit
        is holding batches serial; per-scorer detail rides in
        ``pools``.  Process-wide resilience counters (restarts,
        degraded batches, OOM retries) come from the global registry —
        the pool layer publishes there regardless of which registry the
        service was built with.
        """
        with self._lock:
            entries = list(self._entries.values())
            info: dict = {
                "ok": not self._closed,
                "cache_entries": len(entries),
                "cached_bytes": self.cached_bytes,
                "cache_capacity_bytes": self.cache_bytes,
                "pinned_entries": sum(1 for e in entries if e.pins > 0),
            }
        pools = []
        for entry in entries:
            scorer = entry.scorer
            if scorer is not None:
                pools.append(scorer.parallel_health())
        info["pools"] = pools
        info["degraded"] = any(p["state"] == "degraded" for p in pools)
        for key_name, metric_name in (
                ("pool_starts", "scorpion_pool_starts_total"),
                ("pool_failures", "scorpion_pool_failures_total"),
                ("pool_restarts", "scorpion_pool_restarts_total"),
                ("pool_retries", "scorpion_pool_retries_total"),
                ("degraded_batches", "scorpion_degraded_batches_total"),
                ("oom_retries", "scorpion_oom_retries_total")):
            metric = REGISTRY.get(metric_name)
            info[key_name] = int(metric.value) if metric is not None else 0
        return info

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def close(self) -> None:
        """Evict everything and refuse further requests.  Entries with
        requests in flight are released by their last request."""
        with self._lock:
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
            self.cached_bytes = 0
            for entry in entries:
                entry.dead = True
            to_release = [e for e in entries if e.pins == 0]
        for entry in to_release:
            entry.release()

    def __enter__(self) -> "ExplainService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _acquire(self, key: tuple) -> tuple[_CacheEntry, bool]:
        """Pin the entry for ``key``, inserting a shell on miss.  The
        hit/miss decision happens here, atomically under the service
        lock — concurrent same-key requests see one miss and N-1 hits
        regardless of how their builds interleave."""
        fault_point("service.checkout")
        with self._lock:
            if self._closed:
                raise ScorpionError("ExplainService is closed")
            entry = self._entries.get(key)
            if entry is None:
                entry = _CacheEntry(key)
                self._entries[key] = entry
                self.misses += 1
                hit = False
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
            entry.pins += 1
        # Mirror the decision into the registry outside the service lock
        # (counters carry their own locks) so registry totals always
        # reconcile with the service_hits / service_misses counters.
        (self._m_hits if hit else self._m_misses).inc()
        return entry, hit

    def _unpin(self, entry: _CacheEntry) -> None:
        release = False
        with self._lock:
            entry.pins -= 1
            if entry.dead:
                release = entry.pins == 0
            else:
                self._evict_over_capacity()
        if release:
            entry.release()

    def _build(self, entry: _CacheEntry, problem: ScorpionQuery) -> None:
        """Populate a shell entry (entry lock held): one Scorpion with
        its own bounded DT cache, plus the narrowed problem and scorer
        from the build half of the pipeline."""
        fault_point("service.build")
        scorpion = Scorpion(**self._scorpion_kwargs)
        narrowed, scorer = scorpion.build_scorer(problem)
        entry.problem = narrowed
        entry.scorpion = scorpion
        entry.scorer = scorer
        self._reaccount(entry)

    def _build_with_shed(self, entry: _CacheEntry,
                         make_problem: Callable[[], ScorpionQuery]) -> None:
        """Build, and on :class:`MemoryError` shed every unpinned cache
        entry and retry once (entry lock held).

        A build is the service's one unbounded allocation (problem
        image + evaluator arrays scale with the dataset), so memory
        pressure is met by giving up residency, not by failing the
        request.  A second :class:`MemoryError` means the problem
        doesn't fit even in an empty cache: surface it as the
        structured :class:`~repro.errors.ResourceExhausted` (serve code
        ``oom_retry``).
        """
        try:
            self._build(entry, make_problem())
            return
        except MemoryError:
            shed = self._shed_bytes(exempt=entry)
        self.registry.counter(
            "scorpion_oom_retries_total",
            "Problem builds retried after MemoryError shed the cache").inc()
        if self.logger is not None:
            self.logger.log("oom_shed", shed_bytes=shed)
        try:
            self._build(entry, make_problem())
        except MemoryError as exc:
            raise ResourceExhausted(
                f"problem build out of memory even after shedding "
                f"{shed} cached bytes: {exc}") from exc

    def _shed_bytes(self, exempt: _CacheEntry | None = None) -> int:
        """Memory-pressure relief: drop every unpinned entry (LRU and
        hot alike) and return the bytes given back."""
        with self._lock:
            shed = 0
            for key, entry in list(self._entries.items()):
                if entry is exempt or entry.pins > 0:
                    continue
                del self._entries[key]
                entry.dead = True
                self.cached_bytes -= entry.nbytes
                shed += entry.nbytes
                self.evictions += 1
                self._m_evictions.inc()
                entry.release()
        return shed

    def _run(self, entry: _CacheEntry, hit: bool, *, c: float,
             c_holdout: float | None, lam: float) -> ScorpionResult:
        """Execute against the entry's scorer (entry lock held).

        Stats reset + memo drop first, so the scoring counters a warm
        call reports replay a cold call's exactly (the bit-for-bit
        contract); then rebind the knobs and run the execute half.
        """
        scorer = entry.scorer
        scorer.reset_stats()
        scorer.clear_memo()
        target = entry.problem.with_params(c=c, c_holdout=c_holdout, lam=lam)
        scorer.rebind(target)
        result = entry.scorpion.explain(target, scorer=scorer)
        self._reaccount(entry)
        result.scorer_stats.update(self._service_stats(hit))
        return result

    def _reaccount(self, entry: _CacheEntry) -> None:
        """Re-bill the entry's resident bytes (they grow when a run
        builds index views lazily) and evict if now over capacity."""
        nbytes = entry.scorer.resident_bytes()
        with self._lock:
            if not entry.dead:
                self.cached_bytes += nbytes - entry.nbytes
                entry.nbytes = nbytes
                self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        """Drop LRU entries until under capacity (service lock held).
        Pinned entries are skipped — an in-flight request may exceed
        capacity transiently rather than lose its scorer mid-run."""
        if self.cached_bytes <= self.cache_bytes:
            return
        for key, entry in list(self._entries.items()):
            if entry.pins > 0:
                continue
            del self._entries[key]
            entry.dead = True
            self.cached_bytes -= entry.nbytes
            self.evictions += 1
            self._m_evictions.inc()
            entry.release()
            if self.cached_bytes <= self.cache_bytes:
                return

    def _service_stats(self, hit: bool) -> dict:
        with self._lock:
            return {
                "service_cache_hit": bool(hit),
                "service_hits": self.hits,
                "service_misses": self.misses,
                "service_evictions": self.evictions,
                "service_entries": len(self._entries),
                "service_cached_bytes": self.cached_bytes,
            }
