"""ASCII plotting for terminal-friendly figure reproductions.

The paper's Figures 1, 8 and 9 are scatter plots; these helpers render
their essence in a terminal: a 2-D density/category scatter and a
predicate-box overlay.  The synthetic example uses them to show the
nested cubes and the predicate Scorpion recovers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.predicates.clause import RangeClause
from repro.predicates.predicate import Predicate

#: Density ramp for scatter cells, light to dark.
_RAMP = " .:+*#@"


def ascii_scatter(x: np.ndarray, y: np.ndarray,
                  labels: np.ndarray | None = None,
                  width: int = 60, height: int = 24,
                  x_range: tuple[float, float] | None = None,
                  y_range: tuple[float, float] | None = None,
                  label_chars: str = ".ox*#") -> str:
    """Render points as a character grid.

    Without ``labels``, cell darkness encodes point density.  With
    integer ``labels`` (0, 1, 2, …), each cell shows the character of the
    *highest* label present — so rare outlier classes stay visible on
    top of the normal background.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise DatasetError(f"x and y differ in shape: {x.shape} vs {y.shape}")
    if len(x) == 0:
        raise DatasetError("nothing to plot")
    if width < 2 or height < 2:
        raise DatasetError("plot must be at least 2x2")
    x_lo, x_hi = x_range if x_range else (float(x.min()), float(x.max()))
    y_lo, y_hi = y_range if y_range else (float(y.min()), float(y.max()))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    cols = np.clip(((x - x_lo) / x_span * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((y - y_lo) / y_span * (height - 1)).astype(int), 0, height - 1)

    if labels is None:
        counts = np.zeros((height, width), dtype=int)
        np.add.at(counts, (rows, cols), 1)
        peak = counts.max() or 1
        grid = np.full((height, width), " ", dtype="<U1")
        for r in range(height):
            for col in range(width):
                if counts[r, col]:
                    level = int(counts[r, col] / peak * (len(_RAMP) - 1))
                    grid[r, col] = _RAMP[max(level, 1)]
    else:
        labels = np.asarray(labels, dtype=int)
        if labels.shape != x.shape:
            raise DatasetError("labels must align with the points")
        if labels.max() >= len(label_chars):
            raise DatasetError(
                f"label {labels.max()} has no character (have {len(label_chars)})")
        cell_label = np.full((height, width), -1, dtype=int)
        np.maximum.at(cell_label, (rows, cols), labels)
        grid = np.full((height, width), " ", dtype="<U1")
        for r in range(height):
            for col in range(width):
                if cell_label[r, col] >= 0:
                    grid[r, col] = label_chars[cell_label[r, col]]

    lines = []
    for r in range(height - 1, -1, -1):  # y grows upward
        lines.append("|" + "".join(grid[r]) + "|")
    top = f"+{'-' * width}+  y in [{y_lo:g}, {y_hi:g}]"
    bottom = f"+{'-' * width}+  x in [{x_lo:g}, {x_hi:g}]"
    return "\n".join([top] + lines + [bottom])


def overlay_box(plot: str, predicate: Predicate, x_attr: str, y_attr: str,
                x_range: tuple[float, float], y_range: tuple[float, float],
                ) -> str:
    """Draw a predicate's 2-D bounding box onto an :func:`ascii_scatter`
    output (corners ``+``, edges ``-``/``|`` replaced where blank)."""
    lines = [list(line) for line in plot.splitlines()]
    height = len(lines) - 2
    # Interior width sits between the two '|' of any data row.
    data_row = "".join(lines[1])
    width = data_row.rindex("|") - data_row.index("|") - 1

    def col_of(attr_value: float, lo: float, hi: float) -> int:
        span = (hi - lo) or 1.0
        return int(np.clip((attr_value - lo) / span * (width - 1), 0, width - 1))

    x_clause = predicate.clause_for(x_attr)
    y_clause = predicate.clause_for(y_attr)
    x_lo, x_hi = x_range
    y_lo, y_hi = y_range
    cx0 = col_of(x_clause.lo if isinstance(x_clause, RangeClause) else x_lo,
                 x_lo, x_hi)
    cx1 = col_of(x_clause.hi if isinstance(x_clause, RangeClause) else x_hi,
                 x_lo, x_hi)
    height_span = (y_hi - y_lo) or 1.0

    def row_of(value: float) -> int:
        fraction = np.clip((value - y_lo) / height_span, 0.0, 1.0)
        return int((1.0 - fraction) * (height - 1)) + 1  # +1 for top border

    ry1 = row_of(y_clause.lo if isinstance(y_clause, RangeClause) else y_lo)
    ry0 = row_of(y_clause.hi if isinstance(y_clause, RangeClause) else y_hi)
    for col in range(cx0, cx1 + 1):
        for row in (ry0, ry1):
            lines[row][col + 1] = "=" if lines[row][col + 1] == " " else lines[row][col + 1]
    for row in range(ry0, ry1 + 1):
        for col in (cx0, cx1):
            lines[row][col + 1] = "I" if lines[row][col + 1] == " " else lines[row][col + 1]
    return "\n".join("".join(line) for line in lines)
