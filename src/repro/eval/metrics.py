"""Precision / recall / F-score of explanation predicates (Section 8.2).

The paper scores a predicate ``p`` by the tuples it matches inside the
outlier input groups: ``p(g_O)`` versus a ground-truth set, with::

    F = 2 · precision · recall / (precision + recall)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.predicates.predicate import Predicate
from repro.table.table import Table


@dataclass(frozen=True)
class AccuracyStats:
    """Confusion-derived accuracy of one predicate."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        selected = self.true_positives + self.false_positives
        return self.true_positives / selected if selected else 0.0

    @property
    def recall(self) -> float:
        relevant = self.true_positives + self.false_negatives
        return self.true_positives / relevant if relevant else 0.0

    @property
    def f_score(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0


def confusion_counts(selected: np.ndarray, truth: np.ndarray) -> AccuracyStats:
    """Confusion counts from aligned boolean masks."""
    selected = np.asarray(selected, dtype=bool)
    truth = np.asarray(truth, dtype=bool)
    if selected.shape != truth.shape:
        raise DatasetError(
            f"mask shapes differ: {selected.shape} vs {truth.shape}"
        )
    return AccuracyStats(
        true_positives=int(np.count_nonzero(selected & truth)),
        false_positives=int(np.count_nonzero(selected & ~truth)),
        false_negatives=int(np.count_nonzero(~selected & truth)),
    )


def score_predicate(predicate: Predicate, table: Table, truth_mask: np.ndarray,
                    outlier_rows: np.ndarray | None = None) -> AccuracyStats:
    """Accuracy of ``predicate`` against ``truth_mask`` over ``table``.

    Following Section 8.2, when ``outlier_rows`` is given both the
    selection and the ground truth are restricted to those rows
    (``p(g_O)`` vs truth ∩ ``g_O``).
    """
    truth_mask = np.asarray(truth_mask, dtype=bool)
    if truth_mask.shape != (len(table),):
        raise DatasetError(
            f"truth mask has shape {truth_mask.shape}, table has {len(table)} rows"
        )
    selected = predicate.mask(table)
    if outlier_rows is not None:
        outlier_rows = np.asarray(outlier_rows, dtype=np.int64)
        selected = selected[outlier_rows]
        truth_mask = truth_mask[outlier_rows]
    return confusion_counts(selected, truth_mask)
