"""Plain-text report formatting for benchmark output.

Benchmarks print the same rows/series the paper's figures plot; these
helpers render them as aligned fixed-width tables so the shapes (who
wins, where the crossovers fall) are readable straight off the console.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """An aligned fixed-width table with a title rule."""
    rendered = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = [title, "=" * max(len(title), 1)]
    lines.append("  ".join(h.rjust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, series: Mapping[str, Mapping],
                  x_label: str = "x") -> str:
    """Render ``{series name: {x: y}}`` with one row per x value —
    the textual equivalent of one figure panel."""
    xs: list = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: list = [x]
        for name in series:
            row.append(series[name].get(x, float("nan")))
        rows.append(row)
    return format_table(title, headers, rows)
