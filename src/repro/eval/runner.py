"""Experiment plumbing shared by every benchmark.

``run_algorithm`` executes one (algorithm, problem) pair and records the
best predicate, its influence, accuracy against a ground truth, and the
wall-clock cost; ``sweep_c`` repeats that across the Section 7 knob the
experiments vary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.dt import DTPartitioner
from repro.core.mc import MCPartitioner
from repro.core.naive import NaivePartitioner
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.errors import PartitionerError
from repro.eval.metrics import AccuracyStats, score_predicate
from repro.obs.trace import phase_totals
from repro.predicates.predicate import Predicate
from repro.service.service import ExplainService
from repro.table.table import Table


@dataclass
class RunRecord:
    """Outcome of one algorithm execution."""

    algorithm: str
    c: float
    predicate: Predicate | None
    influence: float
    runtime: float
    stats: AccuracyStats | None = None
    n_candidates: int = 0
    #: Scorer operation counters for the run (see
    #: :meth:`repro.core.influence.ScorerStats.as_dict`), including the
    #: batch-scoring size/throughput counters, the index-routing
    #: counters (``indexed_predicates`` / ``masked_predicates`` /
    #: ``index_builds`` / ``index_build_seconds``), and the
    #: parallel-execution counters (``parallel_batches`` /
    #: ``parallel_shards``) with worker-side kernel counters merged in.
    scorer_stats: dict = field(default_factory=dict)
    #: Per-phase wall-clock breakdown in seconds.  Always carries the
    #: result's ``partition`` / ``merge`` timings; with tracing enabled
    #: (``SCORPION_TRACE=1`` or a traced Scorpion/service) every span
    #: name is a key — ``score_batch``, ``merge_round``, ``build``,
    #: ``prepare_index``, ``shard``, ... — each summed across the run
    #: (see :func:`repro.obs.trace.phase_totals`).
    phase_seconds: dict = field(default_factory=dict)
    #: The run's exported span tree when tracing was enabled
    #: (:attr:`ScorpionResult.trace`), else ``None``.
    trace: list | None = None

    @property
    def f_score(self) -> float:
        return self.stats.f_score if self.stats else 0.0

    @property
    def batch_throughput(self) -> float:
        """Predicates/second through the Scorer's batch API (0 if the
        run never batched)."""
        return float(self.scorer_stats.get("batch_throughput", 0.0))

    @property
    def indexed_predicates(self) -> int:
        """Predicates the planner routed through the prefix-aggregate
        index during the run (all tiers)."""
        return int(self.scorer_stats.get("indexed_predicates", 0))

    @property
    def indexed_ranges(self) -> int:
        """Index predicates answered by the single-range tier."""
        return int(self.scorer_stats.get("indexed_ranges", 0))

    @property
    def indexed_sets(self) -> int:
        """Index predicates answered by the discrete code-bucket tier."""
        return int(self.scorer_stats.get("indexed_sets", 0))

    @property
    def indexed_conjunctions(self) -> int:
        """Index predicates answered by the 2-clause conjunction tier."""
        return int(self.scorer_stats.get("indexed_conjunctions", 0))

    @property
    def masked_predicates(self) -> int:
        """Predicates scored through the mask-matrix kernel during the
        run's batched calls."""
        return int(self.scorer_stats.get("masked_predicates", 0))

    @property
    def parallel_shards(self) -> int:
        """Predicate shards the run executed on worker processes (0 for
        serial runs)."""
        return int(self.scorer_stats.get("parallel_shards", 0))

    @property
    def parallel_group_shards(self) -> int:
        """(predicate-chunk × group-range) tiles the run executed on
        worker processes (0 when only the predicate axis was sharded)."""
        return int(self.scorer_stats.get("parallel_group_shards", 0))

    @property
    def cost_routed(self) -> dict:
        """Cost-model routing decisions by winning route (``mask`` /
        ``prefix`` / ``bucket`` / ``gather`` / ``conj``)."""
        return {name: int(self.scorer_stats.get(f"cost_routed_{name}", 0))
                for name in ("mask", "prefix", "bucket", "gather", "conj")}

    @property
    def cost_calibrations(self) -> int:
        """Cost-model microcalibration passes the run's process had
        performed (0 with ``SCORPION_COST_CALIBRATE=off``, else 1)."""
        return int(self.scorer_stats.get("cost_calibrations", 0))

    @property
    def precision(self) -> float:
        return self.stats.precision if self.stats else 0.0

    @property
    def recall(self) -> float:
        return self.stats.recall if self.stats else 0.0


def make_partitioner(name: str, **kwargs):
    """Partitioner factory used by benches (``dt`` / ``mc`` / ``naive``)."""
    name = name.lower()
    if name == "dt":
        return DTPartitioner(**kwargs)
    if name == "mc":
        return MCPartitioner(**kwargs)
    if name == "naive":
        return NaivePartitioner(**kwargs)
    raise PartitionerError(f"unknown algorithm {name!r}")


def run_algorithm(name: str, problem: ScorpionQuery, table: Table | None = None,
                  truth_mask: np.ndarray | None = None,
                  outlier_rows: np.ndarray | None = None,
                  scorpion: Scorpion | None = None,
                  workers: int | None = None,
                  service: ExplainService | None = None,
                  c: float | None = None,
                  **partitioner_kwargs) -> RunRecord:
    """Run one algorithm on ``problem`` and score its best predicate.

    ``table``/``truth_mask``/``outlier_rows`` enable accuracy scoring;
    omit them to record influence and runtime only.  A pre-built
    ``scorpion`` may be passed to share its cross-``c`` cache (its own
    ``workers`` setting then applies); otherwise ``workers`` selects the
    scorer's sharded-execution process count — influences and counters
    are identical at any setting, so benches can sweep it freely.

    A resident ``service`` routes the run through its content-keyed
    cache instead (the service's own algorithm/partitioner
    configuration applies — bake ``partitioner_kwargs`` into it);
    ``c`` then rebinds the knob against the cached problem image
    rather than rebuilding via ``with_c``.
    """
    started = time.perf_counter()
    if service is not None:
        result = service.explain(problem, c=c)
    else:
        partitioner = make_partitioner(name, **partitioner_kwargs)
        scorpion = scorpion or Scorpion(use_cache=False, workers=workers)
        scorpion.partitioner = partitioner
        if c is not None:
            problem = problem.with_c(c)
        result = scorpion.explain(problem)
    runtime = time.perf_counter() - started
    best = result.best
    stats = None
    if best is not None and table is not None and truth_mask is not None:
        stats = score_predicate(best.predicate, table, truth_mask, outlier_rows)
    phase_seconds = {"partition": result.partition_elapsed,
                     "merge": result.merge_elapsed}
    if result.trace:
        phase_seconds.update(phase_totals(result.trace))
    return RunRecord(
        algorithm=name,
        c=problem.c if c is None else float(c),
        predicate=best.predicate if best else None,
        influence=best.influence if best else float("nan"),
        runtime=runtime,
        stats=stats,
        n_candidates=result.n_candidates,
        scorer_stats=result.scorer_stats,
        phase_seconds=phase_seconds,
        trace=result.trace,
    )


def sweep_c(name: str, problem: ScorpionQuery, c_values: Sequence[float],
            table: Table | None = None, truth_mask: np.ndarray | None = None,
            outlier_rows: np.ndarray | None = None,
            share_cache: bool = False, workers: int | None = None,
            use_service: bool = False,
            **partitioner_kwargs) -> list[RunRecord]:
    """Run one algorithm across a ``c`` sweep (the axis of Figures 9–13).

    With ``share_cache`` the runs share a Scorpion instance so DT reuses
    partitions and merger warm starts (the Section 8.3.3 experiment).
    With ``use_service`` the sweep runs through a resident
    :class:`~repro.service.ExplainService` instead: the problem image,
    index views, and worker pool are built once and every ``c`` after
    the first rebinds against them (no per-``c`` ``with_c`` rebuild),
    on top of the same DT partition/merge reuse ``share_cache`` gives.
    ``workers`` applies to every run (see :func:`run_algorithm`).
    """
    if use_service:
        with ExplainService(
                partitioner=make_partitioner(name, **partitioner_kwargs),
                workers=workers) as service:
            return [run_algorithm(
                name, problem, table=table, truth_mask=truth_mask,
                outlier_rows=outlier_rows, service=service, c=c)
                for c in c_values]
    scorpion = Scorpion(use_cache=True, workers=workers) if share_cache else None
    records = []
    for c in c_values:
        records.append(run_algorithm(
            name, problem.with_c(c), table=table, truth_mask=truth_mask,
            outlier_rows=outlier_rows, scorpion=scorpion, workers=workers,
            **partitioner_kwargs))
    return records


def best_f_by_c(records: Iterable[RunRecord]) -> dict[float, float]:
    """Convenience: map each swept ``c`` to the F-score achieved."""
    return {record.c: record.f_score for record in records}
