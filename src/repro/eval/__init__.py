"""Evaluation harness: accuracy metrics, experiment running, reporting.

Implements the Section 8.2 methodology — a predicate is scored by
comparing the tuples it selects *within the outlier input groups*
(``p(g_O)``) against a ground-truth tuple set, via precision, recall and
F-score — plus the sweep/record/format plumbing every benchmark shares.
"""

from repro.eval.metrics import AccuracyStats, confusion_counts, score_predicate
from repro.eval.plot import ascii_scatter, overlay_box
from repro.eval.report import format_series, format_table
from repro.eval.runner import RunRecord, run_algorithm, sweep_c

__all__ = [
    "AccuracyStats",
    "RunRecord",
    "ascii_scatter",
    "confusion_counts",
    "format_series",
    "format_table",
    "overlay_box",
    "run_algorithm",
    "score_predicate",
    "sweep_c",
]
