"""Name → aggregate registry.

Used by the mini SQL parser (``avg(temp)`` → :class:`Avg`) and by users
plugging in custom aggregates.  Registration is by instance; lookups are
case-insensitive.
"""

from __future__ import annotations

from repro.aggregates.base import AggregateFunction
from repro.aggregates.standard import Avg, Count, Max, Median, Min, StdDev, Sum, Variance
from repro.errors import AggregateError

_REGISTRY: dict[str, AggregateFunction] = {}


def register_aggregate(aggregate: AggregateFunction, replace: bool = False) -> None:
    """Register ``aggregate`` under its ``name``.

    Raises :class:`AggregateError` if the name is taken and ``replace`` is
    False — silently shadowing a built-in would change query semantics.
    """
    key = aggregate.name.lower()
    if key in _REGISTRY and not replace:
        raise AggregateError(
            f"aggregate {aggregate.name!r} is already registered; pass replace=True"
        )
    _REGISTRY[key] = aggregate


def get_aggregate(name: str) -> AggregateFunction:
    """Look up an aggregate by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise AggregateError(
            f"unknown aggregate {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_aggregates() -> list[str]:
    """Sorted names of all registered aggregates."""
    return sorted(_REGISTRY)


for _agg in (Sum(), Count(), Avg(), Variance(), StdDev(), Min(), Max(), Median()):
    register_aggregate(_agg)
