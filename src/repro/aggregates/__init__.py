"""Aggregate-function framework (paper Section 5).

Scorpion works with arbitrary user-defined aggregates but exploits three
optional operator properties for efficiency:

* **incrementally removable** (Section 5.1): the aggregate decomposes into
  ``state`` / ``update`` / ``remove`` / ``recover`` so a predicate's effect
  can be evaluated from the removed tuples alone;
* **independent** (Section 5.2): tuples influence the result independently,
  enabling the DT partitioner;
* **anti-monotonic** (Section 5.3): the ``check(D)`` hook declares when
  ``Δ`` is anti-monotone over predicate containment, enabling MC pruning.

Standard aggregates: SUM, COUNT, AVG, STDDEV, VARIANCE (incrementally
removable + independent), MIN, MAX, MEDIAN (black-box).
"""

from repro.aggregates.base import AggregateFunction, LinearStateAggregate
from repro.aggregates.registry import get_aggregate, list_aggregates, register_aggregate
from repro.aggregates.standard import (
    Avg,
    Count,
    Max,
    Median,
    Min,
    StdDev,
    Sum,
    Variance,
)

__all__ = [
    "AggregateFunction",
    "LinearStateAggregate",
    "Avg",
    "Count",
    "Max",
    "Median",
    "Min",
    "StdDev",
    "Sum",
    "Variance",
    "get_aggregate",
    "list_aggregates",
    "register_aggregate",
]
