"""Standard aggregate functions with their Scorpion properties.

Property assignments follow the paper directly:

* Section 5.1: "COUNT and SUM based arithmetic expressions, such as AVG,
  STDDEV and VARIANCE are incrementally removable"; MIN/MAX/MEDIAN are
  not.
* Section 5.2: the DT algorithm "exploits this [independence] property
  for aggregates such as AVG and STDDEV"; SUM/COUNT are used with both
  DT and MC in the experiments, so they are independent too.
* Section 5.3: ``COUNT.check(D) = True``, ``MAX.check(D) = True``,
  ``SUM.check(D) = (no negative values)``.
"""

from __future__ import annotations

import numpy as np

from repro.aggregates.base import AggregateFunction, LinearStateAggregate
from repro.errors import AggregateError


class Sum(LinearStateAggregate):
    """SUM — incrementally removable, independent, anti-monotone on
    non-negative data."""

    name = "sum"
    is_independent = True
    state_size = 2  # [sum, count]
    empty_value = 0.0

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return np.column_stack([values, np.ones_like(values)])

    def recover(self, state: np.ndarray) -> float:
        return float(state[0])

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        return np.asarray(states, dtype=np.float64)[:, 0].copy()

    def check(self, values: np.ndarray) -> bool:
        """Anti-monotone iff the data satisfies the non-negativity
        constraint (paper Section 5.3)."""
        values = np.asarray(values, dtype=np.float64)
        return bool(np.all(values >= 0))


class Count(LinearStateAggregate):
    """COUNT — incrementally removable, independent, always anti-monotone."""

    name = "count"
    is_independent = True
    state_size = 1  # [count]
    empty_value = 0.0

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return np.ones((len(values), 1), dtype=np.float64)

    def recover(self, state: np.ndarray) -> float:
        return float(state[0])

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        return np.asarray(states, dtype=np.float64)[:, 0].copy()

    def check(self, values: np.ndarray) -> bool:
        return True


class Avg(LinearStateAggregate):
    """AVG — incrementally removable and independent (paper Section 5.1
    gives its state/update/remove/recover decomposition explicitly)."""

    name = "avg"
    is_independent = True
    state_size = 2  # [sum, count]

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return np.column_stack([values, np.ones_like(values)])

    def recover(self, state: np.ndarray) -> float:
        count = state[1]
        if count <= 0:
            raise AggregateError("avg is undefined on empty input")
        return float(state[0] / count)

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=np.float64)
        counts = states[:, 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            out = states[:, 0] / counts
        out[counts <= 0] = np.nan
        return out


class Variance(LinearStateAggregate):
    """Population VARIANCE — state ``[sum, sum of squares, count]``."""

    name = "variance"
    is_independent = True
    state_size = 3

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return np.column_stack([values, values * values, np.ones_like(values)])

    def recover(self, state: np.ndarray) -> float:
        total, total_sq, count = state
        if count <= 0:
            raise AggregateError("variance is undefined on empty input")
        mean = total / count
        # Clamp tiny negatives introduced by floating-point cancellation.
        return float(max(total_sq / count - mean * mean, 0.0))

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=np.float64)
        counts = states[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            means = states[:, 0] / counts
            out = np.maximum(states[:, 1] / counts - means * means, 0.0)
        out[counts <= 0] = np.nan
        return out


class StdDev(Variance):
    """Population STDDEV — the paper's Intel workloads aggregate."""

    name = "stddev"

    def recover(self, state: np.ndarray) -> float:
        return float(np.sqrt(super().recover(state)))

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        return np.sqrt(super().recover_batch(states))


class Min(AggregateFunction):
    """MIN — black-box: not incrementally removable (Section 5.1)."""

    name = "min"

    def compute(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise AggregateError("min is undefined on empty input")
        return float(np.min(values))


class Max(AggregateFunction):
    """MAX — black-box, but ``Δ`` is anti-monotone (Section 5.3)."""

    name = "max"

    def compute(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise AggregateError("max is undefined on empty input")
        return float(np.max(values))

    def check(self, values: np.ndarray) -> bool:
        return True


class Median(AggregateFunction):
    """MEDIAN — black-box: not incrementally removable (Section 5.1)."""

    name = "median"

    def compute(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise AggregateError("median is undefined on empty input")
        return float(np.median(values))
