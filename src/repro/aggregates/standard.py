"""Standard aggregate functions with their Scorpion properties.

Property assignments follow the paper directly:

* Section 5.1: "COUNT and SUM based arithmetic expressions, such as AVG,
  STDDEV and VARIANCE are incrementally removable"; MIN/MAX/MEDIAN are
  not.
* Section 5.2: the DT algorithm "exploits this [independence] property
  for aggregates such as AVG and STDDEV"; SUM/COUNT are used with both
  DT and MC in the experiments, so they are independent too.
* Section 5.3: ``COUNT.check(D) = True``, ``MAX.check(D) = True``,
  ``SUM.check(D) = (no negative values)``.
"""

from __future__ import annotations

import numpy as np

from repro.aggregates.base import AggregateFunction, LinearStateAggregate
from repro.errors import AggregateError

#: Relative threshold below which a state component is treated as pure
#: floating-point cancellation residue in ``remove``.  Subtracting the
#: state of a removed subset cancels the large components of
#: ``[sum, sum_sq]`` almost exactly; what survives can be rounding noise
#: on the order of ``n · eps`` times the cancelled magnitude (~1e-13 at
#: worst), so anything under 1e-12 of that magnitude carries no
#: information.
_STATE_RTOL = 1e-12

#: Relative threshold below which a recovered variance is clamped to an
#: exact zero.  A few ulps of ``mean_sq + mean²`` is the intrinsic
#: rounding floor of the ``mean_sq − mean²`` subtraction itself; staying
#: this tight keeps genuinely small variances (relative spread down to
#: ~1e-7 of the mean) intact.  Larger residues inherited from *removed*
#: data are handled in :meth:`Variance.remove`, which still sees the
#: cancelled magnitude.
_VARIANCE_RTOL = 1e-15

_EPS = float(np.finfo(np.float64).eps)


class Sum(LinearStateAggregate):
    """SUM — incrementally removable, independent, anti-monotone on
    non-negative data."""

    name = "sum"
    is_independent = True
    state_size = 2  # [sum, count]
    empty_value = 0.0

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return np.column_stack([values, np.ones_like(values)])

    def recover(self, state: np.ndarray) -> float:
        return float(state[0])

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        return np.asarray(states, dtype=np.float64)[:, 0].copy()

    def check(self, values: np.ndarray) -> bool:
        """Anti-monotone iff the data satisfies the non-negativity
        constraint (paper Section 5.3)."""
        values = np.asarray(values, dtype=np.float64)
        return bool(np.all(values >= 0))


class Count(LinearStateAggregate):
    """COUNT — incrementally removable, independent, always anti-monotone."""

    name = "count"
    is_independent = True
    state_size = 1  # [count]
    empty_value = 0.0

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return np.ones((len(values), 1), dtype=np.float64)

    def recover(self, state: np.ndarray) -> float:
        return float(state[0])

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        return np.asarray(states, dtype=np.float64)[:, 0].copy()

    def check(self, values: np.ndarray) -> bool:
        return True


class Avg(LinearStateAggregate):
    """AVG — incrementally removable and independent (paper Section 5.1
    gives its state/update/remove/recover decomposition explicitly)."""

    name = "avg"
    is_independent = True
    state_size = 2  # [sum, count]

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return np.column_stack([values, np.ones_like(values)])

    def recover(self, state: np.ndarray) -> float:
        count = state[1]
        if count <= 0:
            raise AggregateError("avg is undefined on empty input")
        return float(state[0] / count)

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=np.float64)
        counts = states[:, 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            out = states[:, 0] / counts
        out[counts <= 0] = np.nan
        return out


class Variance(LinearStateAggregate):
    """Population VARIANCE — state ``[sum, sum of squares, count]``."""

    name = "variance"
    is_independent = True
    state_size = 3

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return np.column_stack([values, values * values, np.ones_like(values)])

    def remove(self, state_d: np.ndarray, state_s: np.ndarray) -> np.ndarray:
        result = super().remove(state_d, state_s)
        state_d = np.asarray(state_d, dtype=np.float64)
        # Removing most of a group cancels the [sum, sum_sq] components
        # almost exactly; a surviving residue below _STATE_RTOL of the
        # minuend is rounding noise standing in for a true zero, and
        # letting it through makes recover() report a phantom variance
        # for a remainder of identical values.
        minuend = np.abs(state_d[:2])
        noise = np.abs(result[:2]) <= _STATE_RTOL * minuend
        result[:2] = np.where(noise, 0.0, result[:2])
        # Subtler cancellation: a residue can ride on top of a *legit*
        # remaining component (e.g. one surviving tuple), leaving the
        # implied variance equal to pure rounding noise inherited from
        # the removed data's magnitude.  Only remove() still sees that
        # magnitude, so the noise floor is judged here: when the
        # remainder's variance sits below it, rewrite sum_sq to the
        # variance-zero state so recover() lands on an exact 0.
        total, total_sq, count = result
        count_d = state_d[2]
        if count >= 1 and count_d > 0:
            mean = total / count
            variance = total_sq / count - mean * mean
            cancelled = (abs(float(state_d[1]))
                         + float(state_d[0]) ** 2 / count_d) / count
            if variance <= 4.0 * _EPS * count_d * cancelled:
                result[1] = total * total / count
        # Scope note: the Scorer's hot paths subtract states inline and
        # never call remove(), so these clamps guard the public state
        # protocol; scoring relies on the recover()/recover_batch()
        # clamp below (its few-ulp floor matches the inline paths, whose
        # subtractions cancel same-magnitude states directly).
        return result

    def recover(self, state: np.ndarray) -> float:
        total, total_sq, count = state
        if count <= 0:
            raise AggregateError("variance is undefined on empty input")
        mean = total / count
        mean_sq = total_sq / count
        variance = mean_sq - mean * mean
        # ``mean_sq − mean²`` cancels catastrophically when the values are
        # near-identical: clamp negatives and anything within rounding
        # noise of the cancelled magnitude to an exact zero.
        if variance <= _VARIANCE_RTOL * (mean_sq + mean * mean):
            return 0.0
        return float(variance)

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=np.float64)
        counts = states[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            means = states[:, 0] / counts
            mean_sq = states[:, 1] / counts
            out = mean_sq - means * means
            out = np.where(
                out <= _VARIANCE_RTOL * (mean_sq + means * means), 0.0, out)
        out[counts <= 0] = np.nan
        return out


class StdDev(Variance):
    """Population STDDEV — the paper's Intel workloads aggregate."""

    name = "stddev"

    def recover(self, state: np.ndarray) -> float:
        return float(np.sqrt(super().recover(state)))

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        return np.sqrt(super().recover_batch(states))


class Min(AggregateFunction):
    """MIN — black-box: not incrementally removable (Section 5.1)."""

    name = "min"

    def compute(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise AggregateError("min is undefined on empty input")
        return float(np.min(values))


class Max(AggregateFunction):
    """MAX — black-box, but ``Δ`` is anti-monotone (Section 5.3)."""

    name = "max"

    def compute(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise AggregateError("max is undefined on empty input")
        return float(np.max(values))

    def check(self, values: np.ndarray) -> bool:
        return True


class Median(AggregateFunction):
    """MEDIAN — black-box: not incrementally removable (Section 5.1)."""

    name = "median"

    def compute(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise AggregateError("median is undefined on empty input")
        return float(np.median(values))
