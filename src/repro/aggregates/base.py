"""Aggregate-function protocol and the incrementally-removable state API.

An aggregate maps a one-dimensional float array to a scalar.  The base
class :class:`AggregateFunction` is deliberately black-box: Scorpion's
NAIVE pipeline only ever calls :meth:`AggregateFunction.compute`.  The
three property hooks below unlock the efficient algorithms:

``is_independent``
    Declares the Section 5.2 independence property of ``Δ``; the DT
    partitioner requires it.

``check(values)``
    Declares the Section 5.3 anti-monotonicity of ``Δ`` *for this input*
    (e.g. SUM is anti-monotone only over non-negative data); the MC
    partitioner requires it.

``state / update / remove / recover``
    The Section 5.1 incrementally-removable decomposition.  Aggregates
    advertising ``is_incrementally_removable`` must make
    ``recover(remove(state(D), state(S))) == compute(D - S)`` hold for
    any subset ``S`` of ``D``.

:class:`LinearStateAggregate` implements the decomposition for the common
case where the state is an additive vector of per-tuple contributions
(SUM/COUNT/AVG/STDDEV/VARIANCE are all of this shape); subclasses provide
only the per-tuple state rows and the ``recover`` formula.  The additive
shape also gives a *vectorized* path: :meth:`tuple_states` returns an
``(n, k)`` matrix whose masked column-sums are subset states, which is
what lets the Scorer evaluate thousands of candidate predicates without
touching the raw data again.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import AggregateError


class AggregateFunction(abc.ABC):
    """A scalar aggregate over a float array, with optional properties."""

    #: SQL-ish name used by the registry and the mini SQL parser.
    name: str = "aggregate"
    #: Section 5.2 — tuples influence the result independently.
    is_independent: bool = False
    #: Section 5.1 — the state/update/remove/recover decomposition exists.
    is_incrementally_removable: bool = False

    # ------------------------------------------------------------------
    # Black-box interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def compute(self, values: np.ndarray) -> float:
        """The aggregate of ``values``.

        Raises :class:`AggregateError` when the aggregate is undefined on
        empty input (AVG, STDDEV, MIN, MAX, MEDIAN).
        """

    def check(self, values: np.ndarray) -> bool:
        """Whether ``Δ`` is anti-monotone over predicate containment on
        this input (Section 5.3).  Defaults to False (no pruning)."""
        return False

    #: Value of the aggregate on an empty input, or None when undefined.
    empty_value: float | None = None

    # ------------------------------------------------------------------
    # Incrementally removable decomposition (Section 5.1)
    # ------------------------------------------------------------------
    def state(self, values: np.ndarray) -> np.ndarray:
        """Constant-size state summarizing ``values``."""
        raise AggregateError(f"{self.name} is not incrementally removable")

    def update(self, *states: np.ndarray) -> np.ndarray:
        """Combine states of non-overlapping subsets into one."""
        raise AggregateError(f"{self.name} is not incrementally removable")

    def remove(self, state_d: np.ndarray, state_s: np.ndarray) -> np.ndarray:
        """State of ``D - S`` given states of ``D`` and ``S ⊆ D``."""
        raise AggregateError(f"{self.name} is not incrementally removable")

    def recover(self, state: np.ndarray) -> float:
        """The aggregate value represented by ``state``."""
        raise AggregateError(f"{self.name} is not incrementally removable")

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        """Per-tuple states as an ``(n, k)`` matrix (vectorized path)."""
        raise AggregateError(f"{self.name} is not incrementally removable")

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        """Recover many states at once: ``(m, k)`` state matrix → ``(m,)``
        values.  Rows describing empty subsets recover NaN rather than
        raising, so callers can mark them invalid in bulk."""
        raise AggregateError(f"{self.name} is not incrementally removable")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class LinearStateAggregate(AggregateFunction):
    """Incrementally removable aggregates with additive vector states.

    Subclasses implement :meth:`tuple_states` (each row is the state of a
    single tuple) and :meth:`recover`; ``state``, ``update`` and
    ``remove`` follow from additivity.  The last state component must be
    the tuple count so ``remove`` can detect over-removal.
    """

    is_incrementally_removable = True
    #: Number of state components, count last.
    state_size: int = 2

    @abc.abstractmethod
    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        """Per-tuple state rows; shape ``(len(values), state_size)``."""

    @abc.abstractmethod
    def recover(self, state: np.ndarray) -> float:
        """Aggregate value of the subset summarized by ``state``."""

    def state(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            return np.zeros(self.state_size, dtype=np.float64)
        return self.tuple_states(values).sum(axis=0)

    def update(self, *states: np.ndarray) -> np.ndarray:
        if not states:
            return np.zeros(self.state_size, dtype=np.float64)
        out = np.zeros(self.state_size, dtype=np.float64)
        for part in states:
            part = np.asarray(part, dtype=np.float64)
            if part.shape != (self.state_size,):
                raise AggregateError(
                    f"{self.name} state must have shape ({self.state_size},), got {part.shape}"
                )
            out += part
        return out

    def remove(self, state_d: np.ndarray, state_s: np.ndarray) -> np.ndarray:
        state_d = np.asarray(state_d, dtype=np.float64)
        state_s = np.asarray(state_s, dtype=np.float64)
        result = state_d - state_s
        count = result[-1]
        if count < -1e-9:
            raise AggregateError(
                f"{self.name}.remove would leave a negative count ({count}); "
                "the removed set is not a subset of the dataset"
            )
        return result

    def compute(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            if self.empty_value is None:
                raise AggregateError(f"{self.name} is undefined on empty input")
            return self.empty_value
        return self.recover(self.state(values))

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        """Default batch recovery: loop over rows, mapping undefined
        (empty-subset) states to NaN.  Subclasses override with closed
        numpy forms."""
        states = np.asarray(states, dtype=np.float64)
        out = np.empty(len(states), dtype=np.float64)
        for i, row in enumerate(states):
            try:
                out[i] = self.recover(row)
            except AggregateError:
                out[i] = np.nan
        return out
