"""``python -m repro`` — the Scorpion command line (see repro.cli)."""

import sys

from repro.cli import run

sys.exit(run())
