"""The Scorpion facade — Figure 2's end-to-end pipeline.

``Scorpion.explain`` takes a :class:`~repro.core.problem.ScorpionQuery`
and runs provenance → partitioner → merger → scorer, returning ranked
:class:`Explanation` objects.  The partitioner is chosen from the
aggregate's declared properties unless forced:

* independent **and** anti-monotone on the labeled data → ``MC``;
* independent only → ``DT``;
* black box → ``NAIVE``.

A shared :class:`~repro.core.cache.DTCache` makes repeated ``explain``
calls that differ only in ``c`` cheap (Section 8.3.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import DTCache
from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.core.mc import MCPartitioner
from repro.core.merger import Merger, MergerParams
from repro.core.naive import NaivePartitioner
from repro.core.partition import ScoredPredicate
from repro.core.problem import ScorpionQuery
from repro.errors import PartitionerError
from repro.obs.trace import Tracer, current_tracer, span, tracing_enabled
from repro.predicates.predicate import Predicate


@dataclass(frozen=True)
class Explanation:
    """One ranked answer: a predicate and what it does to the results.

    ``updated_outliers`` / ``updated_holdouts`` give each labeled group's
    aggregate value after deleting the predicate's tuples — the "plot the
    updated output" interaction from Section 4.1.
    """

    predicate: Predicate
    influence: float
    n_matched: int
    updated_outliers: dict[tuple, float] = field(hash=False)
    updated_holdouts: dict[tuple, float] = field(hash=False)

    def __str__(self) -> str:
        return f"{self.predicate}  (influence={self.influence:.6g}, rows={self.n_matched})"


@dataclass
class ScorpionResult:
    """Everything one ``explain`` call produced."""

    explanations: list[Explanation]
    algorithm: str
    elapsed: float
    partition_elapsed: float
    merge_elapsed: float
    n_candidates: int
    #: Scorer operation counters (:meth:`ScorerStats.as_dict`), including
    #: the batch-scoring counters ``batch_calls`` / ``batch_predicates``
    #: / ``largest_batch`` / ``batch_seconds`` / ``batch_throughput``,
    #: the index-routing counters ``indexed_predicates`` (with its
    #: per-tier split ``indexed_ranges`` / ``indexed_sets`` /
    #: ``indexed_conjunctions`` and ``conjunction_fallbacks``) /
    #: ``masked_predicates`` / ``index_builds`` / ``index_build_seconds``,
    #: and the parallel-execution counters ``parallel_batches`` /
    #: ``parallel_shards`` (worker-side kernel counters are merged back
    #: in, so totals match a serial run).  ``Scorpion.explain`` merges in
    #: this call's :class:`~repro.core.cache.DTCache` window
    #: (``dtcache_*`` deltas + entry gauge); the resident service adds
    #: its own ``service_*`` counters on top.
    scorer_stats: dict
    #: Exported span tree (flat list of span dicts; see
    #: :meth:`repro.obs.trace.Tracer.export`) when tracing was enabled
    #: for this call — via ``SCORPION_TRACE=1``, ``trace=True``, or the
    #: resident service's per-request tracer.  ``None`` when off.
    trace: list | None = None

    @property
    def best(self) -> Explanation | None:
        return self.explanations[0] if self.explanations else None


class Scorpion:
    """End-to-end influential-predicate search.

    Parameters
    ----------
    algorithm:
        ``"auto"`` (property-driven choice), ``"dt"``, ``"mc"``, or
        ``"naive"``.
    partitioner:
        Pre-configured partitioner instance overriding ``algorithm``.
    merger_params:
        Overrides for the DT-path Merger (MC runs its own internal
        merger; NAIVE needs none).
    use_cache:
        Reuse DT partitions and warm-start merges across ``c`` values.
    top_k:
        Number of explanations to return.
    auto_select_attributes:
        Drop explanation attributes whose filter relevance (Section 6.4:
        correlation / mutual information with per-tuple influence) falls
        below ``relevance_threshold`` before partitioning.  The paper
        defers this to future work; it is implemented here as an
        extension and is off by default.
    relevance_threshold:
        Minimum relevance an attribute must reach to be kept.
    use_index:
        Let the Scorer route the search's hot predicate shapes —
        single range clauses, single set clauses, and 2-clause
        conjunctions — through the prefix-aggregate index (on by
        default; see :mod:`repro.index`).
    batch_chunk:
        Override for the Scorer's per-pass predicate chunk size (None =
        the ``SCORPION_BATCH_CHUNK`` environment variable, else the
        built-in default); benchmarks sweep it.  With ``workers > 1``
        it is also the shard size fanned out to worker processes.
    workers:
        Worker processes for sharded batch scoring (None = the
        ``SCORPION_WORKERS`` environment variable, else 1 = serial;
        ``0`` = one worker per CPU).  Every search algorithm funnels
        through ``InfluenceScorer.score_batch``, so NAIVE, MC, DT, and
        the Merger all inherit the parallelism; results are bit-for-bit
        identical at any setting (see :mod:`repro.parallel`).
    group_chunk:
        Group-axis sharding granularity for parallel batches: contexts
        per (predicate-chunk × group-range) tile.  None (default, or
        ``SCORPION_GROUP_CHUNK``) lets the cost model decide per batch;
        ``0`` disables group tiling; ``>= 1`` forces that tile height.
        Results are identical at any setting.
    task_timeout:
        Per-shard worker deadline in seconds (None = the
        ``SCORPION_TASK_TIMEOUT`` environment variable, else the
        executor default; ``<= 0`` waits forever).
    trace:
        Record a per-call span tree on :attr:`ScorpionResult.trace`
        (None = the ``SCORPION_TRACE`` environment variable, default
        off).  Tracing never changes results — the differential oracle
        runs a traced leg, and ``bench_obs_overhead.py`` pins the
        overhead.
    backend:
        Execution backend for the Scorer's state building and index
        views: ``"numpy"`` (default), ``"duckdb"`` (pushdown into an
        embedded DuckDB engine), or an
        :class:`~repro.backend.base.ExecutionBackend` instance.  None
        consults the ``SCORPION_BACKEND`` environment variable.
        Backends never change results (bit-for-bit; see
        :mod:`repro.backend`), and a missing engine package degrades to
        numpy with a warning.
    """

    def __init__(self, algorithm: str = "auto", partitioner=None,
                 merger_params: MergerParams | None = None,
                 use_cache: bool = True, top_k: int = 5,
                 auto_select_attributes: bool = False,
                 relevance_threshold: float = 0.05,
                 use_index: bool = True, batch_chunk: int | None = None,
                 workers: int | None = None,
                 group_chunk: int | None = None,
                 task_timeout: float | None = None,
                 trace: bool | None = None,
                 backend=None):
        if algorithm not in ("auto", "dt", "mc", "naive"):
            raise PartitionerError(f"unknown algorithm {algorithm!r}")
        if top_k < 1:
            raise PartitionerError(f"top_k must be >= 1, got {top_k}")
        self.algorithm = algorithm
        self.partitioner = partitioner
        self.merger_params = merger_params
        self.use_cache = use_cache
        self.top_k = top_k
        self.auto_select_attributes = auto_select_attributes
        self.relevance_threshold = relevance_threshold
        self.use_index = use_index
        self.batch_chunk = batch_chunk
        self.workers = workers
        self.group_chunk = group_chunk
        self.task_timeout = task_timeout
        self.trace = tracing_enabled() if trace is None else bool(trace)
        self.backend = backend
        self.cache = DTCache()

    # ------------------------------------------------------------------
    def build_scorer(self, query: ScorpionQuery,
                     ) -> tuple[ScorpionQuery, InfluenceScorer]:
        """The expensive per-problem build: attribute narrowing (when
        enabled) plus the :class:`InfluenceScorer` problem image —
        per-group contexts, labeled evaluator arrays, stacked states.

        Returns the (possibly narrowed) query alongside its scorer so a
        resident caller can cache both and replay :meth:`explain` against
        them without rebuilding.  The caller owns the scorer's lifetime
        (``scorer.close()``).
        """
        with span("build") as sp:
            if self.auto_select_attributes:
                query = self._narrow_attributes(query)
            scorer = InfluenceScorer(query, use_index=self.use_index,
                                     batch_chunk=self.batch_chunk,
                                     workers=self.workers,
                                     group_chunk=self.group_chunk,
                                     task_timeout=self.task_timeout,
                                     backend=self.backend)
            if sp:
                sp.annotate(groups=len(scorer.contexts),
                            attributes=len(query.attributes))
        return query, scorer

    def explain(self, query: ScorpionQuery,
                scorer: InfluenceScorer | None = None) -> ScorpionResult:
        """Find the predicates that most influence the flagged outliers.

        With no ``scorer``, builds one via :meth:`build_scorer` and
        closes it before returning (the one-shot path).  With an
        injected ``scorer`` — a cached :meth:`build_scorer` product, as
        the resident :class:`~repro.service.ExplainService` holds — the
        build is skipped entirely: ``query`` must be the narrowed query
        the scorer was built from (modulo ``c``/``c_holdout``/``lam``
        rebinds) and the scorer stays open for the caller to reuse.
        """
        start = time.perf_counter()
        owned = scorer is None
        # Tracer ownership: when a caller (the resident service) already
        # activated one, spans land there and the caller exports; a
        # standalone traced Scorpion owns the whole lifecycle itself.
        own_tracer = self.trace and current_tracer() is None
        tracer = Tracer().activate() if own_tracer else None
        try:
            with span("explain") as root:
                if owned:
                    query, scorer = self.build_scorer(query)
                cache_window = self.cache.counter_snapshot()
                try:
                    partitioner = (self.partitioner
                                   or self._pick_partitioner(query, scorer))

                    merge_elapsed = 0.0
                    if isinstance(partitioner, DTPartitioner):
                        ranked, partition_elapsed, merge_elapsed, n_candidates = (
                            self._run_dt(query, partitioner, scorer))
                        algorithm = "dt"
                    else:
                        with span("partition") as psp:
                            result = partitioner.run(query, scorer)
                            if psp:
                                psp.annotate(algorithm=partitioner.name,
                                             candidates=result.n_evaluated)
                        ranked = result.ranked
                        partition_elapsed = result.elapsed
                        n_candidates = result.n_evaluated
                        algorithm = partitioner.name

                    with span("finalize") as fsp:
                        explanations = [self._to_explanation(sp, scorer, query)
                                        for sp in ranked[: self.top_k]]
                        if fsp:
                            fsp.annotate(explanations=len(explanations))
                    scorer_stats = scorer.stats.as_dict()
                    scorer_stats.update(self.cache.window_stats(cache_window))
                    if root:
                        root.annotate(algorithm=algorithm,
                                      candidates=n_candidates)
                    explained = ScorpionResult(
                        explanations=explanations,
                        algorithm=algorithm,
                        elapsed=time.perf_counter() - start,
                        partition_elapsed=partition_elapsed,
                        merge_elapsed=merge_elapsed,
                        n_candidates=n_candidates,
                        scorer_stats=scorer_stats,
                    )
                finally:
                    # Release the parallel executor's worker pool and
                    # shared memory promptly (no-op for serial scorers).
                    # Injected scorers outlive the call — their owner
                    # closes them.
                    if owned:
                        scorer.close()
            if own_tracer:
                explained.trace = tracer.export()
            return explained
        finally:
            if own_tracer:
                tracer.deactivate()

    # ------------------------------------------------------------------
    def _narrow_attributes(self, query: ScorpionQuery) -> ScorpionQuery:
        """The Section 6.4 extension: keep only influence-relevant
        attributes.  Imported lazily to keep the core free of a featsel
        dependency unless the feature is used."""
        from repro.featsel.filters import select_attributes

        selected = select_attributes(query, threshold=self.relevance_threshold)
        if set(selected) == set(query.attributes):
            return query
        return ScorpionQuery(
            table=query.raw_table,
            query=query.query,
            outliers=query.outlier_keys,
            holdouts=query.holdout_keys,
            error_vectors=query.error_vectors,
            lam=query.lam,
            c=query.c,
            c_holdout=query.c_holdout,
            attributes=tuple(selected),
        )

    def _pick_partitioner(self, query: ScorpionQuery, scorer: InfluenceScorer):
        if self.algorithm == "dt":
            return DTPartitioner()
        if self.algorithm == "mc":
            return MCPartitioner()
        if self.algorithm == "naive":
            return NaivePartitioner()
        aggregate = query.aggregate
        if aggregate.is_independent:
            anti_monotone = all(
                aggregate.check(ctx.agg_values) for ctx in scorer.contexts
            )
            if anti_monotone:
                return MCPartitioner()
            return DTPartitioner()
        return NaivePartitioner()

    def _run_dt(self, query: ScorpionQuery, partitioner: DTPartitioner,
                scorer: InfluenceScorer):
        merge_start: float
        with span("partition") as psp:
            if self.use_cache:
                candidates, partition_elapsed = self.cache.candidates(
                    query, partitioner, scorer)
                seeds = self.cache.merger_seeds(query)
            else:
                result = partitioner.run(query, scorer)
                candidates = result.candidates
                seeds = None
                partition_elapsed = result.elapsed
            if psp:
                psp.annotate(algorithm="dt", candidates=len(candidates),
                             cached=self.use_cache and partition_elapsed == 0.0,
                             seeds=len(seeds) if seeds else 0)
        merger = Merger(scorer, query.domain, params=self.merger_params)
        merge_start = time.perf_counter()
        with span("merge") as msp:
            merged = merger.run(candidates, seeds=seeds)
            if msp:
                msp.annotate(merged=len(merged))
        merge_elapsed = time.perf_counter() - merge_start
        if self.use_cache:
            self.cache.store_merged(query, merged)
        return merged, partition_elapsed, merge_elapsed, len(candidates)

    # ------------------------------------------------------------------
    def _to_explanation(self, scored: ScoredPredicate, scorer: InfluenceScorer,
                        query: ScorpionQuery) -> Explanation:
        predicate = query.domain.simplify(scored.predicate)
        mask = predicate.mask(scorer.table)
        updated_outliers = {}
        updated_holdouts = {}
        for context in scorer.contexts:
            local = mask[context.indices]
            delta = scorer.delta(context, local)
            updated = (context.total_value - delta
                       if np.isfinite(delta) else float("nan"))
            if context.is_outlier:
                updated_outliers[context.key] = updated
            else:
                updated_holdouts[context.key] = updated
        return Explanation(
            predicate=predicate,
            influence=scored.influence,
            n_matched=int(np.count_nonzero(mask)),
            updated_outliers=updated_outliers,
            updated_holdouts=updated_holdouts,
        )
