"""Predicate influence — the Scorer of Figure 2 (paper Sections 3.2, 5.1, 7).

Definitions implemented here, with ``v`` the error vector, ``λ`` the
hold-out weight and ``c`` the Section 7 knob::

    Δ(o, p)          = agg(g_o) − agg(g_o − p(g_o))
    inf(o, p, v, c)  = (Δ(o, p) / |p(g_o)|^c) · v
    inf(O, H, p, V)  = λ · (1/|O|) Σ_o inf(o, p, v_o, c)
                       − (1−λ) · max_h |inf(h, p, 1, c_holdout)|

Two evaluation paths:

* **black box** — recompute the aggregate on ``g_o − p(g_o)``; works for
  any :class:`~repro.aggregates.base.AggregateFunction`;
* **incrementally removable** (Section 5.1) — cache per-group total
  states and per-tuple state rows once; a predicate's Δ is then
  ``recover(total) − recover(total − Σ_{t ∈ p(g)} state(t))``, touching
  only the matched rows.

Both paths share the same edge-case policy: a predicate matching no rows
of a group has zero influence there, and a predicate deleting an *entire*
group whose aggregate has no empty value yields ``-inf`` (the output row
would vanish rather than look normal; see DESIGN.md §4 item 3).

Batched scoring
---------------

:meth:`InfluenceScorer.score_batch` evaluates a whole predicate *set* in
one vectorized pass: the labeled-row evaluator builds an
``(n_predicates, n_rows)`` boolean mask matrix ``M`` (see
:meth:`repro.predicates.evaluator.ArrayMaskEvaluator.evaluate_batch`),
and on the incrementally-removable path every predicate's per-group
removed state — conceptually the matrix product ``M_g @ tuple_states_g``
— is realized as a scatter-add over the matrix's non-zeros, followed by
a single ``recover_batch`` per group.  Black-box aggregates fall back to
a per-predicate recompute loop inside the same bookkeeping.

**Equivalence contract**: ``score_batch(preds)[i] == score(preds[i])``
for every predicate, bit for bit.  The scalar path reduces a matched
row's states with a masked sum and the batch path with a row-major
``bincount`` scatter-add — both accumulate the per-tuple states in
ascending row order, so the removed states (and all downstream
elementwise arithmetic, which the two paths share op-for-op) are
identical floats.  BLAS ``matmul`` is deliberately avoided here: its
blocked reductions are not row-deterministic across batch shapes.  (One
caveat: a single-component state vector is reduced pairwise by the
scalar path's contiguous sum; of the built-ins only COUNT has
``state_size == 1`` and its integer states make any summation order
exact.)  The memo cache is shared, so mixing ``score`` and
``score_batch`` calls never recomputes and never disagrees.

The index fast path
-------------------

``score_batch`` consults an :class:`~repro.index.IndexPlanner` before
building mask matrices.  Three predicate shapes are answered by a
lazily built :class:`~repro.index.PrefixAggregateIndex` instead of an
O(n) mask row per predicate:

* **single range clauses** over continuous labeled attributes (NAIVE's
  1-clause enumeration, DT leaf ranges, MC's per-attribute cells,
  Merger expansion starts) — two binary searches per group, removed
  states from exact prefix-sum differences (O(1), when the group's
  states are integer-summable) or an ascending-row-order gather of just
  the matched rows (O(log n + k));
* **single set clauses** over factorized discrete labeled attributes —
  O(|codes|) code-bucket lookups per group, removed states from exact
  per-bucket sums or the same ascending-row gather (see
  :mod:`repro.index.discrete`);
* **2-clause conjunctions** whose attributes both have index views —
  the planner estimates each side's matched-row total, probes the
  *rarer* clause's sorted slice or code buckets, and mask-tests only
  those k rows against the other clause.

Every tier reproduces the scalar masked sum bit for bit (see
:mod:`repro.index.prefix`), so the equivalence contract is unchanged;
the planner's routing counters (``indexed_predicates`` with its
per-tier split ``indexed_ranges`` / ``indexed_sets`` /
``indexed_conjunctions``, plus ``conjunction_fallbacks`` /
``masked_predicates`` / ``index_builds`` / ``index_build_seconds``)
surface through :class:`ScorerStats`.  Everything else — 3+-clause
conjunctions, black-box aggregates, non-labeled attributes — takes the
mask-matrix kernel exactly as before.

Parallel sharded execution
--------------------------

With ``workers > 1`` (constructor / ``SCORPION_WORKERS`` /
``Scorpion(workers=...)`` / CLI ``--workers``; ``0`` = one worker per
CPU), ``score_batch`` hands its ``batch_chunk``-sized shards to a
persistent process pool instead of looping them in-process (see
:mod:`repro.parallel`).  The problem's arrays go into shared memory
once; each worker rebuilds this scorer's batch kernel around zero-copy
views and runs *the same methods on byte-identical inputs*, and shards
are reassembled in submission order — so influences are bit-for-bit
identical to serial execution at any worker count.  Per-worker kernel
counters are merged back into :class:`ScorerStats`
(:meth:`ScorerStats.merge_worker_counters`), keeping aggregate counters
equal to a serial run's; the parallel-only ``parallel_batches`` /
``parallel_shards`` counters record how much work the pool took.  Any
pool failure (worker crash, shard timeout) falls back to serial scoring
for the rest of the scorer's life, with a warning — results are always
produced.  Batches that fit in a single shard skip the pool entirely,
and cache-hit / fallback predicates are always handled in the parent.
"""

from __future__ import annotations

import dataclasses
import os
import time
import warnings
import weakref
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.aggregates.base import AggregateFunction
from repro.backend import resolve_backend
from repro.core.problem import ScorpionQuery
from repro.errors import AggregateError, PredicateError
from repro.index import IndexPlanner, PrefixAggregateIndex
from repro.index.cost import CostModel, calibration_count
from repro.obs.metrics import REGISTRY
from repro.obs.trace import current_tracer, span
from repro.parallel import resolve_workers
from repro.parallel.recovery import ParallelRecovery
from repro.predicates.clause import RangeClause
from repro.predicates.evaluator import ArrayMaskEvaluator
from repro.predicates.predicate import Predicate

INVALID_INFLUENCE = float("-inf")


def _scalar_pow(bases: np.ndarray, exponent: float) -> np.ndarray:
    """``bases ** exponent`` through *scalar* libm pow.

    NumPy's vectorized ``**`` routes through a SIMD pow whose results can
    differ from scalar ``pow`` in the last ulp, which would break the
    bit-for-bit scalar/batch equivalence contract.  Matched-row counts
    repeat heavily, so one scalar pow per unique count is also cheap."""
    if exponent == 1.0:
        return bases
    if exponent == 0.0:
        return np.ones_like(bases)
    uniques, inverse = np.unique(bases, return_inverse=True)
    table = np.asarray([value ** exponent for value in uniques.tolist()],
                       dtype=np.float64)
    return table[inverse]


@dataclass
class GroupContext:
    """Cached evaluation state for one input group ``g_αi``.

    Attributes
    ----------
    key:
        The group's group-by key.
    indices:
        Row positions of the group inside the full input table ``D``.
    agg_values:
        The group's aggregate-attribute values (``π_Aagg g``).
    total_value:
        ``agg(g)`` — the group's original output.
    error_vector:
        ``v_o`` for outlier groups; 1.0 for hold-out groups.
    is_outlier:
        Whether the group belongs to ``O`` (else ``H``).
    total_state / tuple_states:
        Incremental-removal caches (None for black-box aggregates).
    """

    key: tuple
    indices: np.ndarray
    agg_values: np.ndarray
    total_value: float
    error_vector: float
    is_outlier: bool
    total_state: np.ndarray | None = None
    tuple_states: np.ndarray | None = field(default=None, repr=False)
    #: State of one mean-valued tuple (only for the "mean" perturbation).
    mean_state: np.ndarray | None = None

    @property
    def size(self) -> int:
        return len(self.indices)

    @property
    def mean_value(self) -> float:
        return float(np.mean(self.agg_values)) if self.size else float("nan")


@dataclass
class ScorerStats:
    """Operation counters, used by the benchmarks to show what the
    incrementally-removable property (and batching) saves."""

    predicate_scores: int = 0
    mask_scores: int = 0
    incremental_deltas: int = 0
    full_recomputes: int = 0
    cache_hits: int = 0
    #: Number of :meth:`InfluenceScorer.score_batch` invocations.
    batch_calls: int = 0
    #: Predicates submitted through the batch API (cache hits included).
    batch_predicates: int = 0
    #: Largest single batch submitted.
    largest_batch: int = 0
    #: Wall-clock seconds spent inside ``score_batch``.
    batch_seconds: float = 0.0
    #: Batch predicates the planner routed through the prefix-aggregate
    #: index on any tier (unique predicates, cache hits excluded);
    #: always equals ``indexed_ranges + indexed_sets +
    #: indexed_conjunctions``.
    indexed_predicates: int = 0
    #: Index predicates answered by the single-range tier (binary
    #: searches + prefix differences / gathers).
    indexed_ranges: int = 0
    #: Index predicates answered by the discrete code-bucket tier
    #: (single set clauses).
    indexed_sets: int = 0
    #: Index predicates answered by the 2-clause conjunction tier
    #: (probe the rarer clause, mask-test its rows).
    indexed_conjunctions: int = 0
    #: 2-clause predicates the planner examined for the conjunction
    #: tier but routed to the mask kernel (missing index view).
    conjunction_fallbacks: int = 0
    #: Batch predicates that took the mask-matrix kernel instead.
    masked_predicates: int = 0
    #: Attribute indexes built so far (one sorted view per attribute).
    index_builds: int = 0
    #: Wall-clock seconds spent sorting / prefix-summing index builds.
    index_build_seconds: float = 0.0
    #: ``score_batch`` calls whose shards ran on the worker pool.
    parallel_batches: int = 0
    #: Predicate shards executed by worker processes.
    parallel_shards: int = 0
    #: (predicate-chunk × group-range) tiles executed by worker
    #: processes — the group-axis sharding dimension; zero when only
    #: the predicate axis was sharded.
    parallel_group_shards: int = 0
    #: Cost-model routing decisions by winning route (counted in the
    #: parent at partition time, so serial and parallel runs of the
    #: same batch stream record identical values).  Only index-eligible
    #: shapes are priced; structurally unsupported predicates go to the
    #: mask kernel without a decision and appear in none of these.
    cost_routed_mask: int = 0
    cost_routed_prefix: int = 0
    cost_routed_bucket: int = 0
    cost_routed_gather: int = 0
    cost_routed_conj: int = 0
    #: Microcalibration passes run by this process's shared
    #: :class:`~repro.index.cost.CostModel` — a gauge snapshot (set,
    #: not incremented, on every ``score_batch``): 0 with
    #: ``SCORPION_COST_CALIBRATE=off``, 1 after the first calibrated
    #: routing decision, never more within one process.
    cost_calibrations: int = 0
    #: Execution-backend pushdown gauges — snapshots of the scorer's
    #: backend :class:`~repro.backend.base.BackendStats` (set, not
    #: incremented, like :attr:`cost_calibrations`).  All zero on the
    #: numpy reference backend; with a pushdown backend they show how
    #: many group state totals / index views the engine answered and
    #: how often eligibility fell back to the reference path.
    backend_routed_states: int = 0
    backend_routed_views: int = 0
    backend_fallbacks: int = 0

    #: Counters incremented *inside* the batch kernels and therefore on
    #: worker processes when scoring runs parallel; :meth:`worker_counters`
    #: exports them from a worker's stats window and
    #: :meth:`merge_worker_counters` folds them back into the parent's, so
    #: aggregate totals equal a serial run's.  The index-build pair is
    #: normally zero on workers (the parent pre-builds and ships every
    #: routed attribute) but covers the safety-net case of a worker
    #: building an un-shipped attribute locally.  Everything else is
    #: counted in the parent regardless of execution mode.
    WORKER_MERGED = ("incremental_deltas", "full_recomputes",
                     "index_builds", "index_build_seconds")

    @property
    def batch_throughput(self) -> float:
        """Predicates per second through the batch API (0 before use)."""
        if self.batch_seconds <= 0.0:
            return 0.0
        return self.batch_predicates / self.batch_seconds

    def as_dict(self) -> dict:
        """Counters plus derived throughput, for result reporting."""
        data = vars(self).copy()
        data["batch_throughput"] = self.batch_throughput
        return data

    def worker_counters(self) -> dict[str, float]:
        """The kernel-internal counters of this (worker-side) window."""
        return {name: getattr(self, name) for name in self.WORKER_MERGED}

    def merge_worker_counters(self, counters: dict[str, float]) -> None:
        """Fold one worker shard's kernel counters into this aggregate."""
        for name in self.WORKER_MERGED:
            setattr(self, name, getattr(self, name) + counters.get(name, 0))

    def reset(self) -> None:
        """Zero every counter (field defaults are the zeros).

        Monotonicity contract: resetting starts a fresh counting window
        — it must never cause already-counted work to be re-counted.
        The scorer's index-build sync honors this by accumulating
        *deltas* against baselines it keeps outside the stats object
        (see :meth:`InfluenceScorer.reset_stats`).
        """
        for spec in dataclasses.fields(self):
            setattr(self, spec.name, spec.default)


class InfluenceScorer:
    """Evaluates the paper's influence metric for candidate predicates.

    Parameters
    ----------
    query:
        The fully validated :class:`~repro.core.problem.ScorpionQuery`.
    use_incremental:
        Exploit the incrementally-removable property when the aggregate
        advertises it (on by default; benchmarks toggle it off to measure
        the property's benefit).
    cache_scores:
        Memoize predicate → influence (predicates are hashable and the
        Merger re-scores candidates freely).
    use_index:
        Route single range clauses, single set clauses, and 2-clause
        conjunctions in ``score_batch`` through the prefix-aggregate
        index (on by default; only effective on the
        incrementally-removable path).  Benchmarks and the equivalence
        tests toggle it off to exercise the mask-matrix kernel.
    batch_chunk:
        Row cap per vectorized ``score_batch`` pass.  Defaults to the
        ``SCORPION_BATCH_CHUNK`` environment variable, else the class
        default :attr:`BATCH_CHUNK`; chunking never affects results
        (both kernels are row-deterministic), so benchmarks can sweep it
        freely.  With ``workers > 1`` it is also the shard size the
        executor fans out.
    workers:
        Worker processes for sharded ``score_batch`` execution (see
        :mod:`repro.parallel`).  Defaults to the ``SCORPION_WORKERS``
        environment variable, else 1 (serial, no pool); ``0`` means one
        worker per CPU.  Results are bit-for-bit identical at any
        setting.
    cost_model:
        The :class:`~repro.index.cost.CostModel` pricing the planner's
        routing decisions.  ``None`` (default) resolves the
        process-wide shared model lazily on first use — calibrated
        once per process unless ``SCORPION_COST_CALIBRATE=off``.
        Tests inject :func:`~repro.index.cost.force_index_model` /
        :func:`~repro.index.cost.force_mask_model` constants to pin a
        tier regardless of problem shape.
    group_chunk:
        Group-axis sharding granularity for parallel batches: contexts
        per (predicate-chunk × group-range) tile.  ``None`` (default,
        or the ``SCORPION_GROUP_CHUNK`` environment variable) lets the
        cost model pick — tiling engages only when the predicate axis
        alone cannot feed every worker and the per-tile work clears
        the dispatch overhead.  ``0`` disables group tiling; ``>= 1``
        forces that tile height.  Tiling never affects results: tiles
        return per-group partial sums the parent reassembles into the
        exact arrays the serial kernel computes.
    task_timeout:
        Per-shard worker deadline in seconds, forwarded to the
        executor (``None`` → the ``SCORPION_TASK_TIMEOUT`` /
        legacy ``SCORPION_WORKER_TIMEOUT`` environment variables, else
        the executor default; ``<= 0`` waits forever).
    backend:
        Execution backend for state building and index views — a
        :class:`~repro.backend.base.ExecutionBackend` instance, a name
        (``"numpy"`` / ``"duckdb"``), or ``None`` (default) to consult
        the ``SCORPION_BACKEND`` environment variable.  Backends are an
        execution strategy, never a semantics change: results are
        bit-for-bit identical at any setting, and a named engine whose
        package is missing degrades to numpy with a warning.
    """

    def __init__(self, query: ScorpionQuery, use_incremental: bool = True,
                 cache_scores: bool = True, use_index: bool = True,
                 batch_chunk: int | None = None,
                 workers: int | None = None,
                 cost_model: "CostModel | None" = None,
                 group_chunk: int | None = None,
                 task_timeout: float | None = None,
                 backend=None):
        self.query = query
        self.aggregate: AggregateFunction = query.aggregate
        self.lam = query.lam
        self.c = query.c
        self.c_holdout = query.c_holdout
        self.perturbation = query.perturbation
        self.table = query.table
        self.stats = ScorerStats()
        self._backend = resolve_backend(backend)
        self._incremental = bool(
            use_incremental and self.aggregate.is_incrementally_removable
        )
        if batch_chunk is None:
            env_chunk = os.environ.get("SCORPION_BATCH_CHUNK", "").strip()
            if env_chunk:
                batch_chunk = int(env_chunk)
        self.batch_chunk = int(batch_chunk) if batch_chunk is not None else self.BATCH_CHUNK
        if self.batch_chunk < 1:
            raise PredicateError(
                f"batch_chunk must be >= 1, got {self.batch_chunk}")
        if group_chunk is None:
            env_group = os.environ.get("SCORPION_GROUP_CHUNK", "").strip()
            if env_group:
                group_chunk = int(env_group)
        if group_chunk is not None and group_chunk < 0:
            raise PredicateError(
                f"group_chunk must be >= 0, got {group_chunk}")
        #: None = cost model decides per batch; 0 = group tiling off;
        #: >= 1 = fixed contexts per tile.
        self.group_chunk = group_chunk
        self.task_timeout = task_timeout
        self.workers = resolve_workers(workers)
        self._executor = None
        self._parallel_disabled = self.workers <= 1
        self._recovery = ParallelRecovery() if self.workers > 1 else None
        #: Pools started over this scorer's lifetime (restart counter
        #: and the ``SCORPION_POOL_GENERATION`` stamp fault schedules
        #: key on).
        self._pool_starts = 0
        self._finalizer: weakref.finalize | None = None
        self._index_attr_specs: dict = {}
        #: Index build totals already folded into ``stats`` — the sync
        #: baselines that make :meth:`_sync_index_stats` monotonic.
        self._index_builds_seen = 0
        self._index_seconds_seen = 0.0
        self._score_cache: dict[Predicate, float] | None = {} if cache_scores else None
        self._outlier_score_cache: dict[Predicate, float] | None = (
            {} if cache_scores else None
        )
        self._tuple_influence_cache: dict[int, np.ndarray] = {}

        agg_values = self.table.values(query.agg_column)
        self.outlier_contexts: list[GroupContext] = []
        self.holdout_contexts: list[GroupContext] = []
        for result in query.outlier_results:
            self.outlier_contexts.append(self._build_context(
                result, agg_values, query.error_vectors[result.key], is_outlier=True))
        for result in query.holdout_results:
            self.holdout_contexts.append(self._build_context(
                result, agg_values, 1.0, is_outlier=False))
        if self._incremental:
            # All groups' total states in one backend call — the seam a
            # pushdown engine answers with a single GROUP BY.
            totals = self._backend.group_total_states(
                [ctx.tuple_states for ctx in self.contexts])
            for context, total in zip(self.contexts, totals):
                context.total_state = total
        # Influence only depends on labeled rows, so predicates are
        # evaluated against this much smaller concatenated slice of D.
        self._labeled_slices: list[tuple[GroupContext, int, int]] = []
        offset = 0
        for context in self.contexts:
            self._labeled_slices.append((context, offset, offset + context.size))
            offset += context.size
        labeled_rows = np.concatenate([ctx.indices for ctx in self.contexts])
        self._labeled_evaluator = ArrayMaskEvaluator({
            attr: self.table.values(attr)[labeled_rows]
            for attr in query.attributes
        })
        self._n_labeled = offset
        # Batch-kernel companions: which context each labeled row belongs
        # to, and all per-tuple state rows stacked in labeled-row order.
        self._context_ids = np.concatenate([
            np.full(ctx.size, ci, dtype=np.int64)
            for ci, ctx in enumerate(self.contexts)
        ]) if offset else np.empty(0, dtype=np.int64)
        #: Outlier contexts come first in the labeled concatenation, so
        #: columns [0, _outlier_cols) are exactly the outlier rows.
        self._outlier_cols = sum(ctx.size for ctx in self.outlier_contexts)
        self._stacked_states = (
            np.vstack([ctx.tuple_states for ctx in self.contexts])
            if self._incremental and offset else None
        )
        # Prefix-aggregate index over the labeled rows (cheap shell; the
        # per-attribute sorted views build lazily on first routed use or
        # via prepare_index).  Requires the incremental path: black-box
        # aggregates need mask rows to recompute from raw values.
        self._index: PrefixAggregateIndex | None = None
        if use_index and self._incremental and offset:
            evaluator = self._labeled_evaluator
            self._index = PrefixAggregateIndex(
                {attr: evaluator.continuous_values(attr)
                 for attr in evaluator.continuous_attributes},
                [(start, stop) for _, start, stop in self._labeled_slices],
                [ctx.tuple_states for ctx in self.contexts],
                codes_by_attr={attr: evaluator.discrete_codes(attr)
                               for attr in evaluator.discrete_attributes},
                code_tables={attr: evaluator.code_table(attr)
                             for attr in evaluator.discrete_attributes},
                backend=self._backend,
            )
        self._planner = IndexPlanner(self._index, cost_model)
        #: Memoized column-span evaluators for masked group tiles
        #: (key: labeled-column range) — sliced views over the labeled
        #: evaluator's arrays, so tile masks are bit-identical slices
        #: of the full mask matrix.
        self._span_evaluators: dict[tuple[int, int], ArrayMaskEvaluator] = {}
        self._sync_backend_stats()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_context(self, result, agg_values: np.ndarray, error_vector: float,
                       is_outlier: bool) -> GroupContext:
        group_values = agg_values[result.indices]
        context = GroupContext(
            key=result.key,
            indices=result.indices,
            agg_values=group_values,
            total_value=float(result.value),
            error_vector=float(error_vector),
            is_outlier=is_outlier,
        )
        if self._incremental:
            context.tuple_states = self.aggregate.tuple_states(group_values)
            # total_state is filled in afterwards by one batched
            # backend.group_total_states call over every context.
            if self.perturbation == "mean":
                mean = float(np.mean(group_values))
                context.mean_state = self.aggregate.tuple_states(
                    np.asarray([mean]))[0]
        return context

    @property
    def contexts(self) -> list[GroupContext]:
        return self.outlier_contexts + self.holdout_contexts

    @property
    def uses_incremental(self) -> bool:
        return self._incremental

    # ------------------------------------------------------------------
    # Δ computation
    # ------------------------------------------------------------------
    def updated_from_removed(self, context: GroupContext,
                             removed_state: np.ndarray,
                             removed_count: float) -> float:
        """The group's aggregate value after the predicate acts on rows
        whose summed state is ``removed_state``.

        Encapsulates the perturbation semantics for every state-based
        caller (the Merger's approximation and MC's support index as well
        as :meth:`delta`): ``delete`` removes the state outright; ``mean``
        replaces it with ``removed_count`` mean-valued tuples.  Returns
        NaN when the result is undefined (delete mode emptying a group).
        """
        assert context.total_state is not None
        if self.perturbation == "mean":
            assert context.mean_state is not None
            adjusted = (context.total_state - removed_state
                        + removed_count * context.mean_state)
            return float(self.aggregate.recover_batch(
                adjusted[np.newaxis, :])[0])
        remaining = context.total_state - removed_state
        if remaining[-1] < 0.5:  # deleted the whole group
            empty = self.aggregate.empty_value
            return float("nan") if empty is None else float(empty)
        return float(self.aggregate.recover_batch(remaining[np.newaxis, :])[0])

    def delta(self, context: GroupContext, local_mask: np.ndarray) -> float:
        """``Δ(o, p) = agg(g) − agg(g ⊖ p(g))`` for one group, where ``⊖``
        deletes or mean-imputes the matched rows per the problem's
        perturbation mode.

        ``local_mask`` selects the matched rows within the group.
        Returns NaN when the perturbation leaves the aggregate undefined
        (delete mode emptying an AVG/STDDEV group); callers map that to
        ``-inf`` influence.
        """
        removed = int(np.count_nonzero(local_mask))
        if removed == 0:
            return 0.0
        if self._incremental:
            self.stats.incremental_deltas += 1
            assert context.tuple_states is not None
            removed_state = context.tuple_states[local_mask].sum(axis=0)
            updated = self.updated_from_removed(context, removed_state, removed)
            if np.isnan(updated):
                return float("nan")
        else:
            self.stats.full_recomputes += 1
            try:
                if self.perturbation == "mean":
                    modified = context.agg_values.copy()
                    modified[local_mask] = context.mean_value
                    updated = self.aggregate.compute(modified)
                else:
                    updated = self.aggregate.compute(
                        context.agg_values[~local_mask])
            except AggregateError:
                return float("nan")
        return context.total_value - updated

    def group_influence(self, context: GroupContext, local_mask: np.ndarray) -> float:
        """``inf(o, p, v_o)`` (or the unsigned hold-out variant) for one
        group given the rows the predicate removes."""
        removed = int(np.count_nonzero(local_mask))
        if removed == 0:
            return 0.0
        delta = self.delta(context, local_mask)
        if np.isnan(delta):
            return INVALID_INFLUENCE
        exponent = self.c if context.is_outlier else self.c_holdout
        influence = delta / (removed ** exponent)
        if context.is_outlier:
            return influence * context.error_vector
        return influence

    # ------------------------------------------------------------------
    # The full metric
    # ------------------------------------------------------------------
    def score_mask(self, full_mask: np.ndarray, ignore_holdouts: bool = False) -> float:
        """``inf(O, H, p, V)`` given the predicate's full-table mask."""
        local_masks = [full_mask[context.indices] for context in self.contexts]
        return self._score_local(local_masks, ignore_holdouts)

    def _score_local(self, local_masks: list[np.ndarray],
                     ignore_holdouts: bool) -> float:
        """The metric given per-context removal masks (aligned with
        :attr:`contexts`)."""
        self.stats.mask_scores += 1
        outlier_total = 0.0
        worst = 0.0
        for context, local in zip(self.contexts, local_masks):
            if not context.is_outlier and (ignore_holdouts or not self.holdout_contexts):
                continue
            influence = self.group_influence(context, local)
            if influence == INVALID_INFLUENCE:
                return INVALID_INFLUENCE
            if context.is_outlier:
                outlier_total += influence
            else:
                worst = max(worst, abs(influence))
        score = self.lam * outlier_total / max(len(self.outlier_contexts), 1)
        if ignore_holdouts or not self.holdout_contexts:
            return score
        return score - (1.0 - self.lam) * worst

    def _labeled_masks(self, predicate: Predicate) -> list[np.ndarray]:
        """Per-context removal masks, evaluating the predicate only over
        the labeled rows (O(|g_O| + |g_H|), not O(|D|))."""
        if any(not self._labeled_evaluator.supports(c.attribute) for c in predicate):
            # Predicate over non-A_rest attributes (user-supplied): fall
            # back to the full-table path.
            full_mask = predicate.mask(self.table)
            return [full_mask[context.indices] for context in self.contexts]
        mask = self._labeled_evaluator.mask(predicate)
        return [mask[start:stop] for _, start, stop in self._labeled_slices]

    def score(self, predicate: Predicate, ignore_holdouts: bool = False) -> float:
        """``inf(O, H, p, V)`` for a predicate (memoized)."""
        self.stats.predicate_scores += 1
        cache = self._outlier_score_cache if ignore_holdouts else self._score_cache
        if cache is not None and predicate in cache:
            self.stats.cache_hits += 1
            return cache[predicate]
        value = self._score_local(self._labeled_masks(predicate), ignore_holdouts)
        if cache is not None:
            cache[predicate] = value
        return value

    def outlier_only_score(self, predicate: Predicate) -> float:
        """``inf(O, ∅, p, V)`` — MC's conservative pruning estimate
        (Section 6.2)."""
        return self.score(predicate, ignore_holdouts=True)

    # ------------------------------------------------------------------
    # Batched scoring (see module docstring for the equivalence contract)
    # ------------------------------------------------------------------
    #: Default row cap per vectorized pass; bounds the transient mask
    #: matrix and float temporaries without affecting results (the kernel
    #: is row-deterministic, so chunking is invisible).  The effective
    #: per-instance value is :attr:`batch_chunk` (constructor argument or
    #: the ``SCORPION_BATCH_CHUNK`` environment variable).
    BATCH_CHUNK = 1024

    @property
    def caches_scores(self) -> bool:
        """Whether predicate → influence results are memoized (callers
        use this to decide if pre-warming the cache in bulk pays off)."""
        return self._score_cache is not None

    @property
    def uses_index(self) -> bool:
        """Whether the prefix-aggregate index fast path is available."""
        return self._index is not None

    @property
    def planner(self) -> IndexPlanner:
        """The routing planner (exposed for tests and diagnostics)."""
        return self._planner

    def prepare_index(self, attributes: Iterable[str] | None = None,
                      ) -> tuple[str, ...]:
        """Pre-build the prefix-aggregate index for ``attributes``.

        Hot single-clause producers (NAIVE's 1-clause enumeration, MC's
        per-attribute cells, DT leaf ranges feeding the Merger) call
        this to declare the attributes they are about to flood
        ``score_batch`` with, so index build time lands up front instead
        of inside the first scoring chunk.  Continuous attributes get
        sorted range views, discrete attributes code-bucket views;
        ``None`` builds every indexable attribute of either kind.
        Returns the attributes actually indexed (empty when the fast
        path is unavailable) — purely an optimization either way, since
        routed queries build lazily.
        """
        if self._index is None:
            return ()
        if attributes is None:
            attributes = (self._labeled_evaluator.continuous_attributes
                          + self._labeled_evaluator.discrete_attributes)
        with span("prepare_index") as sp:
            built = []
            for attribute in attributes:
                if self._index.supports(attribute):
                    self._index.ensure(attribute)
                    built.append(attribute)
                elif self._index.supports_discrete(attribute):
                    self._index.ensure_discrete(attribute)
                    built.append(attribute)
            self._sync_index_stats()
            if sp:
                sp.annotate(attributes=len(built))
        return tuple(built)

    def _sync_index_stats(self) -> None:
        """Fold index-build work into ``stats`` *monotonically*.

        Accumulates only the delta since the last sync (baselines live
        on the scorer, not the stats object), so a mid-run
        ``reset_stats`` / re-``prepare_index`` can neither resurrect
        already-counted builds nor clobber counters merged back from
        worker shards.
        """
        assert self._index is not None
        builds = self._index.build_count
        seconds = self._index.build_seconds
        self.stats.index_builds += builds - self._index_builds_seen
        self.stats.index_build_seconds += seconds - self._index_seconds_seen
        self._index_builds_seen = builds
        self._index_seconds_seen = seconds

    def _sync_backend_stats(self) -> None:
        """Mirror the backend's pushdown counters into ``stats`` as
        gauge snapshots (the :attr:`ScorerStats.cost_calibrations`
        precedent: set, not incremented, so re-syncing is idempotent)."""
        backend_stats = self._backend.stats
        self.stats.backend_routed_states = backend_stats.routed_states
        self.stats.backend_routed_views = backend_stats.routed_views
        self.stats.backend_fallbacks = backend_stats.fallbacks

    def reset_stats(self) -> None:
        """Start a fresh :class:`ScorerStats` counting window.

        The supported way to reset counters mid-run: clears every
        counter while *keeping* the index-build sync baselines, so work
        counted in a previous window is never counted again (plain
        ``scorer.stats.reset()`` behaves identically now that
        :meth:`_sync_index_stats` is delta-based; this method documents
        and pins the contract).
        """
        self.stats.reset()

    def clear_memo(self) -> None:
        """Drop the predicate → influence memo caches (memoization stays
        enabled; the caches refill).

        The resident service calls this at every checkout so a cached
        scorer replays each request's scoring work exactly as a cold
        scorer would — memo hits would otherwise make warm-call counters
        diverge from the cold path the differential oracle compares
        against.  The per-tuple influence cache is *kept*: tuple deltas
        depend only on the aggregate states and perturbation mode, never
        on ``c``/``λ``, and no counter records them.
        """
        if self._score_cache is not None:
            self._score_cache = {}
        if self._outlier_score_cache is not None:
            self._outlier_score_cache = {}

    def rebind(self, query: ScorpionQuery) -> None:
        """Re-point this scorer at a cheap scalar variant of its problem
        (see :meth:`ScorpionQuery.with_params`).

        Only the search scalars ``c`` / ``c_holdout`` / ``λ`` may
        differ: every cached artifact — contexts, tuple states, the
        labeled evaluator, index views, the worker pool's shared-memory
        image — is derived from the table, query, annotations, and
        perturbation mode, which must be identical (the resident
        service's content key guarantees this; the assertion is the
        safety net).  Memoized influences are dropped because they bake
        the old scalars in.
        """
        if (query.raw_table is not self.query.raw_table
                or query.perturbation != self.perturbation
                or query.attributes != self.query.attributes):
            raise PredicateError(
                "rebind requires an identical problem up to c/c_holdout/lam")
        changed = (query.c != self.c or query.c_holdout != self.c_holdout
                   or query.lam != self.lam)
        self.query = query
        self.c = query.c
        self.c_holdout = query.c_holdout
        self.lam = query.lam
        if changed:
            self.clear_memo()

    def resident_bytes(self) -> int:
        """Bytes of numpy array data this scorer holds resident — the
        resident service's memory-accounting unit.

        Counts each owned array once: per-context indices, aggregate
        values and tuple states, the stacked state matrix, the labeled
        evaluator's comparison arrays, and every built index view.
        Slice views (span evaluators) and small Python object overhead
        are excluded — the arrays counted here are the artifacts whose
        size actually scales with the problem.
        """
        total = 0
        for context in self.contexts:
            total += context.indices.nbytes + context.agg_values.nbytes
            if context.tuple_states is not None:
                total += context.tuple_states.nbytes
            if context.total_state is not None:
                total += context.total_state.nbytes
        if self._stacked_states is not None:
            total += self._stacked_states.nbytes
        total += self._context_ids.nbytes
        total += self._labeled_evaluator.resident_bytes()
        if self._index is not None:
            total += self._index.resident_bytes()
        return int(total)

    def score_batch(self, predicates: Sequence[Predicate] | Iterable[Predicate],
                    ignore_holdouts: bool = False) -> np.ndarray:
        """``inf(O, H, p, V)`` for every predicate, as one vectorized pass.

        Returns a float array aligned with ``predicates`` whose entries
        equal ``[self.score(p, ignore_holdouts) for p in predicates]``
        exactly; results populate the same memo cache ``score`` reads.
        The planner routes index-eligible predicates (single continuous
        range clause on the incremental path) through the
        prefix-aggregate index; the rest take the mask-matrix kernel.
        Predicates over attributes outside the labeled evaluator (or any
        predicate when the aggregate is black-box at the Δ level) are
        scored through the scalar machinery within the same call.
        """
        predicates = list(predicates)
        tracer = current_tracer()
        if tracer is None:
            return self._score_batch_impl(predicates, ignore_holdouts)
        # Traced wrapper: the batch's routing/tier profile is recovered
        # from counter deltas so the scoring path itself is untouched
        # (bit-for-bit identical to the untraced run).
        stats = self.stats
        base = (stats.cache_hits, stats.masked_predicates,
                stats.indexed_ranges, stats.indexed_sets,
                stats.indexed_conjunctions, stats.parallel_shards,
                stats.parallel_batches)
        with tracer.begin("score_batch") as sp:
            out = self._score_batch_impl(predicates, ignore_holdouts)
            sp.annotate(
                predicates=len(predicates),
                groups=self._count_active_contexts(ignore_holdouts),
                cache_hits=stats.cache_hits - base[0],
                masked=stats.masked_predicates - base[1],
                ranges=stats.indexed_ranges - base[2],
                sets=stats.indexed_sets - base[3],
                conjunctions=stats.indexed_conjunctions - base[4],
                shards=stats.parallel_shards - base[5],
                parallel=stats.parallel_batches > base[6],
            )
        return out

    def _score_batch_impl(self, predicates: list,
                          ignore_holdouts: bool) -> np.ndarray:
        """The :meth:`score_batch` body (see its docstring)."""
        started = time.perf_counter()
        self.stats.batch_calls += 1
        self.stats.batch_predicates += len(predicates)
        self.stats.largest_batch = max(self.stats.largest_batch, len(predicates))
        self.stats.predicate_scores += len(predicates)
        cache = self._outlier_score_cache if ignore_holdouts else self._score_cache

        out = np.empty(len(predicates), dtype=np.float64)
        pending: dict[Predicate, list[int]] = {}
        fallback: list[int] = []
        for i, predicate in enumerate(predicates):
            if cache is not None and predicate in cache:
                self.stats.cache_hits += 1
                out[i] = cache[predicate]
            elif predicate in pending:
                pending[predicate].append(i)
            elif not self._labeled_evaluator.supports_predicate(predicate):
                fallback.append(i)
            else:
                pending[predicate] = [i]

        route = self._planner.partition(pending)
        self.stats.conjunction_fallbacks += route.conjunction_fallbacks
        self.stats.cost_routed_mask += route.cost_routed_mask
        self.stats.cost_routed_prefix += route.cost_routed_prefix
        self.stats.cost_routed_bucket += route.cost_routed_bucket
        self.stats.cost_routed_gather += route.cost_routed_gather
        self.stats.cost_routed_conj += route.cost_routed_conj
        self.stats.cost_calibrations = calibration_count()
        self._sync_backend_stats()
        if self._index is not None:
            # Conjunction planning may have built probe-side views.
            self._sync_index_stats()

        def shard(items: list) -> list[list]:
            return [items[lo:lo + self.batch_chunk]
                    for lo in range(0, len(items), self.batch_chunk)]

        masked_shards = shard(route.masked)
        range_shards = shard(route.ranges)
        set_shards = shard(route.sets)
        conj_shards = shard(route.conjunctions)
        n_shards = (len(masked_shards) + len(range_shards)
                    + len(set_shards) + len(conj_shards))

        shard_values = None
        if not self._parallel_disabled and n_shards >= 1:
            group_tiles = self._plan_group_tiles(len(pending), n_shards,
                                                 ignore_holdouts)
            if n_shards >= 2 or group_tiles is not None:
                shard_values = self._score_shards_parallel(
                    masked_shards, range_shards, set_shards, conj_shards,
                    ignore_holdouts, group_tiles)
        if shard_values is None:
            shard_values = (
                [self._score_masked_chunk(chunk, ignore_holdouts)
                 for chunk in masked_shards],
                [self._score_index_chunk(chunk, ignore_holdouts)
                 for chunk in range_shards],
                [self._score_set_chunk(chunk, ignore_holdouts)
                 for chunk in set_shards],
                [self._score_conj_chunk(chunk, ignore_holdouts)
                 for chunk in conj_shards],
            )
        masked_values, range_values, set_values, conj_values = shard_values

        def assign(predicate: Predicate, value: float) -> None:
            value = float(value)
            if cache is not None:
                cache[predicate] = value
            for i in pending[predicate]:
                out[i] = value

        for chunk, values in zip(masked_shards, masked_values):
            self.stats.mask_scores += len(chunk)
            self.stats.masked_predicates += len(chunk)
            for predicate, value in zip(chunk, values):
                assign(predicate, value)

        for tier_shards, tier_values, counter in (
                (range_shards, range_values, "indexed_ranges"),
                (set_shards, set_values, "indexed_sets"),
                (conj_shards, conj_values, "indexed_conjunctions")):
            for chunk, values in zip(tier_shards, tier_values):
                self.stats.indexed_predicates += len(chunk)
                setattr(self.stats, counter,
                        getattr(self.stats, counter) + len(chunk))
                for (predicate, _), value in zip(chunk, values):
                    assign(predicate, value)

        for i in fallback:
            predicate = predicates[i]
            if cache is not None and predicate in cache:
                # Duplicate of an earlier fallback entry in this batch.
                out[i] = cache[predicate]
                continue
            value = self._score_local(self._labeled_masks(predicate),
                                      ignore_holdouts)
            if cache is not None:
                cache[predicate] = value
            out[i] = value

        self.stats.batch_seconds += time.perf_counter() - started
        return out

    # ------------------------------------------------------------------
    # Sharded parallel execution (see repro.parallel)
    # ------------------------------------------------------------------
    @property
    def uses_parallel(self) -> bool:
        """Whether batch shards may be dispatched to worker processes
        right now (``workers > 1`` and the recovery circuit is not
        holding batches serial).  Unlike the pre-ISSUE-9 permanent
        fallback this can flip back to True: the circuit re-probes
        parallel after its cooldown."""
        if self._parallel_disabled:
            return False
        return self._recovery is None or self._recovery.allow_parallel()

    def prepare_parallel(self) -> bool:
        """Spin the worker pool (and the shared-memory problem image) up
        front instead of inside the first parallel batch.

        Round-based drivers (DT partitioning, NAIVE enumeration) call
        this once before their scoring rounds so pool spin-up is paid a
        single time per problem rather than showing up as latency on
        the first round.  Returns True when a pool is live, False on a
        serial scorer, an open recovery circuit, or a startup failure
        (which warns and counts against the restart budget; later
        batches retry through the normal self-healing path).
        """
        if self._parallel_disabled:
            return False
        if self._recovery is not None and not self._recovery.allow_parallel():
            return False
        try:
            self._ensure_executor()
        except Exception as exc:  # noqa: BLE001 - same policy as scoring
            self.close()
            REGISTRY.counter(
                "scorpion_pool_failures_total",
                "Worker-pool failures (start or batch)").inc()
            if self._recovery is not None:
                self._recovery.record_failure()
            warnings.warn(
                f"parallel pool unavailable ({exc}); batches will retry "
                "and fall back to serial as needed",
                RuntimeWarning, stacklevel=2)
            return False
        return True

    def parallel_health(self) -> dict:
        """Live pool/degradation state (surfaced by service ``health``).

        ``state`` is ``"serial"`` (structural: ``workers <= 1``),
        ``"parallel"`` (circuit closed), or ``"degraded"`` (circuit
        open/half-open: batches run serial until a re-probe succeeds).
        """
        if self._parallel_disabled:
            return {"state": "serial", "workers": self.workers,
                    "pool_live": False, "pool_starts": self._pool_starts}
        recovery = self._recovery
        assert recovery is not None
        return {
            "state": "degraded" if recovery.degraded else "parallel",
            "circuit": recovery.state(),
            "workers": self.workers,
            "pool_live": self._executor is not None,
            "pool_starts": self._pool_starts,
        }

    def _plan_group_tiles(self, n_predicates: int, n_shards: int,
                          ignore_holdouts: bool,
                          ) -> list[tuple[int, int]] | None:
        """The group-axis tiling for this batch: a list of context
        ranges ``[lo, hi)`` partitioning the active contexts, or None
        to shard the predicate axis only.

        Tiling requires the incremental path (tiles return per-group
        partial counts/states; black-box scoring needs whole mask rows)
        and at least two active contexts.  ``group_chunk`` forces the
        tile height (0 = off); by default the cost model decides — it
        declines when predicate shards alone keep every worker busy or
        when per-tile work would drown in dispatch overhead.
        """
        if not self._incremental or n_predicates == 0:
            return None
        active = self._count_active_contexts(ignore_holdouts)
        if active < 2:
            return None
        chunk = self.group_chunk
        if chunk == 0:
            return None
        if chunk is None:
            chunk = self._planner.cost_model.choose_tiling(
                n_predicates, active, self._n_labeled, self.workers,
                self.batch_chunk)
            if chunk is None:
                return None
        chunk = max(1, int(chunk))
        if chunk >= active:
            return None
        return [(lo, min(lo + chunk, active))
                for lo in range(0, active, chunk)]

    def _score_shards_parallel(self, masked_shards: list, range_shards: list,
                               set_shards: list, conj_shards: list,
                               ignore_holdouts: bool,
                               group_tiles: list[tuple[int, int]] | None = None):
        """Run routed shards on the worker pool.

        Returns ``(masked_values, range_values, set_values,
        conj_values)`` aligned with the shard lists — bit-for-bit what
        the serial loops would compute — or None after disabling
        parallelism (any failure: the caller then takes the serial path,
        so scoring always completes).

        With ``group_tiles``, every predicate chunk fans out into one
        task per (chunk × group-range) tile; tiles return per-group
        partial counts and removed states which
        :meth:`_reduce_group_tiles` reassembles into the exact arrays
        the serial kernel computes before the shared influence fold —
        so group sharding is invisible in the results.

        Failure policy (self-healing; see
        :class:`~repro.parallel.recovery.ParallelRecovery`): a pool
        failure releases the broken pool, backs off, restarts, and
        retries the whole batch up to ``SCORPION_SHARD_RETRIES`` times;
        exhausted retries or an exhausted restart budget degrade *this
        batch only* to serial (the circuit breaker re-probes parallel
        after its cooldown).  ``KeyboardInterrupt``/``SystemExit``
        propagate after the pool and segments are released.
        """
        recovery = self._recovery
        assert recovery is not None
        if not recovery.allow_parallel():
            REGISTRY.counter(
                "scorpion_degraded_batches_total",
                "Batches scored serial because the pool circuit "
                "was open or retries were exhausted").inc()
            return None
        tracer = current_tracer()
        attempts = recovery.retries + 1
        for attempt in range(attempts):
            try:
                executor = self._ensure_executor()
                # Tasks are rebuilt per attempt: a pool restart gets a
                # fresh problem image, so index-view segment specs from
                # the dead pool would dangle.
                tasks, meta = self._build_shard_tasks(
                    executor, masked_shards, range_shards, set_shards,
                    conj_shards, ignore_holdouts, group_tiles)
                submit_s = time.perf_counter()
                results = executor.run(tasks)
            except BaseException as exc:  # noqa: BLE001 - availability
                # over purity: a broken pool must never break scoring,
                # only slow it down.  Release pool + segments first so
                # no path (interrupt included) leaks shared memory.
                self.close()
                REGISTRY.counter(
                    "scorpion_pool_failures_total",
                    "Worker-pool failures (start or batch)").inc()
                if not isinstance(exc, Exception):
                    raise
                within_budget = recovery.record_failure()
                if within_budget and attempt + 1 < attempts:
                    REGISTRY.counter(
                        "scorpion_pool_retries_total",
                        "Batch retries after a pool failure "
                        "(each restarts the pool)").inc()
                    if tracer is not None:
                        now = time.perf_counter()
                        tracer.add_span("pool_retry", now, now, {
                            "attempt": attempt + 1, "error": repr(exc)})
                    recovery.backoff(attempt)
                    continue
                reason = ("restart budget exhausted — circuit open for "
                          f"{recovery.cooldown:g}s" if not within_budget
                          else f"{attempts} attempts failed")
                warnings.warn(
                    f"parallel scoring failed ({exc}); {reason}; scoring "
                    "serial until the pool recovers",
                    RuntimeWarning, stacklevel=3)
                REGISTRY.counter(
                    "scorpion_degraded_batches_total",
                    "Batches scored serial because the pool circuit "
                    "was open or retries were exhausted").inc()
                return None
            recovery.record_success()
            break
        per_task = []
        for task, (shard_values, worker_counters) in zip(tasks, results):
            self.stats.merge_worker_counters(worker_counters)
            per_task.append(shard_values)
            if tracer is not None:
                # Worker-side perf_counter() stamps ride back in the
                # counters dict (ignored by merge_worker_counters);
                # CLOCK_MONOTONIC is machine-wide, so t0 minus the
                # parent's submit stamp is the shard's real queue wait.
                t0 = worker_counters.get("shard_t0")
                t1 = worker_counters.get("shard_t1")
                if t0 is not None and t1 is not None:
                    attrs = {"kind": task[0], "items": len(task[1]),
                             "queue_wait_ms": round(
                                 max(0.0, t0 - submit_s) * 1e3, 3)}
                    if task[4] is not None:
                        attrs["tile"] = list(task[4])
                    tracer.add_span("shard", t0, t1, attrs)
        self.stats.parallel_batches += 1
        self.stats.parallel_shards += len(tasks)
        values: tuple[list, list, list, list] = (
            [None] * len(masked_shards), [None] * len(range_shards),
            [None] * len(set_shards), [None] * len(conj_shards))
        if group_tiles is None:
            for (tier, position, _), result in zip(meta, per_task):
                values[tier][position] = result
            return values
        self.stats.parallel_group_shards += len(tasks)
        partials: dict[tuple[int, int], list] = {}
        for (tier, position, ti), result in zip(meta, per_task):
            partials.setdefault((tier, position),
                                [None] * len(group_tiles))[ti] = result
        for (tier, position), tile_results in partials.items():
            values[tier][position] = self._reduce_group_tiles(
                tile_results, group_tiles, ignore_holdouts)
        return values

    def _build_shard_tasks(self, executor, masked_shards: list,
                           range_shards: list, set_shards: list,
                           conj_shards: list, ignore_holdouts: bool,
                           group_tiles: list[tuple[int, int]] | None,
                           ) -> tuple[list[tuple], list[tuple]]:
        """Build the executor task list for one batch attempt, exporting
        any index attribute views the current pool has not seen.

        Returns ``(tasks, meta)`` where ``meta`` aligns task provenance
        with ``tasks``: (tier, chunk position, tile position or None).
        """
        tasks: list[tuple] = []
        meta: list[tuple[int, int, int | None]] = []

        # Shards carry the live (c, c_holdout, λ) — the pool baked
        # the spec's values in at startup, but a resident scorer may
        # have been rebound since (see InfluenceScorer.rebind).
        scalars = (self.c, self.c_holdout, self.lam)

        def add_tasks(tier: int, position: int, kind: str,
                      payload: list, specs: tuple) -> None:
            if group_tiles is None:
                tasks.append((kind, payload, ignore_holdouts, specs,
                              None, scalars))
                meta.append((tier, position, None))
                return
            for ti, bounds in enumerate(group_tiles):
                tasks.append((kind, payload, ignore_holdouts, specs,
                              bounds, scalars))
                meta.append((tier, position, ti))

        for ci, chunk in enumerate(masked_shards):
            add_tasks(0, ci, "masked", list(chunk), ())
        for ci, chunk in enumerate(range_shards):
            attrs = sorted({clause.attribute for _, clause in chunk})
            specs = tuple(self._index_attribute_spec(executor, attr,
                                                     "range")
                          for attr in attrs)
            add_tasks(1, ci, "indexed",
                      [clause for _, clause in chunk], specs)
        for ci, chunk in enumerate(set_shards):
            attrs = sorted({clause.attribute for _, clause in chunk})
            specs = tuple(self._index_attribute_spec(executor, attr,
                                                     "discrete")
                          for attr in attrs)
            add_tasks(2, ci, "indexed_set",
                      [clause for _, clause in chunk], specs)
        for ci, chunk in enumerate(conj_shards):
            # Ship the probe side's view; the other side only reads
            # raw arrays every worker already maps.
            probe_attrs = sorted({
                (("range" if isinstance(plan.probe, RangeClause)
                  else "discrete"), plan.probe.attribute)
                for _, plan in chunk})
            specs = tuple(self._index_attribute_spec(executor, attr, kind)
                          for kind, attr in probe_attrs)
            add_tasks(3, ci, "indexed_conj",
                      [plan for _, plan in chunk], specs)
        return tasks, meta

    def _reduce_group_tiles(self, tile_results: list,
                            group_tiles: list[tuple[int, int]],
                            ignore_holdouts: bool) -> np.ndarray:
        """Reassemble one predicate chunk's per-tile partial counts and
        removed states into full ``(m, n_ctx)`` / ``(m, n_ctx, s)``
        arrays and run the shared influence fold.

        Every tile's partials are byte-identical slices of what the
        serial kernel would have produced (same ascending-row bincount
        accumulation per group), so filling them into zero-initialized
        full-width arrays reproduces the serial arrays exactly — and
        the fold (which also counts ``incremental_deltas``, parent-side
        exactly as serial scoring does) yields bit-identical scores.
        """
        assert self._stacked_states is not None
        m = tile_results[0][0].shape[0]
        n_ctx = len(self._labeled_slices)
        state_size = self._stacked_states.shape[1]
        counts = np.zeros((m, n_ctx), dtype=np.int64)
        removed = np.zeros((m, n_ctx, state_size), dtype=np.float64)
        for (lo, hi), (tile_counts, tile_removed) in zip(group_tiles,
                                                         tile_results):
            counts[:, lo:hi] = tile_counts
            removed[:, lo:hi] = tile_removed
        return self._combine_group_influences(counts, removed, None,
                                              ignore_holdouts)

    def _ensure_executor(self):
        """Lazily build the kernel spec, place the problem's arrays in
        shared memory, and start the persistent worker pool.

        Every start stamps ``SCORPION_POOL_GENERATION`` with this
        scorer's pool-start ordinal so fault schedules (``~gN``) can
        target early generations only, and counts restarts (any start
        after the first) in ``scorpion_pool_restarts_total``.
        """
        if self._executor is None:
            from repro.faults.registry import GENERATION_ENV
            from repro.parallel import ShardedScoringExecutor, build_kernel_spec

            os.environ[GENERATION_ENV] = str(self._pool_starts)
            spec, segments = build_kernel_spec(self)
            executor = ShardedScoringExecutor(self.workers,
                                              task_timeout=self.task_timeout)
            executor.start(spec, segments)  # closes segments on failure
            if self._pool_starts:
                REGISTRY.counter(
                    "scorpion_pool_restarts_total",
                    "Worker-pool restarts after a failure").inc()
            self._pool_starts += 1
            self._executor = executor
            self._finalizer = weakref.finalize(self, executor.close)
        return self._executor

    def _index_attribute_spec(self, executor, attribute: str, kind: str):
        """The shared-memory spec of one built index attribute view
        (``kind`` is ``"range"`` or ``"discrete"``), building (in the
        parent, so ``index_builds`` counts exactly as serial routing
        would) and exporting it on first use."""
        spec = self._index_attr_specs.get((kind, attribute))
        if spec is None:
            from repro.parallel import (
                export_discrete_index_attribute,
                export_index_attribute,
            )

            assert self._index is not None
            if kind == "range":
                self._index.ensure(attribute)
                self._sync_index_stats()
                shm, spec = export_index_attribute(self._index, attribute)
            else:
                self._index.ensure_discrete(attribute)
                self._sync_index_stats()
                shm, spec = export_discrete_index_attribute(
                    self._index, attribute)
            executor.register_segment(shm)
            self._index_attr_specs[(kind, attribute)] = spec
        return spec

    def close(self) -> None:
        """Release the worker pool and its shared-memory segments.

        No-op for serial scorers; idempotent.  The scorer stays fully
        usable afterwards — a later parallel batch simply restarts the
        pool.
        """
        executor, self._executor = self._executor, None
        self._index_attr_specs = {}
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if executor is not None:
            executor.close()

    def _score_masked_chunk(self, chunk: Sequence[Predicate],
                            ignore_holdouts: bool) -> np.ndarray:
        """One mask-path shard, end to end: evaluate the chunk's mask
        matrix and score it.  The single definition of the masked-shard
        body — the serial loop and the worker processes both call this,
        so the parallel path can never drift from the serial one."""
        matrix = self._labeled_evaluator.evaluate_batch(chunk)
        if ignore_holdouts and self.holdout_contexts:
            # Hold-out contexts are skipped entirely downstream; dropping
            # their columns up front keeps the scatter-add kernel from
            # scanning and bucketing their set bits.
            matrix = matrix[:, :self._outlier_cols]
        return self._score_mask_matrix(matrix, ignore_holdouts)

    def _score_clause_shard(self, clauses: Sequence[RangeClause],
                            ignore_holdouts: bool) -> np.ndarray:
        """One index-path shard shipped as bare range clauses — the
        worker-side entry (predicates stay in the parent; the index
        kernel only reads the clauses)."""
        return self._score_index_chunk([(None, clause) for clause in clauses],
                                       ignore_holdouts)

    def _score_set_clause_shard(self, clauses: Sequence,
                                ignore_holdouts: bool) -> np.ndarray:
        """One discrete-bucket shard shipped as bare set clauses — the
        worker-side entry for the set tier."""
        return self._score_set_chunk([(None, clause) for clause in clauses],
                                     ignore_holdouts)

    def _score_conjunction_shard(self, plans: Sequence,
                                 ignore_holdouts: bool) -> np.ndarray:
        """One conjunction shard shipped as bare
        :class:`~repro.index.ConjunctionPlan` objects — the worker-side
        entry for the conjunction tier (the parent plans probe sides;
        workers only execute)."""
        return self._score_conj_chunk([(None, plan) for plan in plans],
                                      ignore_holdouts)

    # ------------------------------------------------------------------
    # Group-axis tiles (see _plan_group_tiles / _reduce_group_tiles)
    # ------------------------------------------------------------------
    def _span_evaluator(self, start: int, stop: int) -> ArrayMaskEvaluator:
        """A mask evaluator over labeled columns ``[start, stop)`` —
        sliced views of the full evaluator's arrays, memoized per span.
        Slicing commutes with every elementwise clause comparison, so a
        span mask equals the corresponding columns of the full mask."""
        key = (start, stop)
        evaluator = self._span_evaluators.get(key)
        if evaluator is None:
            continuous, codes, code_of = self._labeled_evaluator.export_state()
            evaluator = ArrayMaskEvaluator.from_state(
                {attr: values[start:stop]
                 for attr, values in continuous.items()},
                {attr: values[start:stop] for attr, values in codes.items()},
                code_of,
            )
            self._span_evaluators[key] = evaluator
        return evaluator

    def _partial_masked_chunk(self, chunk: Sequence[Predicate],
                              ignore_holdouts: bool,
                              group_range: tuple[int, int],
                              ) -> tuple[np.ndarray, np.ndarray]:
        """One mask-path (predicate-chunk × group-range) tile: matched
        counts and summed removed states for contexts ``[lo, hi)`` only.

        Evaluates the chunk's masks over just the tile's column span
        and scatter-adds with tile-local context keys.  ``bincount``
        accumulates in input (ascending-row) order and the tile's rows
        are exactly the full matrix's rows for these contexts, so the
        partials are byte-identical slices of the serial kernel's
        arrays.  Requires the incremental path (the tiling planner
        guarantees it) — partial tiles cannot carry black-box mask
        rows.
        """
        assert self._stacked_states is not None
        lo, hi = group_range
        start = self._labeled_slices[lo][1]
        stop = self._labeled_slices[hi - 1][2]
        matrix = self._span_evaluator(start, stop).evaluate_batch(chunk)
        m = matrix.shape[0]
        n_tile = hi - lo
        state_size = self._stacked_states.shape[1]
        pred_rows, local_cols = np.nonzero(matrix)
        keys = pred_rows * n_tile + (self._context_ids[start + local_cols] - lo)
        counts = np.bincount(keys, minlength=m * n_tile).reshape(m, n_tile)
        removed = np.zeros((m * n_tile, state_size), dtype=np.float64)
        if len(keys):
            gathered = self._stacked_states[start + local_cols]
            for j in range(state_size):
                removed[:, j] = np.bincount(
                    keys, weights=gathered[:, j], minlength=m * n_tile)
        return counts, removed.reshape(m, n_tile, state_size)

    def _partial_index_chunk(self, items: list, ignore_holdouts: bool,
                             group_range: tuple[int, int],
                             ) -> tuple[np.ndarray, np.ndarray]:
        """One range-tier tile: the groups are scored independently by
        construction (per-group binary searches), so restricting the
        group loop to ``[lo, hi)`` yields exactly the serial arrays'
        columns."""
        assert self._index is not None and self._incremental
        lo, hi = group_range
        m = len(items)
        counts = np.zeros((m, self._index.n_groups), dtype=np.int64)
        removed = np.zeros((m, self._index.n_groups, self._index.state_size),
                           dtype=np.float64)
        by_attr: dict[str, list[int]] = {}
        for j, (_, clause) in enumerate(items):
            by_attr.setdefault(clause.attribute, []).append(j)
        for attribute, positions in by_attr.items():
            clauses = [items[j][1] for j in positions]
            attr_counts, attr_removed = self._index.range_group_stats(
                attribute,
                np.asarray([clause.lo for clause in clauses], dtype=np.float64),
                np.asarray([clause.hi for clause in clauses], dtype=np.float64),
                np.asarray([clause.include_hi for clause in clauses], dtype=bool),
                group_range=group_range,
            )
            counts[positions] = attr_counts
            removed[positions] = attr_removed
        self._sync_index_stats()
        return counts[:, lo:hi], removed[:, lo:hi]

    def _partial_set_chunk(self, items: list, ignore_holdouts: bool,
                           group_range: tuple[int, int],
                           ) -> tuple[np.ndarray, np.ndarray]:
        """One bucket-tier tile (same per-group independence as
        :meth:`_partial_index_chunk`)."""
        assert self._index is not None and self._incremental
        lo, hi = group_range
        m = len(items)
        counts = np.zeros((m, self._index.n_groups), dtype=np.int64)
        removed = np.zeros((m, self._index.n_groups, self._index.state_size),
                           dtype=np.float64)
        by_attr: dict[str, list[int]] = {}
        for j, (_, clause) in enumerate(items):
            by_attr.setdefault(clause.attribute, []).append(j)
        for attribute, positions in by_attr.items():
            wanted_lists = [
                self._index.translate(attribute, items[j][1].values)
                for j in positions
            ]
            attr_counts, attr_removed = self._index.set_group_stats(
                attribute, wanted_lists, group_range=group_range)
            counts[positions] = attr_counts
            removed[positions] = attr_removed
        self._sync_index_stats()
        return counts[:, lo:hi], removed[:, lo:hi]

    def _partial_conj_chunk(self, items: list, ignore_holdouts: bool,
                            group_range: tuple[int, int],
                            ) -> tuple[np.ndarray, np.ndarray]:
        """One conjunction-tier tile (per-group probe + mask-test, so
        the same per-group independence applies)."""
        assert self._index is not None and self._incremental
        lo, hi = group_range
        counts, removed = self._index.conjunction_group_stats(
            [(plan.probe, plan.other) for _, plan in items],
            group_range=group_range)
        self._sync_index_stats()
        return counts[:, lo:hi], removed[:, lo:hi]

    def _score_mask_matrix(self, matrix: np.ndarray,
                           ignore_holdouts: bool) -> np.ndarray:
        """The metric for every row of an ``(m, n_labeled)`` mask matrix.

        Vector counterpart of :meth:`_score_local`.  One row-major scan
        of the matrix produces, via composite ``(predicate, context)``
        bincount keys, every predicate's per-context matched count and
        summed removed state; per-context influences are then accumulated
        in the same context order with the same elementwise arithmetic as
        the scalar path, so each row matches the scalar result.

        The scatter-add kernel is O(set bits) rather than the dense
        O(m·n) of a matrix product, and — because ``np.nonzero`` is
        row-major and ``bincount`` accumulates in input order — each
        predicate's states are summed in ascending row order,
        bit-identical to the scalar path's masked sum.  (BLAS ``matmul``
        is deliberately avoided: its blocked reductions are not
        row-deterministic.)"""
        m = matrix.shape[0]
        n_ctx = len(self._labeled_slices)
        pred_rows, labeled_cols = np.nonzero(matrix)
        keys = pred_rows * n_ctx + self._context_ids[labeled_cols]
        counts = np.bincount(keys, minlength=m * n_ctx).reshape(m, n_ctx)
        removed = None
        if self._incremental and self._stacked_states is not None and len(keys):
            gathered = self._stacked_states[labeled_cols]
            removed = np.empty((m * n_ctx, gathered.shape[1]), dtype=np.float64)
            for j in range(gathered.shape[1]):
                removed[:, j] = np.bincount(
                    keys, weights=gathered[:, j], minlength=m * n_ctx)
            removed = removed.reshape(m, n_ctx, -1)
        return self._combine_group_influences(counts, removed, matrix,
                                              ignore_holdouts)

    def _score_index_chunk(self, items: list[tuple[Predicate, RangeClause]],
                           ignore_holdouts: bool) -> np.ndarray:
        """The metric for a chunk of single-range predicates through the
        prefix-aggregate index — no mask matrix is materialized.

        Per constrained attribute, every predicate's per-group matched
        count and summed removed state come from two binary searches
        plus a prefix-sum difference (or an ascending-row gather of the
        matched slice; see :mod:`repro.index.prefix`), feeding the same
        influence arithmetic as the mask kernel.
        """
        assert self._index is not None and self._incremental
        m = len(items)
        n_ctx = len(self._labeled_slices)
        active = self._count_active_contexts(ignore_holdouts)
        counts = np.zeros((m, n_ctx), dtype=np.int64)
        removed = np.zeros((m, n_ctx, self._index.state_size),
                           dtype=np.float64)
        by_attr: dict[str, list[int]] = {}
        for j, (_, clause) in enumerate(items):
            by_attr.setdefault(clause.attribute, []).append(j)
        for attribute, positions in by_attr.items():
            clauses = [items[j][1] for j in positions]
            attr_counts, attr_removed = self._index.range_group_stats(
                attribute,
                np.asarray([clause.lo for clause in clauses], dtype=np.float64),
                np.asarray([clause.hi for clause in clauses], dtype=np.float64),
                np.asarray([clause.include_hi for clause in clauses], dtype=bool),
                active_groups=active,
            )
            counts[positions] = attr_counts
            removed[positions] = attr_removed
        self._sync_index_stats()
        return self._combine_group_influences(counts, removed, None,
                                              ignore_holdouts)

    def _score_set_chunk(self, items: list, ignore_holdouts: bool,
                         ) -> np.ndarray:
        """The metric for a chunk of single-set-clause predicates
        through the discrete code-bucket tier — no mask matrix is
        materialized.

        Per constrained attribute, every predicate's per-group matched
        count and summed removed state come from its wanted codes'
        buckets — exact per-bucket sums, or an ascending-row gather of
        just the bucketed rows (see :mod:`repro.index.discrete`) —
        feeding the same influence arithmetic as the mask kernel.
        """
        assert self._index is not None and self._incremental
        m = len(items)
        n_ctx = len(self._labeled_slices)
        active = self._count_active_contexts(ignore_holdouts)
        counts = np.zeros((m, n_ctx), dtype=np.int64)
        removed = np.zeros((m, n_ctx, self._index.state_size),
                           dtype=np.float64)
        by_attr: dict[str, list[int]] = {}
        for j, (_, clause) in enumerate(items):
            by_attr.setdefault(clause.attribute, []).append(j)
        for attribute, positions in by_attr.items():
            wanted_lists = [
                self._index.translate(attribute, items[j][1].values)
                for j in positions
            ]
            attr_counts, attr_removed = self._index.set_group_stats(
                attribute, wanted_lists, active_groups=active)
            counts[positions] = attr_counts
            removed[positions] = attr_removed
        self._sync_index_stats()
        return self._combine_group_influences(counts, removed, None,
                                              ignore_holdouts)

    def _score_conj_chunk(self, items: list, ignore_holdouts: bool,
                          ) -> np.ndarray:
        """The metric for a chunk of planned 2-clause conjunctions: the
        probe clause's index view supplies k candidate rows per group,
        the other clause mask-tests only those rows (see
        :meth:`~repro.index.PrefixAggregateIndex.conjunction_group_stats`).
        """
        assert self._index is not None and self._incremental
        active = self._count_active_contexts(ignore_holdouts)
        counts, removed = self._index.conjunction_group_stats(
            [(plan.probe, plan.other) for _, plan in items],
            active_groups=active)
        self._sync_index_stats()
        return self._combine_group_influences(counts, removed, None,
                                              ignore_holdouts)

    def _count_active_contexts(self, ignore_holdouts: bool) -> int:
        """How many leading contexts scoring will actually read (outlier
        contexts come first in the labeled concatenation)."""
        if ignore_holdouts:
            return len(self.outlier_contexts)
        return len(self._labeled_slices)

    def _combine_group_influences(self, counts: np.ndarray,
                                  removed: np.ndarray | None,
                                  matrix: np.ndarray | None,
                                  ignore_holdouts: bool) -> np.ndarray:
        """Fold per-(predicate, context) matched counts and removed
        states into final metric values — the shared back half of the
        mask-matrix and index kernels.  ``matrix`` supplies per-context
        mask slices for black-box Δ recomputes (mask kernel only; the
        index path is incremental by construction)."""
        m = len(counts)
        outlier_total = np.zeros(m, dtype=np.float64)
        worst = np.zeros(m, dtype=np.float64)
        invalid = np.zeros(m, dtype=bool)
        for ci, (context, start, stop) in enumerate(self._labeled_slices):
            if not context.is_outlier and ignore_holdouts:
                continue
            influences = self._group_influence_batch(
                context, counts[:, ci],
                removed[:, ci, :] if removed is not None else None,
                matrix[:, start:stop] if matrix is not None else None)
            invalid |= influences == INVALID_INFLUENCE
            if context.is_outlier:
                outlier_total = outlier_total + influences
            else:
                worst = np.maximum(worst, np.abs(influences))
        scores = self.lam * outlier_total / max(len(self.outlier_contexts), 1)
        if not ignore_holdouts and self.holdout_contexts:
            scores = scores - (1.0 - self.lam) * worst
        scores[invalid] = INVALID_INFLUENCE
        return scores

    def _group_influence_batch(self, context: GroupContext, counts: np.ndarray,
                               removed_states: np.ndarray | None,
                               local_matrix: np.ndarray | None) -> np.ndarray:
        """Per-predicate influence on one group given the group's matched
        counts and (on the incremental path) summed removed states.
        Mirrors :meth:`group_influence` row-wise; black-box aggregates
        recompute per predicate from the group's mask-matrix slice
        (``local_matrix`` is None on the mask-free index path, which the
        planner restricts to incremental aggregates)."""
        influences = np.zeros(len(counts), dtype=np.float64)
        matched = np.flatnonzero(counts)
        if not len(matched):
            return influences
        counts_f = counts[matched].astype(np.float64)
        if self._incremental:
            assert removed_states is not None
            self.stats.incremental_deltas += len(matched)
            updated = self._updated_from_removed_batch(
                context, removed_states[matched], counts_f)
            deltas = context.total_value - updated
        else:
            assert local_matrix is not None
            deltas = np.empty(len(matched), dtype=np.float64)
            for j, i in enumerate(matched):
                deltas[j] = self.delta(context, local_matrix[i])
        exponent = self.c if context.is_outlier else self.c_holdout
        with np.errstate(invalid="ignore"):
            values = deltas / _scalar_pow(counts_f, exponent)
        if context.is_outlier:
            values = values * context.error_vector
        influences[matched] = np.where(np.isnan(deltas), INVALID_INFLUENCE, values)
        return influences

    def _updated_from_removed_batch(self, context: GroupContext,
                                    removed_states: np.ndarray,
                                    removed_counts: np.ndarray) -> np.ndarray:
        """Vector counterpart of :meth:`updated_from_removed` — the
        group's post-removal aggregate per predicate, NaN where the
        perturbation leaves it undefined."""
        assert context.total_state is not None
        if self.perturbation == "mean":
            assert context.mean_state is not None
            adjusted = (context.total_state - removed_states
                        + removed_counts[:, np.newaxis] * context.mean_state)
            return self.aggregate.recover_batch(adjusted)
        remaining = context.total_state - removed_states
        updated = self.aggregate.recover_batch(remaining)
        emptied = remaining[:, -1] < 0.5  # deleted whole groups
        if np.any(emptied):
            empty = self.aggregate.empty_value
            updated[emptied] = np.nan if empty is None else float(empty)
        return updated

    # ------------------------------------------------------------------
    # Per-tuple influence (DT's split metric, MC's pruning bound)
    # ------------------------------------------------------------------
    def tuple_deltas(self, context: GroupContext) -> np.ndarray:
        """``Δ(o, {t})`` for every tuple of the group, vectorized when the
        aggregate is incrementally removable (O(n²) recomputes otherwise)."""
        n = context.size
        if n == 0:
            return np.empty(0, dtype=np.float64)
        if n == 1 and self.perturbation == "delete":
            empty = self.aggregate.empty_value
            if empty is None:
                return np.asarray([np.nan])
            return np.asarray([context.total_value - empty])
        if self._incremental:
            assert context.tuple_states is not None and context.total_state is not None
            remaining = context.total_state[np.newaxis, :] - context.tuple_states
            if self.perturbation == "mean":
                assert context.mean_state is not None
                remaining = remaining + context.mean_state[np.newaxis, :]
            updated = self.aggregate.recover_batch(remaining)
        else:
            updated = np.empty(n, dtype=np.float64)
            for i in range(n):
                if self.perturbation == "mean":
                    modified = context.agg_values.copy()
                    modified[i] = context.mean_value
                    rest = modified
                else:
                    rest = np.delete(context.agg_values, i)
                try:
                    updated[i] = self.aggregate.compute(rest)
                except AggregateError:
                    updated[i] = np.nan
        return context.total_value - updated

    def tuple_influences(self, context: GroupContext) -> np.ndarray:
        """Signed per-tuple influence ``inf(o, {t}, v_o)`` (error vector
        applied for outlier groups; raw Δ for hold-outs).  Cached — the
        pruning bounds evaluate these for every candidate predicate."""
        cached = self._tuple_influence_cache.get(id(context))
        if cached is not None:
            return cached
        deltas = self.tuple_deltas(context)
        influences = deltas * context.error_vector if context.is_outlier else deltas
        self._tuple_influence_cache[id(context)] = influences
        return influences

    def max_tuple_influence(self, predicate: Predicate) -> float:
        """Largest single-tuple influence among matched outlier-group rows,
        scaled like :meth:`outlier_only_score` scales a predicate
        (``λ / |O|``) so the two are comparable — the paper's second MC
        pruning bound (Section 6.2), exact for ``c = 1``."""
        masks = self._labeled_masks(predicate)
        best = INVALID_INFLUENCE
        for (context, _, _), local in zip(self._labeled_slices, masks):
            if not context.is_outlier or not np.any(local):
                continue
            influences = self.tuple_influences(context)[local]
            finite = influences[~np.isnan(influences)]
            if len(finite):
                best = max(best, float(np.max(finite)))
        if best == INVALID_INFLUENCE:
            return best
        return self.lam * best / max(len(self.outlier_contexts), 1)

    def refinement_bound(self, predicate: Predicate) -> float:
        """Upper bound on ``inf(O, ∅, p', V)`` over refinements ``p' ≺ p``.

        For independent aggregates with additive Δ (SUM, COUNT — exactly
        MC's territory), the best refinement cannot beat picking, in each
        outlier group, the ``k`` matched tuples with the largest positive
        influence: ``max_k (Σ top-k δ) / k^c``.  At ``c = 1`` the maximum
        sits at ``k = 1`` and this reduces to the paper's single-tuple
        bound; at ``c < 1`` the paper's bound is not sound and would
        over-prune (DESIGN.md §4 item 6).
        """
        masks = self._labeled_masks(predicate)
        total = 0.0
        any_rows = False
        for (context, _, _), local in zip(self._labeled_slices, masks):
            if not context.is_outlier or not np.any(local):
                continue
            any_rows = True
            influences = self.tuple_influences(context)[local]
            positive = influences[np.isfinite(influences) & (influences > 0)]
            if not len(positive):
                continue
            positive[::-1].sort()  # descending in place
            prefix = np.cumsum(positive)
            ks = np.arange(1, len(positive) + 1, dtype=np.float64)
            total += float(np.max(prefix / ks ** self.c))
        if not any_rows:
            return INVALID_INFLUENCE
        return self.lam * total / max(len(self.outlier_contexts), 1)
