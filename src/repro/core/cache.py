"""Cross-``c`` result caching (paper Section 8.3.3).

Users explore different values of the Section 7 knob ``c`` interactively
(e.g. a UI slider).  Two observations make that cheap:

* the **DT partitioning is agnostic to ``c``** — per-tuple influence
  ``Δ(t)·v`` has a denominator of ``1^c`` — so its partitions (and their
  removal statistics) can be computed once per query and reused for every
  ``c``;
* the **Merger runs deterministically**, and a higher ``c`` merely stops
  merging earlier; a run at a lower ``c`` can therefore warm-start from
  any prior higher-``c`` merge result and keep expanding.

:class:`DTCache` implements both: it keys DT partitioner output by the
query's annotation signature and remembers merge results per ``c`` so the
next lower ``c`` run seeds the Merger with them.

The cache is **bounded** on both axes it grows along.  Signatures are an
LRU: at most :attr:`DTCache.max_entries` distinct queries are remembered
(default :data:`DEFAULT_MAX_ENTRIES`, override via the constructor or
``SCORPION_DTCACHE_ENTRIES``), least-recently-used evicted first.  Within
one entry, merge results are kept for at most
:attr:`DTCache.max_c_results` distinct ``c`` values, oldest-stored
dropped first — a resident service sweeping a fine-grained ``c`` slider
would otherwise accumulate one ranked predicate list per tick forever.
Hit/miss/eviction counts surface per ``explain`` call through
``scorer_stats`` (``dtcache_*`` keys) next to the resident service's own
``service_*`` counters.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.core.partition import CandidatePredicate, ScoredPredicate
from repro.core.problem import ScorpionQuery
from repro.errors import PartitionerError
from repro.predicates.predicate import Predicate

#: Default signature-LRU capacity (distinct queries remembered).
DEFAULT_MAX_ENTRIES = 16


def query_signature(query: ScorpionQuery) -> tuple:
    """A key identifying everything DT output depends on — the dataset,
    query, annotations, and λ — but *not* ``c``."""
    return (
        id(query.raw_table),
        repr(query.query),
        tuple(sorted(query.outlier_keys)),
        tuple(sorted(query.holdout_keys)),
        tuple(sorted(query.error_vectors.items())),
        query.lam,
        query.attributes,
    )


@dataclass
class _Entry:
    candidates: list[CandidatePredicate]
    partition_elapsed: float
    #: Merge results keyed by the ``c`` they were computed at, in
    #: storage order (re-storing a ``c`` refreshes its position).
    merged_by_c: OrderedDict[float, list[ScoredPredicate]] = field(
        default_factory=OrderedDict)


class DTCache:
    """Memoizes DT partitions and Merger results across ``c`` sweeps,
    bounded as an LRU on signatures and per-entry on stored ``c`` values.

    Parameters
    ----------
    max_entries:
        Distinct query signatures to remember (LRU).  ``None`` reads
        ``SCORPION_DTCACHE_ENTRIES``, else :data:`DEFAULT_MAX_ENTRIES`;
        must be >= 1.
    max_c_results:
        Merge-result lists kept per entry, oldest-stored dropped first;
        must be >= 1.
    """

    def __init__(self, max_entries: int | None = None,
                 max_c_results: int = 8) -> None:
        if max_entries is None:
            raw = os.environ.get("SCORPION_DTCACHE_ENTRIES", "").strip()
            max_entries = int(raw) if raw else DEFAULT_MAX_ENTRIES
        if max_entries < 1:
            raise PartitionerError(
                f"max_entries must be >= 1, got {max_entries}")
        if max_c_results < 1:
            raise PartitionerError(
                f"max_c_results must be >= 1, got {max_c_results}")
        self.max_entries = int(max_entries)
        self.max_c_results = int(max_c_results)
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self.partition_hits = 0
        self.partition_misses = 0
        #: Signature entries evicted by the LRU bound.
        self.entry_evictions = 0
        #: Per-entry merge results dropped by the ``c`` bound.
        self.c_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _touch(self, key: tuple) -> _Entry | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def candidates(self, query: ScorpionQuery, partitioner: DTPartitioner,
                   scorer: InfluenceScorer,
                   ) -> tuple[list[CandidatePredicate], float]:
        """DT candidates for ``query`` plus the partitioning seconds this
        call actually spent (0.0 on cache hits)."""
        key = query_signature(query)
        entry = self._touch(key)
        if entry is None:
            self.partition_misses += 1
            result = partitioner.run(query, scorer)
            entry = _Entry(result.candidates, result.elapsed)
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.entry_evictions += 1
            return entry.candidates, entry.partition_elapsed
        self.partition_hits += 1
        return entry.candidates, 0.0

    #: Warm starts resume from this many of the previous run's best
    #: predicates — expanding the full result list would cost as much as
    #: merging from scratch.
    max_seeds = 10

    def merger_seeds(self, query: ScorpionQuery) -> list[Predicate] | None:
        """Warm-start predicates: the best merge results of the smallest
        previously solved ``c`` that is still above ``query.c``.

        Merging monotonically coarsens as ``c`` decreases, so resuming
        from the nearest higher-``c`` result skips the merge prefix both
        runs share.
        """
        entry = self._touch(query_signature(query))
        if entry is None:
            return None
        higher = [c for c in entry.merged_by_c if c > query.c]
        if not higher:
            return None
        nearest = min(higher)
        return [sp.predicate
                for sp in entry.merged_by_c[nearest][: self.max_seeds]]

    def store_merged(self, query: ScorpionQuery,
                     merged: list[ScoredPredicate]) -> None:
        """Record a merge result for :meth:`merger_seeds` reuse (the
        per-entry ``c`` bound drops the oldest-stored result first)."""
        entry = self._touch(query_signature(query))
        if entry is None:
            return
        if query.c in entry.merged_by_c:
            entry.merged_by_c.move_to_end(query.c)
        entry.merged_by_c[query.c] = list(merged)
        while len(entry.merged_by_c) > self.max_c_results:
            entry.merged_by_c.popitem(last=False)
            self.c_evictions += 1

    # ------------------------------------------------------------------
    # Counter windows (per-explain deltas surfaced in scorer_stats)
    # ------------------------------------------------------------------
    def counter_snapshot(self) -> tuple[int, int, int, int]:
        """The cumulative counters, for :meth:`window_stats` deltas."""
        return (self.partition_hits, self.partition_misses,
                self.entry_evictions, self.c_evictions)

    def window_stats(self, snapshot: tuple[int, int, int, int]) -> dict:
        """This-window deltas (plus the entry-count gauge) under the
        ``dtcache_*`` keys one ``explain`` call merges into its
        ``scorer_stats`` — per-call numbers, so a cold run and a warm
        service run report comparable windows."""
        hits, misses, entry_ev, c_ev = snapshot
        return {
            "dtcache_partition_hits": self.partition_hits - hits,
            "dtcache_partition_misses": self.partition_misses - misses,
            "dtcache_entry_evictions": self.entry_evictions - entry_ev,
            "dtcache_c_evictions": self.c_evictions - c_ev,
            "dtcache_entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.partition_hits = 0
        self.partition_misses = 0
        self.entry_evictions = 0
        self.c_evictions = 0
