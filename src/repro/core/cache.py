"""Cross-``c`` result caching (paper Section 8.3.3).

Users explore different values of the Section 7 knob ``c`` interactively
(e.g. a UI slider).  Two observations make that cheap:

* the **DT partitioning is agnostic to ``c``** — per-tuple influence
  ``Δ(t)·v`` has a denominator of ``1^c`` — so its partitions (and their
  removal statistics) can be computed once per query and reused for every
  ``c``;
* the **Merger runs deterministically**, and a higher ``c`` merely stops
  merging earlier; a run at a lower ``c`` can therefore warm-start from
  any prior higher-``c`` merge result and keep expanding.

:class:`DTCache` implements both: it keys DT partitioner output by the
query's annotation signature and remembers merge results per ``c`` so the
next lower ``c`` run seeds the Merger with them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.core.partition import CandidatePredicate, ScoredPredicate
from repro.core.problem import ScorpionQuery
from repro.predicates.predicate import Predicate


def query_signature(query: ScorpionQuery) -> tuple:
    """A key identifying everything DT output depends on — the dataset,
    query, annotations, and λ — but *not* ``c``."""
    return (
        id(query.raw_table),
        repr(query.query),
        tuple(sorted(query.outlier_keys)),
        tuple(sorted(query.holdout_keys)),
        tuple(sorted(query.error_vectors.items())),
        query.lam,
        query.attributes,
    )


@dataclass
class _Entry:
    candidates: list[CandidatePredicate]
    partition_elapsed: float
    #: Merge results keyed by the ``c`` they were computed at.
    merged_by_c: dict[float, list[ScoredPredicate]] = field(default_factory=dict)


class DTCache:
    """Memoizes DT partitions and Merger results across ``c`` sweeps."""

    def __init__(self) -> None:
        self._entries: dict[tuple, _Entry] = {}
        self.partition_hits = 0
        self.partition_misses = 0

    def candidates(self, query: ScorpionQuery, partitioner: DTPartitioner,
                   scorer: InfluenceScorer,
                   ) -> tuple[list[CandidatePredicate], float]:
        """DT candidates for ``query`` plus the partitioning seconds this
        call actually spent (0.0 on cache hits)."""
        key = query_signature(query)
        entry = self._entries.get(key)
        if entry is None:
            self.partition_misses += 1
            result = partitioner.run(query, scorer)
            entry = _Entry(result.candidates, result.elapsed)
            self._entries[key] = entry
            return entry.candidates, entry.partition_elapsed
        self.partition_hits += 1
        return entry.candidates, 0.0

    #: Warm starts resume from this many of the previous run's best
    #: predicates — expanding the full result list would cost as much as
    #: merging from scratch.
    max_seeds = 10

    def merger_seeds(self, query: ScorpionQuery) -> list[Predicate] | None:
        """Warm-start predicates: the best merge results of the smallest
        previously solved ``c`` that is still above ``query.c``.

        Merging monotonically coarsens as ``c`` decreases, so resuming
        from the nearest higher-``c`` result skips the merge prefix both
        runs share.
        """
        entry = self._entries.get(query_signature(query))
        if entry is None:
            return None
        higher = [c for c in entry.merged_by_c if c > query.c]
        if not higher:
            return None
        nearest = min(higher)
        return [sp.predicate
                for sp in entry.merged_by_c[nearest][: self.max_seeds]]

    def store_merged(self, query: ScorpionQuery,
                     merged: list[ScoredPredicate]) -> None:
        """Record a merge result for :meth:`merger_seeds` reuse."""
        entry = self._entries.get(query_signature(query))
        if entry is not None:
            entry.merged_by_c[query.c] = list(merged)

    def clear(self) -> None:
        self._entries.clear()
        self.partition_hits = 0
        self.partition_misses = 0
