"""The Merger: greedy coarsening of partitioner output (paper Sections
4.3 and 6.3).

Partitioners emit predicates at a finer granularity than ideal, so the
Merger repeatedly expands high-scoring predicates by merging them with
adjacent predicates as long as influence increases.

Optimizations from Section 6.3, both optional:

* **top-quartile expansion** — only predicates whose internal scores sit
  in the top quartile are expanded (the final predicate almost always
  grows from those);
* **cached-state approximation** — for incrementally removable
  aggregates, a merge's influence is estimated from the per-partition
  removal statistics (count + summed tuple state) under a
  uniform-density-within-partition assumption, avoiding Scorer calls
  inside the expansion loop entirely; only the final expanded predicates
  are scored exactly.

The approximation improves on the paper's replicate-the-cached-tuple
scheme by storing each partition's exact summed state (same constant
size, strictly more accurate — see DESIGN.md §4 item 7); partially
overlapping partitions contribute volume-weighted fractions of their
state exactly as Section 6.3's ``n_p`` estimates do.

When the approximation is *off* (the MC partitioner's default merger
configuration), each expansion round collects its candidate merges and
scores them through one :meth:`InfluenceScorer.score_batch` call, and
expansion starts are exact-scored in one warm-up batch, so the scalar
Scorer round-trip disappears from the expansion loop either way.

Expansions run in *lockstep*: every start advances one greedy round at
a time, and the round's winning merges — one per still-active start,
independent across starts — are adoption-verified through a single
``score_batch`` call (which shards across worker processes when the
scorer's ``workers`` knob is set).  The per-start accept/reject
decisions are identical to expanding each start to completion with
scalar verification: a start's trajectory reads only its own state and
the shared read-only candidate list, and ``score_batch`` returns
exactly what ``score`` would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.influence import INVALID_INFLUENCE, InfluenceScorer
from repro.core.partition import CandidatePredicate, ScoredPredicate
from repro.errors import PartitionerError
from repro.obs.trace import span
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.predicates.space import Domain


class _ApproxIndex:
    """Vectorized geometry for the cached-state approximation.

    Packs every candidate partition's box into numpy arrays so one merge
    evaluation computes all candidates' overlap shares — and therefore
    the estimated removed count/state per outlier group — in a handful
    of numpy operations instead of per-candidate Python box algebra.
    """

    def __init__(self, candidates: list[CandidatePredicate], domain: Domain,
                 scorer: InfluenceScorer):
        self.domain = domain
        self.continuous = [a for a in domain if a.is_continuous]
        self.discrete = [a for a in domain if not a.is_continuous]
        n = len(candidates)
        self.los = np.empty((n, len(self.continuous)))
        self.his = np.empty((n, len(self.continuous)))
        self.sets: list[list[frozenset]] = []
        for i, candidate in enumerate(candidates):
            row_sets = []
            for j, attr in enumerate(self.continuous):
                clause = candidate.predicate.clause_for(attr.name)
                if isinstance(clause, RangeClause):
                    self.los[i, j] = clause.lo
                    self.his[i, j] = clause.hi
                else:
                    self.los[i, j] = attr.lo
                    self.his[i, j] = attr.hi
            for attr in self.discrete:
                clause = candidate.predicate.clause_for(attr.name)
                if isinstance(clause, SetClause):
                    row_sets.append(clause.values)
                else:
                    row_sets.append(frozenset(attr.values))
            self.sets.append(row_sets)
        self.widths = np.maximum(self.his - self.los, 0.0)

        self.group_keys = [ctx.key for ctx in scorer.outlier_contexts]
        key_index = {key: g for g, key in enumerate(self.group_keys)}
        self.counts = np.zeros((n, len(self.group_keys)))
        state_size = (scorer.outlier_contexts[0].total_state.shape[0]
                      if scorer.outlier_contexts[0].total_state is not None else 0)
        self.states = np.zeros((n, len(self.group_keys), state_size))
        for i, candidate in enumerate(candidates):
            if not candidate.group_stats:
                continue
            for key, stats in candidate.group_stats.items():
                g = key_index.get(key)
                if g is None:
                    continue
                self.counts[i, g] = stats.count
                if stats.state_sum is not None:
                    self.states[i, g] = stats.state_sum

    def overlap_shares(self, predicate: Predicate) -> np.ndarray:
        """Fraction of each candidate box lying inside ``predicate``."""
        n = len(self.los)
        shares = np.ones(n)
        for j, attr in enumerate(self.continuous):
            clause = predicate.clause_for(attr.name)
            if clause is None:
                continue
            assert isinstance(clause, RangeClause)
            overlap = (np.minimum(self.his[:, j], clause.hi)
                       - np.maximum(self.los[:, j], clause.lo))
            overlap = np.clip(overlap, 0.0, None)
            with np.errstate(divide="ignore", invalid="ignore"):
                fraction = overlap / self.widths[:, j]
            # Zero-width candidate boxes: inside iff the point overlaps.
            point_inside = ((self.los[:, j] >= clause.lo)
                            & (self.los[:, j] <= clause.hi))
            fraction = np.where(self.widths[:, j] > 0, fraction,
                                point_inside.astype(float))
            shares *= fraction
        for d_index, attr in enumerate(self.discrete):
            clause = predicate.clause_for(attr.name)
            if clause is None:
                continue
            assert isinstance(clause, SetClause)
            for i in range(n):
                if shares[i] == 0.0:
                    continue
                candidate_values = self.sets[i][d_index]
                shares[i] *= (len(candidate_values & clause.values)
                              / len(candidate_values))
        return shares


@dataclass
class _Expansion:
    """One start's greedy-expansion state inside the lockstep loop."""

    current: Predicate
    #: Exact influence of ``current`` (adoption baseline).
    exact: float
    #: Estimated influence of ``current`` (scan baseline).
    estimate: float
    #: Candidate predicates already absorbed (never re-merged).
    members: set[Predicate]
    #: Neighbourhood scans performed (capped at ``max_rounds``).
    scans: int = 0
    active: bool = True


@dataclass
class MergerParams:
    """Tuning knobs of the Merger."""

    #: Fraction of candidates (by internal score) that get expanded;
    #: 1.0 = the basic Section 4.3 merger, 0.25 = the Section 6.3
    #: top-quartile optimization.
    expand_fraction: float = 0.25
    #: Use the cached-state influence approximation inside the expansion
    #: loop when the aggregate supports it.
    use_approximation: bool = True
    #: Stop an expansion after this many successful merges.
    max_rounds: int = 32
    #: Evaluate at most this many adjacent neighbours per round.
    max_neighbors: int = 64


@dataclass
class MergerReport:
    """What a merge pass did (benchmarks inspect this)."""

    n_expanded: int = 0
    n_merge_evaluations: int = 0
    n_scorer_calls_saved: int = 0
    elapsed: float = 0.0


class Merger:
    """Greedy adjacent-merge coarsening with optional approximations."""

    def __init__(self, scorer: InfluenceScorer, domain: Domain,
                 params: MergerParams | None = None, **overrides):
        params = params or MergerParams()
        for key, value in overrides.items():
            if not hasattr(params, key):
                raise PartitionerError(f"unknown Merger parameter {key!r}")
            setattr(params, key, value)
        if not 0 < params.expand_fraction <= 1:
            raise PartitionerError("expand_fraction must be in (0, 1]")
        self.scorer = scorer
        self.domain = domain
        self.params = params
        self.report = MergerReport()
        self._approx_ready = (
            params.use_approximation
            and scorer.uses_incremental
            and scorer.outlier_contexts[0].total_state is not None
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, candidates: list[CandidatePredicate],
            seeds: list[Predicate] | None = None) -> list[ScoredPredicate]:
        """Expand candidates and return deduped results, best first.

        ``seeds`` optionally overrides the expansion starting points
        (the Section 8.3.3 warm start: resume from a previous, higher-``c``
        merge result instead of from raw partitions).
        """
        start = time.perf_counter()
        self.report = MergerReport()
        if not candidates and not seeds:
            return []
        ranked = sorted(candidates, key=lambda c: c.score, reverse=True)
        self._index = None
        if self._approx_ready and any(c.group_stats for c in ranked):
            self._index = _ApproxIndex(ranked, self.domain, self.scorer)
        if seeds is None:
            n_expand = max(1, int(np.ceil(len(ranked) * self.params.expand_fraction)))
            expansion_starts = [c.predicate for c in ranked[:n_expand]]
        else:
            expansion_starts = list(seeds)
        if expansion_starts:
            # Declare the single-range starts to the prefix-aggregate
            # index: they (and the merges they grow through) are the
            # index fast path's shape.
            self.scorer.prepare_index({
                predicate.clauses[0].attribute
                for predicate in expansion_starts
                if predicate.num_clauses == 1
                and isinstance(predicate.clauses[0], RangeClause)
            })
        # _expand_lockstep opens by batch-scoring every start (and every
        # adoption downstream), so with caching on the scalar record()
        # calls below are all cache hits — no separate warm-up needed.
        expanded_by_start = self._expand_lockstep(expansion_starts, ranked)
        results: dict[Predicate, float] = {}

        def record(predicate: Predicate) -> None:
            if predicate not in results:
                results[predicate] = self.scorer.score(predicate)

        for predicate, expanded in zip(expansion_starts, expanded_by_start):
            record(expanded)
            # The start partition itself stays in the ranking: expansion
            # decisions are estimate-driven and an over-eager merge must
            # not erase its exactly-scored origin.
            record(predicate)
            self.report.n_expanded += 1
        scored = [ScoredPredicate(p, inf) for p, inf in results.items()
                  if np.isfinite(inf)]
        scored.sort(key=lambda sp: sp.influence, reverse=True)
        self.report.elapsed = time.perf_counter() - start
        return scored

    # ------------------------------------------------------------------
    # Expansion loop
    # ------------------------------------------------------------------
    def _expand_lockstep(self, starts: list[Predicate],
                         candidates: list[CandidatePredicate],
                         ) -> list[Predicate]:
        """Greedily grow every start while its influence increases,
        advancing all starts one round at a time.

        Candidate merges are ranked with :meth:`_estimate_batch` (cheap,
        possibly approximate); each round's *adoptions* — the best merge
        of each still-active start — are then verified with one exact
        :meth:`InfluenceScorer.score_batch` call, so approximation drift
        cannot walk an expansion past its best point and the per-round
        verification cost batches (and parallelizes) across starts.  The
        per-round candidate scans — the cost the Section 6.3
        approximation exists to cut — stay estimate-only.

        Per start, the scan/accept/reject sequence is exactly the scalar
        greedy loop's: at most ``max_rounds`` scans, stop when no
        adjacent merge improves the estimate, adopt only when the exact
        score improves.  Returns the expanded predicate of each start,
        aligned with ``starts``.
        """
        if not starts:
            return []
        start_exacts = self.scorer.score_batch(starts)
        states = [_Expansion(current=predicate, exact=float(exact),
                             estimate=self._estimate(predicate, candidates),
                             members={predicate})
                  for predicate, exact in zip(starts, start_exacts)]
        round_no = 0
        while True:
            round_no += 1
            with span("merge_round") as rsp:
                proposals: list[tuple[_Expansion, Predicate, Predicate,
                                      float]] = []
                for state in states:
                    if not state.active:
                        continue
                    if state.scans >= self.params.max_rounds:
                        state.active = False
                        continue
                    state.scans += 1
                    merges: list[tuple[Predicate, Predicate]] = []
                    neighbors = 0
                    for other in candidates:
                        if other.predicate in state.members:
                            continue
                        if not state.current.is_adjacent_to(other.predicate):
                            continue
                        neighbors += 1
                        if neighbors > self.params.max_neighbors:
                            break
                        merges.append((state.current.merge(other.predicate),
                                       other.predicate))
                    if not merges:
                        state.active = False
                        continue
                    estimates = self._estimate_batch([m for m, _ in merges])
                    self.report.n_merge_evaluations += len(merges)
                    best_index = int(np.argmax(estimates))
                    estimate = float(estimates[best_index])
                    if not estimate > state.estimate:
                        state.active = False
                        continue
                    merged, member = merges[best_index]
                    proposals.append((state, merged, member, estimate))
                if rsp:
                    rsp.annotate(round=round_no, proposals=len(proposals))
                if not proposals:
                    break
                exacts = self.scorer.score_batch(
                    [merged for _, merged, _, _ in proposals])
                adopted = 0
                for (state, merged, member, estimate), exact in zip(proposals,
                                                                    exacts):
                    if float(exact) <= state.exact:
                        state.active = False
                        continue
                    state.current = merged
                    state.estimate = estimate
                    state.exact = float(exact)
                    state.members.add(member)
                    adopted += 1
                if rsp:
                    rsp.annotate(adopted=adopted)
        return [state.current for state in states]

    # ------------------------------------------------------------------
    # Influence estimation
    # ------------------------------------------------------------------
    def _estimate(self, predicate: Predicate,
                  candidates: list[CandidatePredicate]) -> float:
        if self._index is None:
            return self.scorer.score(predicate)
        self.report.n_scorer_calls_saved += 1
        return self._approximate(predicate)

    def _estimate_batch(self, predicates: list[Predicate]) -> np.ndarray:
        """One expansion round's candidate-merge influences.  Without the
        cached-state index every merge needs an exact score — batched
        through the Scorer's vectorized path; with it, the per-merge
        approximation already avoids the Scorer entirely."""
        if self._index is None:
            return self.scorer.score_batch(predicates)
        self.report.n_scorer_calls_saved += len(predicates)
        return np.asarray([self._approximate(p) for p in predicates],
                          dtype=np.float64)

    def _approximate(self, predicate: Predicate) -> float:
        """Cached-state influence estimate (Section 6.3).

        Every partition intersecting ``predicate`` contributes the volume
        fraction of its rows (and of its summed state) that falls inside;
        Δ is recovered from the group state with that contribution
        removed.  Hold-out terms are unknown at this level and treated as
        zero — the final expanded predicate is always scored exactly.
        """
        index = self._index
        assert index is not None
        shares = index.overlap_shares(predicate)
        removed_counts = shares @ index.counts           # (n_groups,)
        removed_states = np.einsum("i,igk->gk", shares, index.states)
        total = 0.0
        for g, context in enumerate(self.scorer.outlier_contexts):
            count = removed_counts[g]
            if count < 0.5:
                continue
            updated = self.scorer.updated_from_removed(
                context, removed_states[g], count)
            if np.isnan(updated):
                return INVALID_INFLUENCE
            delta = context.total_value - updated
            total += delta / (count ** self.scorer.c) * context.error_vector
        return self.scorer.lam * total / max(len(self.scorer.outlier_contexts), 1)
