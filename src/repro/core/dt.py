"""The DT (decision-tree) partitioner for independent aggregates
(paper Section 6.1).

DT grows a regression-tree-style partitioning of the ``A_rest`` attribute
space so that tuples inside each partition have similar influence:

* the stopping rule uses the Section 6.1.1 *relaxed threshold curve* —
  partitions containing highly influential tuples must be tight, while
  uninfluential regions may stay coarse;
* large input groups are *sampled* (Section 6.1.2), with stratified
  re-sampling that concentrates samples in influential sub-partitions;
* all input groups of one kind (outlier or hold-out) are partitioned in
  a single synchronized recursion (Section 6.1.3): each candidate split
  is scored per group and the scores combined by ``max``, so every group
  receives the same spatial partitioning without over-splitting
  artifacts;
* outlier and hold-out partitionings are *combined* (Section 6.1.4) by
  splitting outlier partitions along influential hold-out partitions,
  separating pieces that perturb hold-outs from pieces that only affect
  outliers.

The emitted candidates carry per-group removal statistics so the Merger
can use the Section 6.3 cached-tuple approximation.

Leaf scoring is batched: all leaf/combined predicates are evaluated per
group as chunked mask matrices (:meth:`ArrayMaskEvaluator.evaluate_batch`)
and their removal statistics and sampled-influence scores come from two
``einsum`` contractions per chunk.  Exact influence scoring of the
candidates happens downstream — the Merger batch-scores its expansion
starts through :meth:`InfluenceScorer.score_batch`; single-clause leaf
ranges are declared to the Scorer's prefix-aggregate index first so
that scoring takes the O(log n) fast path.  Those batches (and the
Merger's per-round adoption verifications) shard across worker
processes when the scorer's ``workers`` knob is set, with no changes
here (see :mod:`repro.parallel`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.influence import GroupContext, InfluenceScorer
from repro.core.partition import CandidatePredicate, GroupRemovalStats, PartitionerResult
from repro.core.problem import ScorpionQuery
from repro.errors import PartitionerError
from repro.obs.trace import span
from repro.predicates.clause import Clause, RangeClause, SetClause
from repro.predicates.evaluator import ArrayMaskEvaluator
from repro.predicates.predicate import Predicate
from repro.tree.node import TreeNode
from repro.tree.splits import Split, node_error, range_split_errors, split_error


@dataclass
class _GroupData:
    """Per-input-group arrays the recursion works over."""

    context: GroupContext
    #: ``A_rest`` values for the group's rows, keyed by attribute.
    values: dict[str, np.ndarray]
    #: Per-row influence: signed (Δ·v) for outlier groups, |Δ| for
    #: hold-out groups (the penalty term uses absolute influence).
    influences: np.ndarray
    #: Global influence bounds of the group (inf_l, inf_u of Section 6.1.1).
    inf_lo: float = 0.0
    inf_hi: float = 0.0
    #: Initial sampling rate (1.0 when sampling is disabled).
    sample_rate: float = 1.0

    @property
    def size(self) -> int:
        return self.context.size


@dataclass
class _NodeGroup:
    """One group's rows inside one tree node."""

    rows: np.ndarray      # positions within the group (0 .. n_g-1)
    sample: np.ndarray    # sampled subset of ``rows``


@dataclass
class _Partition:
    """A leaf of the synchronized tree, with per-group row sets."""

    predicate: Predicate
    node_groups: list[_NodeGroup]
    mean_influence: float = 0.0
    total_rows: int = 0


@dataclass
class DTParams:
    """Tuning knobs of the DT partitioner (defaults discussed in
    DESIGN.md §4.5)."""

    tau_min: float = 0.02
    tau_max: float = 0.3
    p_inflection: float = 0.5
    min_leaf_size: int = 20
    max_depth: int = 12
    max_leaves: int = 128
    max_split_candidates: int = 8
    sampling: bool = True
    epsilon: float = 0.005
    min_sample_size: int = 50
    #: Early pruning (the future work Section 8.3.2 names): stop
    #: splitting a node when, in every group, its best sampled influence
    #: is below this fraction of the group's maximum — the node cannot
    #: contain the influential cluster, so its internal variance is
    #: noise not worth modelling.  0.0 disables.
    early_prune_fraction: float = 0.0
    #: Hold-out partitions whose mean |influence| is at least this
    #: fraction of the most influential hold-out partition's mean are
    #: used to split outlier partitions (Section 6.1.4).
    holdout_influence_frac: float = 0.5
    max_holdout_cutters: int = 8
    max_pieces_per_partition: int = 16
    seed: int = 0


class DTPartitioner:
    """Top-down synchronized partitioner for independent aggregates."""

    name = "dt"

    def __init__(self, params: DTParams | None = None, **overrides):
        params = params or DTParams()
        for key, value in overrides.items():
            if not hasattr(params, key):
                raise PartitionerError(f"unknown DT parameter {key!r}")
            setattr(params, key, value)
        if not 0 < params.tau_min <= params.tau_max:
            raise PartitionerError("need 0 < tau_min <= tau_max")
        if not 0 < params.epsilon < 1:
            raise PartitionerError("epsilon must be in (0, 1)")
        self.params = params

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, query: ScorpionQuery, scorer: InfluenceScorer | None = None,
            ) -> PartitionerResult:
        if not query.aggregate.is_independent:
            raise PartitionerError(
                f"DT requires an independent aggregate; {query.aggregate.name} "
                "does not declare the property (Section 5.2)"
            )
        start = time.perf_counter()
        scorer = scorer or InfluenceScorer(query)
        # Warm the worker pool before the per-partition scoring rounds
        # (and the Merger's downstream batches — the pool lives on the
        # scorer, so it survives across rounds; no-op when serial).
        scorer.prepare_parallel()
        self._rng = np.random.default_rng(self.params.seed)
        self._query = query
        self._scorer = scorer

        with span("partition_outliers") as osp:
            outlier_groups = [self._prepare_group(scorer, ctx)
                              for ctx in scorer.outlier_contexts]
            partitions_o = self._partition(outlier_groups)
            if osp:
                osp.annotate(groups=len(outlier_groups),
                             partitions=len(partitions_o))
        if scorer.holdout_contexts:
            with span("partition_holdouts") as hsp:
                holdout_groups = [self._prepare_group(scorer, ctx)
                                  for ctx in scorer.holdout_contexts]
                partitions_h = self._partition(holdout_groups)
                if hsp:
                    hsp.annotate(groups=len(holdout_groups),
                                 partitions=len(partitions_h))
            with span("combine"):
                predicates = self._combine(partitions_o, partitions_h)
        else:
            predicates = [p.predicate for p in partitions_o]

        with span("build_candidates") as csp:
            candidates = self._build_candidates(predicates, outlier_groups)
            if csp:
                csp.annotate(candidates=len(candidates))
        candidates.sort(key=lambda c: c.score, reverse=True)
        # Leaf predicates that collapsed to one range clause are the
        # index fast path's shape; declare their attributes now so the
        # Merger's downstream exact scoring hits a warm index.
        scorer.prepare_index({
            candidate.predicate.clauses[0].attribute
            for candidate in candidates
            if candidate.predicate.num_clauses == 1
            and isinstance(candidate.predicate.clauses[0], RangeClause)
        })
        return PartitionerResult(
            candidates=candidates,
            elapsed=time.perf_counter() - start,
            n_evaluated=len(candidates),
        )

    # ------------------------------------------------------------------
    # Group preparation (influence arrays + sampling rates, Section 6.1.2)
    # ------------------------------------------------------------------
    def _prepare_group(self, scorer: InfluenceScorer, context: GroupContext) -> _GroupData:
        values = {
            attr: self._query.table.values(attr)[context.indices]
            for attr in self._query.attributes
        }
        influences = scorer.tuple_influences(context)
        if not context.is_outlier:
            influences = np.abs(influences)
        influences = np.nan_to_num(influences, nan=0.0,
                                   posinf=0.0, neginf=0.0)
        group = _GroupData(context=context, values=values, influences=influences)
        finite = influences[np.isfinite(influences)]
        group.inf_lo = float(np.min(finite)) if len(finite) else 0.0
        group.inf_hi = float(np.max(finite)) if len(finite) else 0.0
        group.sample_rate = self._initial_sample_rate(context.size)
        return group

    def _initial_sample_rate(self, group_size: int) -> float:
        """Smallest rate giving ≥95% probability of catching a cluster
        covering an ``epsilon`` fraction of the group (Section 6.1.2)."""
        if not self.params.sampling or group_size == 0:
            return 1.0
        epsilon = self.params.epsilon
        needed = np.log(0.05) / (group_size * np.log1p(-epsilon))
        rate = float(min(max(needed, 0.0), 1.0))
        floor = min(self.params.min_sample_size / max(group_size, 1), 1.0)
        return max(rate, floor)

    def _initial_sample(self, group: _GroupData) -> np.ndarray:
        rows = np.arange(group.size, dtype=np.int64)
        if group.sample_rate >= 1.0:
            return rows
        size = max(int(round(group.sample_rate * group.size)), 1)
        return np.sort(self._rng.choice(rows, size=size, replace=False))

    # ------------------------------------------------------------------
    # Synchronized recursive partitioning (Sections 6.1.1 + 6.1.3)
    # ------------------------------------------------------------------
    def _root_clauses(self) -> dict[str, Clause]:
        return {a.name: a.full_clause() for a in self._query.domain}

    def _partition(self, groups: list[_GroupData]) -> list[_Partition]:
        root = TreeNode(
            self._root_clauses(),
            depth=0,
            payload=[_NodeGroup(rows=np.arange(g.size, dtype=np.int64),
                                sample=self._initial_sample(g))
                     for g in groups],
        )
        leaves: list[_Partition] = []
        stack = [root]
        while stack:
            node = stack.pop()
            budget_left = self.params.max_leaves - (len(leaves) + len(stack))
            if budget_left <= 1 or self._should_stop(node, groups):
                leaves.append(self._to_partition(node, groups))
                continue
            split = self._choose_split(node, groups)
            if split is None:
                leaves.append(self._to_partition(node, groups))
                continue
            left, right = self._apply_split(node, split, groups)
            stack.append(left)
            stack.append(right)
        return leaves

    def _should_stop(self, node: TreeNode, groups: list[_GroupData]) -> bool:
        if node.depth >= self.params.max_depth:
            return True
        node_groups: list[_NodeGroup] = node.payload
        total_sample = sum(len(ng.sample) for ng in node_groups)
        if total_sample < self.params.min_leaf_size:
            return True
        if self._early_prunable(node_groups, groups):
            return True
        for group, ng in zip(groups, node_groups):
            if len(ng.sample) < 2:
                continue
            influences = group.influences[ng.sample]
            if node_error(influences) > self._threshold(group, influences):
                return False
        return True

    def _early_prunable(self, node_groups: list[_NodeGroup],
                        groups: list[_GroupData]) -> bool:
        """Whether the node is uninfluential in *every* group (so further
        splitting would only model noise)."""
        fraction = self.params.early_prune_fraction
        if fraction <= 0.0:
            return False
        for group, ng in zip(groups, node_groups):
            if not len(ng.sample) or group.inf_hi <= 0:
                continue
            if float(np.max(group.influences[ng.sample])) >= fraction * group.inf_hi:
                return False
        return True

    def _threshold(self, group: _GroupData, partition_influences: np.ndarray) -> float:
        """The Section 6.1.1 relaxed error threshold.

        ``ω`` shrinks from ``τ_max`` to ``τ_min`` as the partition's
        maximum influence approaches the group's global maximum — i.e.
        partitions holding influential tuples must be homogeneous, while
        uninfluential ones may stay coarse (Figure 4; see DESIGN.md §4.1
        for the sign-typo discussion).
        """
        inf_lo, inf_hi = group.inf_lo, group.inf_hi
        spread = inf_hi - inf_lo
        if spread <= 0:
            return 0.0
        inf_max = float(np.max(partition_influences))
        p = self.params.p_inflection
        denominator = (1.0 - p) * inf_hi - p * inf_lo
        if denominator == 0:
            omega = self.params.tau_max
        else:
            slope = (self.params.tau_min - self.params.tau_max) / denominator
            omega = self.params.tau_min + slope * (inf_max - inf_hi)
            omega = float(np.clip(omega, self.params.tau_min, self.params.tau_max))
        return omega * spread

    def _choose_split(self, node: TreeNode, groups: list[_GroupData],
                      ) -> Split | None:
        node_groups: list[_NodeGroup] = node.payload
        min_child = max(2, self.params.min_leaf_size // 4)
        current_error = self._combined_node_error(node, groups)
        best: tuple[Split, float] | None = None
        for attribute, clause in node.clauses.items():
            if isinstance(clause, RangeClause):
                candidate = self._best_range_split(
                    attribute, clause, node_groups, groups, min_child)
            else:
                candidate = self._best_set_split(
                    attribute, clause, node_groups, groups, min_child)
            if candidate is not None and (best is None or candidate[1] < best[1]):
                best = candidate
        if best is None or best[1] >= current_error:
            return None
        return best[0]

    def _best_range_split(self, attribute: str, clause: RangeClause,
                          node_groups: list[_NodeGroup], groups: list[_GroupData],
                          min_child: int) -> tuple[Split, float] | None:
        pooled = [group.values[attribute][ng.sample]
                  for group, ng in zip(groups, node_groups) if len(ng.sample)]
        if not pooled:
            return None
        values = np.concatenate(pooled)
        quantiles = np.linspace(0.0, 1.0, self.params.max_split_candidates + 2)[1:-1]
        thresholds = np.unique(np.quantile(values, quantiles))
        thresholds = thresholds[(thresholds > clause.lo) & (thresholds < clause.hi)]
        lo, hi = float(np.min(values)), float(np.max(values))
        thresholds = thresholds[(thresholds > lo) & (thresholds <= hi)]
        if not len(thresholds):
            return None
        combined = np.zeros(len(thresholds))
        total_left = np.zeros(len(thresholds), dtype=np.int64)
        total_right = np.zeros(len(thresholds), dtype=np.int64)
        for group, ng in zip(groups, node_groups):
            if not len(ng.sample):
                continue
            errors, n_left, n_right = range_split_errors(
                group.values[attribute][ng.sample],
                group.influences[ng.sample],
                thresholds,
            )
            combined = np.maximum(combined, errors)
            total_left += n_left
            total_right += n_right
        admissible = (total_left >= min_child) & (total_right >= min_child)
        if not np.any(admissible):
            return None
        combined = np.where(admissible, combined, np.inf)
        index = int(np.argmin(combined))
        return Split(attribute, "range", float(thresholds[index])), float(combined[index])

    def _best_set_split(self, attribute: str, clause: SetClause,
                        node_groups: list[_NodeGroup], groups: list[_GroupData],
                        min_child: int) -> tuple[Split, float] | None:
        if len(clause.values) < 2:
            return None
        pooled_values = []
        pooled_influences = []
        for group, ng in zip(groups, node_groups):
            if len(ng.sample):
                pooled_values.append(group.values[attribute][ng.sample])
                pooled_influences.append(group.influences[ng.sample])
        if not pooled_values:
            return None
        values = np.concatenate(pooled_values)
        influences = np.concatenate(pooled_influences)
        # One-vs-rest candidates, ordered by how far the value's mean
        # influence sits from the node mean (regression-tree practice for
        # categorical features; frequency ordering would miss a rare but
        # highly influential value like a single failing sensor).
        sums: dict = {}
        counts: dict = {}
        for value, influence in zip(values, influences):
            sums[value] = sums.get(value, 0.0) + influence
            counts[value] = counts.get(value, 0) + 1
        node_mean = float(np.mean(influences))
        ordered = sorted(
            (v for v in counts if v in clause.values),
            key=lambda v: (-abs(sums[v] / counts[v] - node_mean), repr(v)),
        )
        best: tuple[Split, float] | None = None
        for value in ordered[: self.params.max_split_candidates]:
            split = Split(attribute, "set", value)
            combined, n_left, n_right = self._combined_split_error(
                split, node_groups, groups)
            if n_left < min_child or n_right < min_child:
                continue
            if best is None or combined < best[1]:
                best = (split, combined)
        return best

    def _combined_node_error(self, node: TreeNode, groups: list[_GroupData]) -> float:
        """``max`` over groups of the node's sample-influence error
        (the Section 6.1.3 metric combination)."""
        worst = 0.0
        for group, ng in zip(groups, node.payload):
            if len(ng.sample) >= 2:
                worst = max(worst, node_error(group.influences[ng.sample]))
        return worst

    def _combined_split_error(self, split: Split, node_groups: list[_NodeGroup],
                              groups: list[_GroupData]) -> tuple[float, int, int]:
        worst = 0.0
        n_left = 0
        n_right = 0
        for group, ng in zip(groups, node_groups):
            if not len(ng.sample):
                continue
            values = group.values[split.attribute][ng.sample]
            left = split.left_mask(values)
            count = int(np.count_nonzero(left))
            n_left += count
            n_right += len(values) - count
            worst = max(worst, split_error(group.influences[ng.sample], left))
        return worst, n_left, n_right

    # ------------------------------------------------------------------
    # Applying a split (with Section 6.1.2 stratified re-sampling)
    # ------------------------------------------------------------------
    def _apply_split(self, node: TreeNode, split: Split, groups: list[_GroupData],
                     ) -> tuple[TreeNode, TreeNode]:
        left_payload: list[_NodeGroup] = []
        right_payload: list[_NodeGroup] = []
        for group, ng in zip(groups, node.payload):
            full_values = group.values[split.attribute][ng.rows]
            left_mask = split.left_mask(full_values)
            rows_left = ng.rows[left_mask]
            rows_right = ng.rows[~left_mask]
            sample_values = group.values[split.attribute][ng.sample]
            sample_left_mask = split.left_mask(sample_values)
            sample_left = ng.sample[sample_left_mask]
            sample_right = ng.sample[~sample_left_mask]
            new_left, new_right = self._restratify(
                group, ng, rows_left, rows_right, sample_left, sample_right)
            left_payload.append(_NodeGroup(rows_left, new_left))
            right_payload.append(_NodeGroup(rows_right, new_right))
        return node.bisect(split, left_payload, right_payload)

    def _restratify(self, group: _GroupData, parent: _NodeGroup,
                    rows_left: np.ndarray, rows_right: np.ndarray,
                    sample_left: np.ndarray, sample_right: np.ndarray,
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Stratified sampling weighted by the children's total sampled
        influence (Section 6.1.2): children that look influential keep a
        proportionally larger sample, topped up from their unsampled rows."""
        if not self.params.sampling or group.sample_rate >= 1.0:
            return sample_left, sample_right
        total_sample = len(parent.sample)
        if total_sample == 0:
            return sample_left, sample_right
        inf_left = float(np.sum(np.abs(group.influences[sample_left]))) if len(sample_left) else 0.0
        inf_right = float(np.sum(np.abs(group.influences[sample_right]))) if len(sample_right) else 0.0
        total_inf = inf_left + inf_right
        if total_inf <= 0:
            share_left = len(rows_left) / max(len(rows_left) + len(rows_right), 1)
        else:
            share_left = inf_left / total_inf
        target_left = int(round(share_left * total_sample))
        target_right = total_sample - target_left
        new_left = self._top_up(rows_left, sample_left, target_left)
        new_right = self._top_up(rows_right, sample_right, target_right)
        return new_left, new_right

    def _top_up(self, rows: np.ndarray, sample: np.ndarray, target: int) -> np.ndarray:
        """Grow ``sample`` toward ``target`` with fresh uniform draws from
        the child's unsampled rows (existing samples are never dropped —
        information only accumulates)."""
        if target <= len(sample) or len(rows) <= len(sample):
            return sample
        pool = np.setdiff1d(rows, sample, assume_unique=False)
        extra = min(target - len(sample), len(pool))
        if extra <= 0:
            return sample
        drawn = self._rng.choice(pool, size=extra, replace=False)
        return np.sort(np.concatenate([sample, drawn]))

    # ------------------------------------------------------------------
    # Leaf materialization and Section 6.1.4 combination
    # ------------------------------------------------------------------
    def _to_partition(self, node: TreeNode, groups: list[_GroupData]) -> _Partition:
        node_groups: list[_NodeGroup] = node.payload
        influence_sum = 0.0
        influence_n = 0
        total_rows = 0
        for group, ng in zip(groups, node_groups):
            total_rows += len(ng.rows)
            if len(ng.sample):
                influence_sum += float(np.sum(group.influences[ng.sample]))
                influence_n += len(ng.sample)
        mean_influence = influence_sum / influence_n if influence_n else 0.0
        return _Partition(
            predicate=node.predicate(),
            node_groups=node_groups,
            mean_influence=mean_influence,
            total_rows=total_rows,
        )

    def _combine(self, partitions_o: list[_Partition], partitions_h: list[_Partition],
                 ) -> list[Predicate]:
        """Split outlier partitions along influential hold-out partitions
        so pieces touching hold-out hot-spots become separate candidates."""
        cutters = self._influential_holdout_boxes(partitions_h)
        if not cutters:
            return [p.predicate for p in partitions_o]
        predicates: list[Predicate] = []
        seen: set[Predicate] = set()
        for partition in partitions_o:
            pieces = [partition.predicate]
            intersections: list[Predicate] = []
            for cutter in cutters:
                if len(pieces) + len(intersections) >= self.params.max_pieces_per_partition:
                    break
                next_pieces: list[Predicate] = []
                for piece in pieces:
                    overlap = piece.intersect(cutter)
                    if overlap is None:
                        next_pieces.append(piece)
                        continue
                    next_pieces.extend(piece.subtract(cutter))
                    intersections.append(overlap)
                pieces = next_pieces
            for predicate in pieces + intersections:
                if predicate not in seen:
                    seen.add(predicate)
                    predicates.append(predicate)
        return predicates

    def _influential_holdout_boxes(self, partitions_h: list[_Partition],
                                   ) -> list[Predicate]:
        scored = [(abs(p.mean_influence), p.predicate)
                  for p in partitions_h if p.total_rows > 0]
        if not scored:
            return []
        scored.sort(key=lambda item: item[0], reverse=True)
        top_influence = scored[0][0]
        if top_influence <= 0:
            return []
        cutoff = top_influence * self.params.holdout_influence_frac
        return [predicate for influence, predicate in
                scored[: self.params.max_holdout_cutters]
                if influence >= cutoff]

    # ------------------------------------------------------------------
    # Candidate construction (stats feed the Section 6.3 merger path)
    # ------------------------------------------------------------------
    def _build_candidates(self, predicates: list[Predicate],
                          outlier_groups: list[_GroupData]) -> list[CandidatePredicate]:
        """Removal statistics and sampled-influence scores for every
        emitted predicate, computed one *group* at a time: each group
        evaluates the whole predicate set as one mask matrix, and counts,
        summed states, and influence sums fall out of vectorized
        contractions against that matrix."""
        if not predicates:
            return []
        n_preds = len(predicates)
        # Chunk the predicate axis so the transient mask matrix and its
        # float copy stay bounded regardless of leaf count × group size.
        chunk_size = self._scorer.batch_chunk
        influence_sums = np.zeros(n_preds, dtype=np.float64)
        influence_counts = np.zeros(n_preds, dtype=np.int64)
        counts_by_group: list[np.ndarray] = []
        states_by_group: list[np.ndarray | None] = []
        for group in outlier_groups:
            evaluator = ArrayMaskEvaluator(group.values)
            counts = np.empty(n_preds, dtype=np.int64)
            states = None
            if group.context.tuple_states is not None:
                states = np.empty(
                    (n_preds, group.context.tuple_states.shape[1]),
                    dtype=np.float64)
            for lo in range(0, n_preds, chunk_size):
                hi = min(lo + chunk_size, n_preds)
                masks = evaluator.evaluate_batch(predicates[lo:hi])
                masks_f = masks.astype(np.float64)
                counts[lo:hi] = np.count_nonzero(masks, axis=1)
                influence_sums[lo:hi] += np.einsum(
                    "mn,n->m", masks_f, group.influences)
                if states is not None:
                    states[lo:hi] = np.einsum(
                        "mn,nk->mk", masks_f, group.context.tuple_states)
            influence_counts += counts
            counts_by_group.append(counts)
            states_by_group.append(states)

        candidates = []
        for p_index, predicate in enumerate(predicates):
            if influence_counts[p_index] == 0:
                continue  # matches no outlier rows; cannot influence O
            stats: dict[tuple, GroupRemovalStats] = {}
            for g_index, group in enumerate(outlier_groups):
                count = int(counts_by_group[g_index][p_index])
                if count == 0:
                    continue
                states = states_by_group[g_index]
                state_sum = None if states is None else states[p_index]
                stats[group.context.key] = GroupRemovalStats(count, state_sum)
            candidates.append(CandidatePredicate(
                predicate=predicate,
                score=float(influence_sums[p_index] / influence_counts[p_index]),
                group_stats=stats,
                volume=self._query.domain.volume_fraction(predicate),
            ))
        return candidates
