"""The Influential Predicates problem instance (paper Section 3.3).

A :class:`ScorpionQuery` bundles everything the user supplies — the input
table, the group-by aggregate query, the outlier set ``O`` with error
vectors ``V``, the hold-out set ``H``, the trade-off ``λ`` and the
Section 7 knob ``c`` — validates it, and derives the objects the search
needs: the effective input relation ``D`` (WHERE applied), the query
results with provenance, and the explanation-attribute domain ``A_rest``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import PartitionerError, QueryError
from repro.predicates.space import Domain
from repro.query.groupby import GroupByQuery
from repro.query.provenance import Provenance
from repro.query.result import AggregateResult, ResultSet
from repro.table.table import Table


class ScorpionQuery:
    """A validated problem instance for the influential-predicates search.

    Parameters
    ----------
    table:
        The raw input relation (before any WHERE clause).
    query:
        The group-by aggregate query the user ran.
    outliers:
        Results the user flagged as outliers — group keys (scalars or
        tuples) or :class:`AggregateResult` objects.  Must be non-empty.
    holdouts:
        Results the user flagged as normal; disjoint from ``outliers``.
    error_vectors:
        Either a single float applied to every outlier (+1 = "too high",
        −1 = "too low") or a mapping from group key to float.
    lam:
        ``λ ∈ [0, 1]`` — weight of outlier influence versus hold-out
        perturbation (Section 3.2).
    c:
        The Section 7 exponent trading predicate size against aggregate
        change; ``c ≥ 0``.
    c_holdout:
        Exponent for hold-out influence; defaults to ``c``.
    attributes:
        Explicit explanation attributes (``A_rest``).  Defaults to every
        attribute not used by the query.
    ignore:
        Attributes to exclude from the default ``A_rest`` (Section 6.4's
        user-specified ignore list).
    perturbation:
        How a predicate "acts on" matched tuples when influence is
        evaluated.  ``"delete"`` (the paper's formulation) removes them;
        ``"mean"`` implements the alternative the paper's Section 3.2
        footnote raises but does not explore — matched tuples keep their
        row but their aggregate attribute is imputed to the group mean,
        so group cardinalities never change and even group-covering
        predicates stay well-defined.
    """

    PERTURBATIONS = ("delete", "mean")

    def __init__(self, table: Table, query: GroupByQuery, outliers: Iterable,
                 holdouts: Iterable = (), error_vectors: float | Mapping = 1.0,
                 lam: float = 0.5, c: float = 1.0, c_holdout: float | None = None,
                 attributes: Sequence[str] | None = None, ignore: Sequence[str] = (),
                 perturbation: str = "delete"):
        if not 0.0 <= lam <= 1.0:
            raise PartitionerError(f"lambda must be in [0, 1], got {lam}")
        if c < 0:
            raise PartitionerError(f"c must be non-negative, got {c}")
        if c_holdout is not None and c_holdout < 0:
            raise PartitionerError(f"c_holdout must be non-negative, got {c_holdout}")
        if perturbation not in self.PERTURBATIONS:
            raise PartitionerError(
                f"perturbation must be one of {self.PERTURBATIONS}, "
                f"got {perturbation!r}")
        self.raw_table = table
        self.query = query
        self.lam = float(lam)
        self.c = float(c)
        self.c_holdout = float(c) if c_holdout is None else float(c_holdout)
        self.perturbation = perturbation

        #: The effective input relation ``D`` (WHERE clause applied).
        self.table: Table = query.filtered(table)
        #: Query output ``α`` with provenance into :attr:`table`.
        self.results: ResultSet = query.execute(table)
        self.provenance = Provenance(self.table, self.results)

        self.outlier_results: list[AggregateResult] = self.provenance.resolve(outliers)
        self.holdout_results: list[AggregateResult] = self.provenance.resolve(holdouts)
        if not self.outlier_results:
            raise QueryError("at least one outlier result is required")
        outlier_keys = {r.key for r in self.outlier_results}
        if len(outlier_keys) != len(self.outlier_results):
            raise QueryError("duplicate outlier selections")
        holdout_keys = {r.key for r in self.holdout_results}
        if len(holdout_keys) != len(self.holdout_results):
            raise QueryError("duplicate hold-out selections")
        overlap = outlier_keys & holdout_keys
        if overlap:
            raise QueryError(f"results {sorted(overlap)} are both outlier and hold-out")

        #: ``V`` — error vector per outlier key.
        self.error_vectors: dict[tuple, float] = self._resolve_error_vectors(error_vectors)

        if attributes is not None:
            attributes = tuple(attributes)
            reserved = set(query.group_by) | {query.agg_column}
            bad = [a for a in attributes if a in reserved]
            if bad:
                raise QueryError(
                    f"attributes {bad} are used by the query and cannot form predicates"
                )
            for name in attributes:
                self.table.schema[name]
            self.attributes: tuple[str, ...] = attributes
        else:
            self.attributes = query.rest_attributes(self.table, ignore=ignore)
        if not self.attributes:
            raise PartitionerError(
                "no explanation attributes remain; widen the table or the "
                "attributes/ignore arguments"
            )
        #: Observed domain of ``A_rest``.
        self.domain = Domain.from_table(self.table, self.attributes)

    def _resolve_error_vectors(self, error_vectors: float | Mapping) -> dict[tuple, float]:
        if isinstance(error_vectors, Mapping):
            resolved = {}
            for result in self.outlier_results:
                candidates = [result.key]
                if len(result.key) == 1:
                    candidates.append(result.key[0])
                for key in candidates:
                    if key in error_vectors:
                        resolved[result.key] = float(error_vectors[key])
                        break
                else:
                    raise QueryError(f"no error vector for outlier {result.key!r}")
            return resolved
        direction = float(error_vectors)
        return {r.key: direction for r in self.outlier_results}

    # ------------------------------------------------------------------
    # Shortcuts used throughout the core
    # ------------------------------------------------------------------
    @property
    def aggregate(self):
        return self.query.aggregate

    @property
    def agg_column(self) -> str:
        return self.query.agg_column

    @property
    def outlier_keys(self) -> list[tuple]:
        return [r.key for r in self.outlier_results]

    @property
    def holdout_keys(self) -> list[tuple]:
        return [r.key for r in self.holdout_results]

    def with_c(self, c: float, c_holdout: float | None = None) -> "ScorpionQuery":
        """A copy of this problem with a different ``c`` (the Section 8.3.3
        caching experiments sweep ``c`` over an otherwise fixed query)."""
        return ScorpionQuery(
            table=self.raw_table,
            query=self.query,
            outliers=self.outlier_keys,
            holdouts=self.holdout_keys,
            error_vectors=self.error_vectors,
            lam=self.lam,
            c=c,
            c_holdout=c_holdout,
            attributes=self.attributes,
            perturbation=self.perturbation,
        )

    def with_params(self, c: float | None = None,
                    c_holdout: float | None = None,
                    lam: float | None = None) -> "ScorpionQuery":
        """A copy with different search scalars but *shared* derived state.

        Unlike :meth:`with_c` — which re-runs the group-by, provenance,
        and domain construction from scratch — this rebinds only the
        knobs no derived artifact depends on (``c`` scales influence
        denominators, ``λ`` weights the fold; the query results,
        provenance, contexts, and attribute domain are all agnostic to
        them).  The resident :class:`~repro.service.ExplainService`
        leans on this to serve a ``c`` sweep from one cached problem
        image.
        """
        if lam is not None and not 0.0 <= lam <= 1.0:
            raise PartitionerError(f"lambda must be in [0, 1], got {lam}")
        if c is not None and c < 0:
            raise PartitionerError(f"c must be non-negative, got {c}")
        if c_holdout is not None and c_holdout < 0:
            raise PartitionerError(
                f"c_holdout must be non-negative, got {c_holdout}")
        clone = object.__new__(ScorpionQuery)
        clone.__dict__.update(self.__dict__)
        if c is not None:
            clone.c = float(c)
            # Mirror the constructor: an unspecified c_holdout follows c.
            clone.c_holdout = float(c) if c_holdout is None else float(c_holdout)
        elif c_holdout is not None:
            clone.c_holdout = float(c_holdout)
        if lam is not None:
            clone.lam = float(lam)
        return clone

    def __repr__(self) -> str:
        return (f"ScorpionQuery({self.query!r}, outliers={len(self.outlier_results)}, "
                f"holdouts={len(self.holdout_results)}, lam={self.lam}, c={self.c})")
