"""Shared types flowing between partitioners, the Merger, and Scorpion.

Partitioners emit :class:`CandidatePredicate` objects — a predicate plus
the partitioner's *internal* score estimate and, when available, the
per-outlier-group removal statistics (matched-row count and summed tuple
state) that let the Merger approximate influence without calling the
Scorer (the Section 6.3 cached-tuple optimization).  The final, exactly
scored output is a list of :class:`ScoredPredicate`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.predicates.predicate import Predicate


@dataclass
class GroupRemovalStats:
    """What removing a candidate's rows does to one outlier group.

    ``count`` is the (possibly sample-extrapolated) number of matched
    rows; ``state_sum`` is the summed incremental-removal state of those
    rows (None for black-box aggregates).
    """

    count: float
    state_sum: np.ndarray | None = None

    def copy(self) -> "GroupRemovalStats":
        state = None if self.state_sum is None else self.state_sum.copy()
        return GroupRemovalStats(self.count, state)


@dataclass
class CandidatePredicate:
    """A partitioner-produced candidate awaiting merging/exact scoring."""

    predicate: Predicate
    #: Internal ranking score (e.g. mean sampled tuple influence); not the
    #: exact influence metric.
    score: float
    #: Per-outlier-group removal stats keyed by group key (optional).
    group_stats: dict[tuple, GroupRemovalStats] | None = None
    #: Relative volume of the predicate box inside the domain (optional).
    volume: float | None = None

    def __repr__(self) -> str:
        return f"CandidatePredicate({self.predicate}, score={self.score:.4g})"


@dataclass(frozen=True)
class ScoredPredicate:
    """A predicate with its exact influence ``inf(O, H, p, V)``."""

    predicate: Predicate
    influence: float

    def __str__(self) -> str:
        return f"{self.predicate}  (influence={self.influence:.6g})"


@dataclass
class ConvergencePoint:
    """Best-so-far snapshot for anytime algorithms (NAIVE's 10-second
    logging in Section 8.2)."""

    elapsed: float
    influence: float
    predicate: Predicate


@dataclass
class PartitionerResult:
    """Everything a partitioning algorithm reports back."""

    #: Ranked candidates for the Merger (may be empty for NAIVE, whose
    #: enumeration is already complete at every granularity).
    candidates: list[CandidatePredicate] = field(default_factory=list)
    #: Exactly scored predicates, best first (filled by Scorpion / NAIVE).
    ranked: list[ScoredPredicate] = field(default_factory=list)
    #: Best-so-far trace for anytime algorithms.
    convergence: list[ConvergencePoint] = field(default_factory=list)
    #: Wall-clock seconds spent inside the partitioner.
    elapsed: float = 0.0
    #: Number of predicates whose influence was evaluated.
    n_evaluated: int = 0
    #: True when a time/size budget stopped the search early.
    truncated: bool = False

    @property
    def best(self) -> ScoredPredicate | None:
        return self.ranked[0] if self.ranked else None


class BestTracker:
    """Tracks the incumbent best predicate and its convergence trace."""

    def __init__(self) -> None:
        self.best_predicate: Predicate | None = None
        self.best_influence: float = float("-inf")
        self.convergence: list[ConvergencePoint] = []
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def offer(self, predicate: Predicate, influence: float) -> bool:
        """Record ``predicate`` if it beats the incumbent; returns True on
        improvement.  NaN and -inf influences are never recorded."""
        if not np.isfinite(influence) or influence <= self.best_influence:
            return False
        self.best_predicate = predicate
        self.best_influence = influence
        self.convergence.append(
            ConvergencePoint(self.elapsed, influence, predicate)
        )
        return True
