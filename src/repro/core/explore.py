"""Interactive ``c`` exploration — the paper's UI slider (Sections 7
and 8.3.3).

"The user or system may want to try different values of c (e.g., via a
slider in the UI or automatically)."  :class:`CExplorer` does exactly
that: it sweeps ``c`` from coarse (0) to selective (1), shares one
:class:`~repro.core.cache.DTCache` so each step after the first is
nearly free for DT, and reports the *predicate ladder* — the distinct
explanations the knob walks through, with the ``c`` interval over which
each one rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Explanation, Scorpion
from repro.errors import PartitionerError
from repro.predicates.predicate import Predicate


@dataclass(frozen=True)
class LadderStep:
    """One rung: the predicate that wins for ``c ∈ [c_lo, c_hi]``."""

    c_lo: float
    c_hi: float
    predicate: Predicate
    #: The explanation produced at the step's lowest swept ``c``.
    explanation: Explanation

    def __str__(self) -> str:
        return f"c ∈ [{self.c_lo:g}, {self.c_hi:g}]: {self.predicate}"


@dataclass
class CExploration:
    """Result of a ``c`` sweep."""

    steps: list[LadderStep]
    #: Every (c, explanation) pair in sweep order.
    trace: list[tuple[float, Explanation]]

    @property
    def predicates(self) -> list[Predicate]:
        return [step.predicate for step in self.steps]

    def at(self, c: float) -> Explanation:
        """The explanation for the swept ``c`` closest to the given one."""
        if not self.trace:
            raise PartitionerError("empty exploration")
        nearest = min(self.trace, key=lambda item: abs(item[0] - c))
        return nearest[1]

    def to_string(self) -> str:
        lines = ["c-ladder:"]
        for step in self.steps:
            lines.append(f"  {step}")
        return "\n".join(lines)


class CExplorer:
    """Sweeps the Section 7 knob over one annotated query.

    Parameters
    ----------
    scorpion:
        Optional pre-configured facade (shared cache and all); defaults
        to ``Scorpion(use_cache=True)``.
    c_values:
        The sweep grid, high to low by default — warm starts flow from
        higher ``c`` to lower (Section 8.3.3).
    """

    DEFAULT_SWEEP = (1.0, 0.75, 0.5, 0.35, 0.2, 0.1, 0.05, 0.0)

    def __init__(self, scorpion: Scorpion | None = None,
                 c_values: Sequence[float] = DEFAULT_SWEEP):
        if not c_values:
            raise PartitionerError("c_values must not be empty")
        if any(c < 0 for c in c_values):
            raise PartitionerError("c values must be non-negative")
        self.scorpion = scorpion or Scorpion(use_cache=True)
        self.c_values = tuple(sorted(set(float(c) for c in c_values),
                                     reverse=True))

    def explore(self, problem: ScorpionQuery) -> CExploration:
        """Run the sweep and collapse it into the predicate ladder."""
        trace: list[tuple[float, Explanation]] = []
        for c in self.c_values:
            result = self.scorpion.explain(problem.with_c(c))
            best = result.best
            if best is not None:
                trace.append((c, best))
        steps: list[LadderStep] = []
        for c, explanation in trace:
            if steps and steps[-1].predicate == explanation.predicate:
                previous = steps[-1]
                steps[-1] = LadderStep(
                    c_lo=c, c_hi=previous.c_hi,
                    predicate=previous.predicate,
                    explanation=explanation,
                )
            else:
                steps.append(LadderStep(c_lo=c, c_hi=c,
                                        predicate=explanation.predicate,
                                        explanation=explanation))
        return CExploration(steps=steps, trace=trace)
