"""The MC (bottom-up) partitioner for independent, anti-monotonic
aggregates (paper Section 6.2).

MC adapts CLIQUE-style subspace clustering: start from single-attribute
*unit* predicates (grid cells / single values), intersect pairs that
differ in exactly one attribute to refine dimensionality, prune with the
anti-monotonicity of ``Δ``, and merge adjacent survivors.  The search
stops as soon as a round of merging fails to beat the incumbent best.

Pruning keeps a predicate when its *refinement bound* — the best
influence any contained predicate could still achieve, given additive
Δ — reaches the incumbent.  The bound dominates both of the paper's
retention conditions and reduces to its single-tuple rule at ``c = 1``
(see DESIGN.md §4 items 2 and 6).

Implementation note: every level-``k`` predicate is a cell of the
``k``-dimensional grid, so its matched outlier rows (*support*) flow
through intersections as plain set intersections; supports drive the
pruning bounds, exactly like transaction lists in Apriori-style subspace
clustering.  The per-level candidate ranking — ``inf(O, ∅, p, V)`` for
every surviving cell — goes through one
:meth:`InfluenceScorer.score_batch` call per round rather than a Scorer
round-trip per cell; the level-1 continuous cells are single range
clauses, so MC declares its continuous attributes via
:meth:`InfluenceScorer.prepare_index` and that first (largest) round
rides the prefix-aggregate index instead of mask matrices.  Those same
``score_batch`` rounds shard across worker processes when the scorer's
``workers`` knob is set — MC inherits the parallelism with no changes
here (see :mod:`repro.parallel`).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

import numpy as np

from repro.core.influence import INVALID_INFLUENCE, InfluenceScorer
from repro.core.merger import Merger, MergerParams
from repro.core.partition import (
    CandidatePredicate,
    PartitionerResult,
    ScoredPredicate,
)
from repro.core.problem import ScorpionQuery
from repro.errors import PartitionerError
from repro.obs.trace import span
from repro.predicates.clause import SetClause
from repro.predicates.discretizer import EquiWidthDiscretizer
from repro.predicates.predicate import Predicate


@dataclass(frozen=True)
class _Cell:
    """A grid cell of the current dimensionality plus its outlier support
    (positions into the concatenated outlier rows)."""

    predicate: Predicate
    support: frozenset


class _OutlierIndex:
    """Precomputed per-outlier-row arrays for support-based pruning
    bounds.  (Candidate *scoring* goes through the Scorer's batch API;
    only the refinement bound still reads supports directly.)"""

    def __init__(self, scorer: InfluenceScorer):
        self.scorer = scorer
        contexts = scorer.outlier_contexts
        self.n_groups = len(contexts)
        self.group_ids = np.concatenate([
            np.full(ctx.size, g, dtype=np.int64) for g, ctx in enumerate(contexts)
        ])
        self.influences = np.concatenate([
            np.nan_to_num(scorer.tuple_influences(ctx), nan=0.0,
                          posinf=0.0, neginf=0.0)
            for ctx in contexts
        ])

    def refinement_bound(self, cell: _Cell) -> float:
        """Upper bound on any refinement's hold-out-free influence
        (top-``k`` prefix bound; see InfluenceScorer.refinement_bound)."""
        if not cell.support:
            return INVALID_INFLUENCE
        rows = np.fromiter(cell.support, dtype=np.int64, count=len(cell.support))
        groups = self.group_ids[rows]
        influences = self.influences[rows]
        total = 0.0
        for g in np.unique(groups):
            positive = influences[(groups == g) & (influences > 0)]
            if not len(positive):
                continue
            positive[::-1].sort()
            prefix = np.cumsum(positive)
            ks = np.arange(1, len(positive) + 1, dtype=np.float64)
            total += float(np.max(prefix / ks ** self.scorer.c))
        return self.scorer.lam * total / max(self.n_groups, 1)


class MCPartitioner:
    """Bottom-up influential-subspace search.

    Parameters
    ----------
    n_bins:
        Equi-width cells per continuous attribute (paper: 15).
    max_iterations:
        Cap on refinement rounds (None = number of attributes).
    max_predicates_per_level:
        Keep at most this many predicates per round (best pruning
        bounds first) to bound worst-case blow-up.
    merger_params:
        Overrides for the internal Merger.  Defaults to exact scoring
        (the cached-state approximation is a DT-input optimization) with
        the Section 6.3 top-quartile expansion, which keeps merging cost
        linear-ish in the unit count on discrete-heavy data; pass
        ``MergerParams(expand_fraction=1.0, use_approximation=False)``
        for the paper's basic merger.
    require_check:
        Verify the aggregate's anti-monotonicity ``check`` on every
        labeled group's data and refuse to run when it fails.
    """

    name = "mc"

    def __init__(self, n_bins: int = 15, max_iterations: int | None = None,
                 max_predicates_per_level: int = 4096,
                 merger_params: MergerParams | None = None,
                 require_check: bool = True):
        if n_bins < 1:
            raise PartitionerError(f"n_bins must be >= 1, got {n_bins}")
        self.n_bins = n_bins
        self.max_iterations = max_iterations
        self.max_predicates_per_level = max_predicates_per_level
        self.merger_params = merger_params or MergerParams(
            expand_fraction=0.25, use_approximation=False)
        self.require_check = require_check

    # ------------------------------------------------------------------
    def run(self, query: ScorpionQuery, scorer: InfluenceScorer | None = None,
            ) -> PartitionerResult:
        start = time.perf_counter()
        scorer = scorer or InfluenceScorer(query)
        self._validate(query, scorer)
        # Level-1 units are single-clause grid cells / value sets — the
        # range and bucket tiers' shapes — so build those indexes up
        # front (level-2 intersections are the conjunction tier's).
        scorer.prepare_index(spec.name for spec in query.domain)
        merger = Merger(scorer, query.domain, params=self.merger_params)
        index = _OutlierIndex(scorer)

        cells = self._initial_units(query, scorer)
        best_influence = float("-inf")
        ranked: dict[Predicate, float] = {}
        max_rounds = self.max_iterations or len(query.attributes)

        for round_index in range(max_rounds):
            with span("mc_round") as rsp:
                if round_index > 0:
                    cells = self._intersect(cells)
                if not cells:
                    break
                cells = self._prune(cells, index, best_influence)
                if rsp:
                    rsp.annotate(round=round_index + 1, cells=len(cells))
                if not cells:
                    break
                cell_scores = scorer.score_batch(
                    [cell.predicate for cell in cells], ignore_holdouts=True)
                candidates = [
                    CandidatePredicate(cell.predicate, score=float(score))
                    for cell, score in zip(cells, cell_scores)
                ]
                merged = merger.run(candidates)
                for scored in merged:
                    previous = ranked.get(scored.predicate)
                    if previous is None or scored.influence > previous:
                        ranked[scored.predicate] = scored.influence
                better = [sp for sp in merged if sp.influence > best_influence]
                if not better:
                    break
                best_influence = max(sp.influence for sp in better)
                promising = [sp.predicate for sp in better]
                cells = [cell for cell in cells
                         if any(pm.contains(cell.predicate) for pm in promising)]

        ranked_list = [ScoredPredicate(p, inf) for p, inf in ranked.items()]
        ranked_list.sort(key=lambda sp: sp.influence, reverse=True)
        return PartitionerResult(
            candidates=[],
            ranked=ranked_list,
            elapsed=time.perf_counter() - start,
            n_evaluated=scorer.stats.mask_scores + scorer.stats.indexed_predicates,
        )

    # ------------------------------------------------------------------
    def _validate(self, query: ScorpionQuery, scorer: InfluenceScorer) -> None:
        aggregate = query.aggregate
        if not aggregate.is_independent:
            raise PartitionerError(
                f"MC requires an independent aggregate; {aggregate.name} "
                "does not declare the property (Section 5.2)"
            )
        if not self.require_check:
            return
        for context in scorer.contexts:
            if not aggregate.check(context.agg_values):
                raise PartitionerError(
                    f"{aggregate.name}.check failed on group {context.key!r}: "
                    "Δ is not anti-monotone on this data (Section 5.3); "
                    "use the DT partitioner instead"
                )

    # ------------------------------------------------------------------
    # Unit predicates (the CLIQUE grid restricted to outlier support)
    # ------------------------------------------------------------------
    def _initial_units(self, query: ScorpionQuery,
                       scorer: InfluenceScorer) -> list[_Cell]:
        cells: list[_Cell] = []
        outlier_rows = np.concatenate(
            [ctx.indices for ctx in scorer.outlier_contexts])
        for spec in query.domain:
            values = query.table.values(spec.name)[outlier_rows]
            positions_by_unit: dict = {}
            if spec.is_continuous:
                grid = EquiWidthDiscretizer(spec.name, spec.lo, spec.hi, self.n_bins)
                for position, value in enumerate(values):
                    positions_by_unit.setdefault(
                        grid.bin_index(float(value)), []).append(position)
                for bin_index in sorted(positions_by_unit):
                    cells.append(_Cell(
                        Predicate([grid.cell(bin_index)]),
                        frozenset(positions_by_unit[bin_index]),
                    ))
            else:
                for position, value in enumerate(values):
                    positions_by_unit.setdefault(value, []).append(position)
                for value in sorted(positions_by_unit, key=repr):
                    cells.append(_Cell(
                        Predicate([SetClause(spec.name, [value])]),
                        frozenset(positions_by_unit[value]),
                    ))
        return cells

    # ------------------------------------------------------------------
    # Refinement: intersect pairs differing in exactly one attribute
    # ------------------------------------------------------------------
    def _intersect(self, cells: list[_Cell]) -> list[_Cell]:
        by_attrs: dict[frozenset, list[_Cell]] = {}
        for cell in cells:
            by_attrs.setdefault(frozenset(cell.predicate.attributes), []).append(cell)
        produced: dict[Predicate, _Cell] = {}
        attr_sets = list(by_attrs)
        for set_a, set_b in itertools.combinations_with_replacement(attr_sets, 2):
            if len(set_a) != len(set_b) or len(set_a | set_b) != len(set_a) + 1:
                continue
            pairs = (
                itertools.combinations(by_attrs[set_a], 2)
                if set_a is set_b
                else itertools.product(by_attrs[set_a], by_attrs[set_b])
            )
            for cell_a, cell_b in pairs:
                support = cell_a.support & cell_b.support
                if not support:
                    continue
                intersection = cell_a.predicate.intersect(cell_b.predicate)
                if intersection is None or intersection.num_clauses != len(set_a) + 1:
                    continue
                if intersection not in produced:
                    produced[intersection] = _Cell(intersection, support)
        return sorted(produced.values(), key=lambda cell: str(cell.predicate))

    # ------------------------------------------------------------------
    # Anti-monotonicity pruning
    # ------------------------------------------------------------------
    def _prune(self, cells: list[_Cell], index: _OutlierIndex,
               best_influence: float) -> list[_Cell]:
        """Drop cells no refinement of which can beat the incumbent."""
        if best_influence == float("-inf"):
            kept = list(cells)
        else:
            kept = [cell for cell in cells
                    if index.refinement_bound(cell) >= best_influence]
        if len(kept) > self.max_predicates_per_level:
            kept.sort(key=index.refinement_bound, reverse=True)
            kept = kept[: self.max_predicates_per_level]
        return kept
