"""Scorpion's core: the influential-predicates search (paper Sections 3–7).

Pipeline (Figure 2): the :class:`~repro.core.problem.ScorpionQuery`
captures the user's annotated query; the
:class:`~repro.core.influence.InfluenceScorer` evaluates predicate
influence; a partitioner (:mod:`~repro.core.naive`, :mod:`~repro.core.dt`
or :mod:`~repro.core.mc`) generates candidate predicates; the
:class:`~repro.core.merger.Merger` coarsens them; and
:class:`~repro.core.scorpion.Scorpion` orchestrates the whole search and
returns ranked :class:`~repro.core.scorpion.Explanation` objects.
"""

from repro.core.dt import DTPartitioner
from repro.core.explore import CExploration, CExplorer, LadderStep
from repro.core.influence import GroupContext, InfluenceScorer
from repro.core.mc import MCPartitioner
from repro.core.merger import Merger
from repro.core.naive import NaivePartitioner
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Explanation, Scorpion, ScorpionResult

__all__ = [
    "CExploration",
    "CExplorer",
    "DTPartitioner",
    "Explanation",
    "GroupContext",
    "InfluenceScorer",
    "LadderStep",
    "MCPartitioner",
    "Merger",
    "NaivePartitioner",
    "Scorpion",
    "ScorpionQuery",
    "ScorpionResult",
]
