"""The NAIVE exhaustive partitioner (paper Sections 4.2 and 8.2).

NAIVE enumerates every conjunctive predicate over ``A_rest`` — discrete
clauses over all value combinations, continuous clauses over all unions
of consecutive grid cells — and scores each one.  Two Section 8.2
modifications make it usable as the experimental baseline:

* predicates are generated in increasing complexity order (clause count,
  then discrete value-set size), and
* the search runs under a wall-clock (and optionally evaluation-count)
  budget, returning the most influential predicate found so far; every
  improvement is logged so Figure 11's convergence curves can be
  regenerated.

Enumerated predicates are collected into fixed-size chunks and scored
through :meth:`InfluenceScorer.score_batch` — one vectorized pass per
chunk instead of a Scorer round-trip per predicate — while the budget
checks still run per predicate, so truncation points are unchanged.
The enumeration's opening wave is exactly the index fast path's shape
(every 1-clause range over every continuous attribute), so the search
declares those attributes up front via
:meth:`InfluenceScorer.prepare_index` and the batches bypass mask
matrices entirely.

Because all scoring funnels through ``score_batch``, NAIVE inherits
sharded multi-process execution from the scorer's ``workers`` knob with
no changes here: each chunk splits into shards scored on the worker
pool, bit-for-bit identical to serial (see :mod:`repro.parallel`).
"""

from __future__ import annotations

import math
import time

from repro.core.influence import InfluenceScorer
from repro.core.partition import BestTracker, PartitionerResult, ScoredPredicate
from repro.core.problem import ScorpionQuery
from repro.errors import PartitionerError
from repro.predicates.predicate import Predicate
from repro.predicates.space import PredicateEnumerator


class NaivePartitioner:
    """Budgeted exhaustive search over the full predicate space.

    Parameters
    ----------
    n_bins:
        Equi-width cells per continuous attribute (paper: 15).
    max_clauses:
        Cap on clauses per predicate (None = number of attributes).
    max_discrete_set_size:
        Cap on discrete value-set sizes (None = unbounded).
    time_budget:
        Wall-clock seconds before the search stops (paper: 40 minutes;
        benches use seconds).  None = no time limit.
    max_evaluations:
        Deterministic alternative budget: stop after this many predicate
        evaluations.  None = no count limit.
    top_k:
        How many of the best predicates to keep in the ranked output.
    batch_size:
        Predicates collected per :meth:`InfluenceScorer.score_batch`
        call.  Larger chunks amortize more per-predicate overhead but
        make the time budget coarser-grained.
    """

    name = "naive"

    def __init__(self, n_bins: int = 15, max_clauses: int | None = None,
                 max_discrete_set_size: int | None = None,
                 time_budget: float | None = 30.0,
                 max_evaluations: int | None = None,
                 top_k: int = 10, batch_size: int = 256):
        if time_budget is None and max_evaluations is None:
            raise PartitionerError("NAIVE needs a time or evaluation budget "
                                   "(its full space is exponential)")
        if top_k < 1:
            raise PartitionerError(f"top_k must be >= 1, got {top_k}")
        if batch_size < 1:
            raise PartitionerError(f"batch_size must be >= 1, got {batch_size}")
        self.n_bins = n_bins
        self.max_clauses = max_clauses
        self.max_discrete_set_size = max_discrete_set_size
        self.time_budget = time_budget
        self.max_evaluations = max_evaluations
        self.top_k = top_k
        self.batch_size = batch_size

    def run(self, query: ScorpionQuery, scorer: InfluenceScorer | None = None,
            ) -> PartitionerResult:
        """Search the predicate space and return the ranked best found."""
        scorer = scorer or InfluenceScorer(query)
        # Declare the single-clause producers: every continuous
        # attribute's grid cells (and their unions) and every discrete
        # attribute's value sets arrive as 1-clause predicates — and
        # their pairings as 2-clause conjunctions — all index-tier
        # shapes.
        scorer.prepare_index(spec.name for spec in query.domain)
        # Warm the worker pool before the first enumeration round so
        # spin-up is paid once per problem, not inside round one (no-op
        # for serial scorers).
        scorer.prepare_parallel()
        enumerator = PredicateEnumerator(
            query.domain,
            n_bins=self.n_bins,
            max_clauses=self.max_clauses,
            max_discrete_set_size=self.max_discrete_set_size,
        )
        tracker = BestTracker()
        top: list[ScoredPredicate] = []
        start = time.perf_counter()
        n_evaluated = 0
        truncated = False
        chunk: list[Predicate] = []

        def flush() -> None:
            nonlocal n_evaluated
            if not chunk:
                return
            influences = scorer.score_batch(chunk)
            for predicate, influence in zip(chunk, influences):
                influence = float(influence)
                n_evaluated += 1
                tracker.offer(predicate, influence)
                _keep_top(top, ScoredPredicate(predicate, influence), self.top_k)
            chunk.clear()

        for predicate in enumerator.enumerate():
            admitted = n_evaluated + len(chunk)
            if self.max_evaluations is not None and admitted >= self.max_evaluations:
                truncated = True
                break
            if (self.time_budget is not None
                    and time.perf_counter() - start > self.time_budget):
                truncated = True
                break
            chunk.append(predicate)
            if len(chunk) >= self.batch_size:
                flush()
        # Predicates admitted before a budget stop are always scored: a
        # per-predicate loop would have scored them at admission time.
        # Under a wall-clock budget this overruns the deadline by at most
        # one batch's scoring — the batched analogue of the scalar loop
        # finishing its in-flight predicate — and keeps ``n_evaluated``
        # equal to the admitted count for both budget kinds.
        flush()
        top.sort(key=lambda sp: sp.influence, reverse=True)
        return PartitionerResult(
            candidates=[],
            ranked=top,
            convergence=tracker.convergence,
            elapsed=time.perf_counter() - start,
            n_evaluated=n_evaluated,
            truncated=truncated,
        )


def _keep_top(top: list[ScoredPredicate], item: ScoredPredicate, k: int) -> None:
    """Maintain the k best scored predicates (small k; linear is fine)."""
    if math.isnan(item.influence) or item.influence == float("-inf"):
        return
    if len(top) < k:
        top.append(item)
        return
    worst_index = min(range(len(top)), key=lambda i: top[i].influence)
    if item.influence > top[worst_index].influence:
        top[worst_index] = item
