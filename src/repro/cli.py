"""Command-line interface: Scorpion over a CSV file.

Example::

    python -m repro \
        --csv readings.csv \
        --query "SELECT avg(temp) FROM readings GROUP BY time" \
        --outliers 12PM,1PM --holdouts 11AM \
        --direction high --c 0.5 --top-k 3

The group keys in ``--outliers`` / ``--holdouts`` are matched against
the group-by column's values (numeric strings are coerced when the
column is numeric).  ``--explore-c`` sweeps the Section 7 knob instead
of solving a single instance and prints the predicate ladder.

``--serve`` starts the resident service instead: one JSON object per
stdin line describes a request (``{"outliers": [...], "holdouts":
[...], "c": 0.3, ...}``), one JSON line per request comes back, and the
expensive problem build is cached across requests behind a content key
(see :mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.core.explore import CExplorer
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.errors import QueryError, ResourceExhausted, ScorpionError
from repro.faults import fault_point
from repro.obs.logs import JsonLogger, new_trace_id
from repro.obs.metrics import REGISTRY
from repro.obs.trace import render_profile
from repro.query.sql import parse_query
from repro.service.service import ExplainService
from repro.table.io import read_csv
from repro.table.table import Table

#: Concurrent in-flight explain requests --serve accepts before
#: answering ``overloaded`` (override via ``SCORPION_INFLIGHT_LIMIT``
#: or ``--inflight-limit``).
DEFAULT_INFLIGHT_LIMIT = 8


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scorpion: explain outliers in aggregate query results.",
    )
    parser.add_argument("--csv", required=True,
                        help="input CSV file (header row required)")
    parser.add_argument("--query", required=True,
                        help="SQL: SELECT <agg>(<col>) FROM <t> "
                             "[WHERE ...] GROUP BY <col>")
    parser.add_argument("--outliers", default="",
                        help="comma-separated group keys flagged as outliers "
                             "(required except with --serve, where each "
                             "request names its own)")
    parser.add_argument("--holdouts", default="",
                        help="comma-separated group keys flagged as normal")
    parser.add_argument("--direction", choices=["high", "low"], default="high",
                        help="are the outliers too high or too low? "
                             "(error vector; default: high)")
    parser.add_argument("--c", type=float, default=0.5,
                        help="selectivity knob, 0 = coarse, 1 = selective "
                             "(paper Section 7; default 0.5)")
    parser.add_argument("--lam", type=float, default=0.5,
                        help="outlier-vs-holdout weight λ (default 0.5)")
    parser.add_argument("--algorithm", choices=["auto", "dt", "mc", "naive"],
                        default="auto")
    parser.add_argument("--ignore", default="",
                        help="comma-separated attributes to exclude from "
                             "explanations")
    parser.add_argument("--top-k", type=int, default=3,
                        help="number of explanations to print (default 3)")
    parser.add_argument("--explore-c", action="store_true",
                        help="sweep c and print the predicate ladder "
                             "instead of solving one instance")
    parser.add_argument("--no-index", action="store_true",
                        help="disable the prefix-aggregate index fast "
                             "path (mask-matrix scoring only)")
    parser.add_argument("--batch-chunk", type=int, default=None,
                        help="predicates per vectorized scoring pass "
                             "(default: SCORPION_BATCH_CHUNK env var or "
                             "the built-in 1024; results are unaffected)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for sharded batch scoring "
                             "(default: SCORPION_WORKERS env var or 1 = "
                             "serial; 0 = one per CPU; results are "
                             "bit-for-bit identical at any setting)")
    parser.add_argument("--group-chunk", type=int, default=None,
                        help="contexts per group-axis tile for parallel "
                             "scoring (default: SCORPION_GROUP_CHUNK env "
                             "var or cost-model auto; 0 disables group "
                             "tiling; results are unaffected)")
    parser.add_argument("--backend", choices=["numpy", "duckdb"],
                        default=None,
                        help="execution backend for state building and "
                             "index views (default: SCORPION_BACKEND env "
                             "var or numpy; duckdb pushes aggregations "
                             "into an embedded engine, falling back to "
                             "numpy with a warning when the package is "
                             "missing; results are bit-for-bit identical)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-shard worker deadline in seconds "
                             "(default: SCORPION_TASK_TIMEOUT env var or "
                             "300; <= 0 waits forever)")
    parser.add_argument("--serve", action="store_true",
                        help="resident service mode: read one JSON request "
                             "per stdin line, write one JSON response per "
                             "line, caching problem images / index views / "
                             "worker pools across requests")
    parser.add_argument("--cache-bytes", type=int, default=None,
                        help="resident cache capacity in bytes for --serve "
                             "(default: SCORPION_CACHE_BYTES env var or "
                             "512 MiB)")
    parser.add_argument("--inflight-limit", type=int, default=None,
                        help="concurrent in-flight explain requests --serve "
                             "accepts before answering a structured "
                             "'overloaded' error (default: "
                             "SCORPION_INFLIGHT_LIMIT env var or 8)")
    parser.add_argument("--trace", action="store_true",
                        help="record a per-explain span tree (also "
                             "SCORPION_TRACE=1); results are bit-for-bit "
                             "unaffected.  In --serve mode each response "
                             "line carries its trace")
    parser.add_argument("--profile", action="store_true",
                        help="print an indented text profile of the explain "
                             "span tree after the explanations (implies "
                             "--trace; one-shot mode only)")
    parser.add_argument("--metrics-file", default=None,
                        help="write a Prometheus text-exposition dump of "
                             "the metrics registry to this path (rewritten "
                             "after every --serve request)")
    return parser


def _split_keys(raw: str) -> list[str]:
    return [key.strip() for key in raw.split(",") if key.strip()]


def _coerce_keys(keys: Sequence[str], table: Table, column: str) -> list:
    """Match CLI strings against the group-by column's value types."""
    spec = table.schema[column]
    if spec.is_continuous:
        return [float(key) for key in keys]
    sample = {type(v) for v in table.column(column).values[:100]}
    coerced: list = []
    for key in keys:
        if str in sample:
            coerced.append(key)
        elif int in sample:
            coerced.append(int(key))
        elif float in sample:
            coerced.append(float(key))
        else:
            coerced.append(key)
    return coerced


def _dump_metrics(path: str | None) -> None:
    """Rewrite the Prometheus text-exposition dump (no-op without a
    ``--metrics-file`` path)."""
    if not path:
        return
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(REGISTRY.render_prometheus())


def _explain_op(service: ExplainService, request: dict, args, table: Table,
                query) -> dict:
    """One serve-mode explain: resolve the request against the CLI-flag
    defaults and run it through the resident service."""
    req_query = (parse_query(request["query"]).to_query()
                 if "query" in request else query)
    group_column = req_query.group_by[0]
    outliers = _coerce_keys(
        [str(k) for k in request["outliers"]], table, group_column)
    holdouts = _coerce_keys(
        [str(k) for k in request.get("holdouts", [])],
        table, group_column)
    direction = request.get("direction", args.direction)
    result = service.explain_request(
        table, req_query, outliers, holdouts,
        error_vectors=+1.0 if direction == "high" else -1.0,
        lam=float(request.get("lam", args.lam)),
        c=float(request.get("c", args.c)),
        ignore=_split_keys(args.ignore),
    )
    payload = {
        "ok": True,
        "algorithm": result.algorithm,
        "elapsed": result.elapsed,
        "cache_hit": bool(result.scorer_stats["service_cache_hit"]),
        "explanations": [
            {"predicate": str(e.predicate),
             "influence": float(e.influence),
             "rows": int(e.n_matched)}
            for e in result.explanations],
        "stats": {
            k: v for k, v in sorted(result.scorer_stats.items())
            if k.startswith(("service_", "dtcache_"))},
    }
    if result.trace is not None:
        payload["trace"] = result.trace
    return payload


def _resolve_inflight(limit: int | None) -> int:
    if limit is None:
        raw = os.environ.get("SCORPION_INFLIGHT_LIMIT", "").strip()
        limit = int(raw) if raw else DEFAULT_INFLIGHT_LIMIT
    limit = int(limit)
    if limit < 1:
        raise ScorpionError(f"inflight limit must be >= 1, got {limit}")
    return limit


def _guarded_explain(service: ExplainService, request: dict, args,
                     table: Table, query) -> dict:
    """One explain on a dispatch thread, mapped to a structured payload.

    Never raises: every failure becomes an ``"ok": false`` payload with
    an error ``code`` (``oom_retry`` for memory exhaustion even after
    cache shedding, ``bad_request`` for caller mistakes, ``internal``
    for anything else — injected faults included), so no request can
    kill the serve loop.  Successful payloads carry a sparse
    ``"degraded": true`` marker while any pool circuit is holding
    batches serial.
    """
    try:
        payload = _explain_op(service, request, args, table, query)
    except (ResourceExhausted, MemoryError) as exc:
        return {"ok": False, "error": str(exc), "code": "oom_retry"}
    except (ScorpionError, ValueError, KeyError, TypeError) as exc:
        return {"ok": False, "error": str(exc), "code": "bad_request"}
    except Exception as exc:  # noqa: BLE001 - the serve loop must survive
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}",
                "code": "internal"}
    if service.health()["degraded"]:
        payload["degraded"] = True
    return payload


class _ShutdownSignal(BaseException):
    """Raised by the SIGINT/SIGTERM handler to break a blocked
    ``readline`` — BaseException so no request-level handler can
    swallow it."""


def _serve(args, table: Table, query, out, stdin, log=None) -> int:
    """JSON-lines request loop over a resident :class:`ExplainService`.

    Each request object accepts ``outliers`` (required), ``holdouts``,
    ``direction``, ``c``, ``lam``, and ``query`` (SQL overriding the
    startup query); omitted knobs fall back to the CLI flags.  Control
    operations bypass scoring: ``{"op": "stats"}`` answers with
    :meth:`ExplainService.stats`, ``{"op": "metrics"}`` with the
    Prometheus text dump, and ``{"op": "health"}`` with
    :meth:`ExplainService.health` (pool/cache/degradation state).  Each
    response line carries the request's ``trace_id`` — the same ID its
    structured log lines (on ``log``, default stderr) carry — and a
    malformed or unknown request yields a structured ``"ok": false``
    line with an error ``code`` (``bad_json`` / ``bad_request`` /
    ``unknown_op``) instead of ending the loop.

    **Concurrency and backpressure.**  Explains run on a dispatch
    thread pool sized by ``--inflight-limit`` /
    ``SCORPION_INFLIGHT_LIMIT`` and their responses are written in
    submission order; control ops drain in-flight explains first, so a
    ``stats`` line always reflects every request before it.  The one
    out-of-order response is backpressure itself: a request arriving
    with the pipeline full is answered immediately with code
    ``overloaded`` rather than queued unboundedly.

    **Shutdown.**  SIGINT/SIGTERM (and EOF) drain in-flight requests,
    write their responses, log one ``serve_shutdown`` event with the
    reason, release the service (pools, shared memory), and exit 0 —
    a deployed explainer is restartable without losing accepted work.
    """
    logger = JsonLogger(stream=log)
    inflight_limit = _resolve_inflight(args.inflight_limit)
    service = ExplainService(
        cache_bytes=args.cache_bytes, algorithm=args.algorithm,
        top_k=args.top_k, use_index=not args.no_index,
        batch_chunk=args.batch_chunk, workers=args.workers,
        group_chunk=args.group_chunk, task_timeout=args.task_timeout,
        backend=args.backend,
        logger=logger, trace=True if args.trace else None)
    #: (trace_id, op, perf_counter at read, Future[payload]) per
    #: in-flight explain, in submission order.
    pending: deque = deque()
    shutdown_reason: str | None = None
    in_read = threading.Event()

    def _handle_signal(signum, frame) -> None:
        nonlocal shutdown_reason
        shutdown_reason = signal.Signals(signum).name
        if in_read.is_set():
            raise _ShutdownSignal()

    def _emit(payload: dict, trace_id: str, op: str,
              started: float) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1e3
        if payload.get("ok"):
            finish_fields = {"op": op, "elapsed_ms": round(elapsed_ms, 3)}
            if "cache_hit" in payload:
                finish_fields["cache_hit"] = payload["cache_hit"]
            logger.log("request_finish", trace_id=trace_id, **finish_fields)
        else:
            logger.log("request_error", trace_id=trace_id,
                       code=payload.get("code", "bad_request"),
                       error=payload.get("error"))
        print(json.dumps(payload), file=out, flush=True)
        _dump_metrics(args.metrics_file)

    def _flush(block: bool) -> None:
        """Write completed in-flight responses in submission order
        (``block`` waits for all of them — the drain barrier)."""
        while pending:
            trace_id, op, started, future = pending[0]
            if not block and not future.done():
                return
            payload = future.result()  # _guarded_explain never raises
            pending.popleft()
            payload["trace_id"] = trace_id
            _emit(payload, trace_id, op, started)

    installed: list[tuple] = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            installed.append((sig, signal.signal(sig, _handle_signal)))
        except ValueError:  # not the main thread (tests, embedding)
            pass
    pool = ThreadPoolExecutor(max_workers=inflight_limit,
                              thread_name_prefix="serve")
    try:
        with service:
            while shutdown_reason is None:
                try:
                    in_read.set()
                    try:
                        fault_point("serve.read")
                        line = stdin.readline()
                    finally:
                        in_read.clear()
                except _ShutdownSignal:
                    break
                except OSError as exc:
                    logger.log("read_error", error=str(exc))
                    shutdown_reason = "read_error"
                    break
                if line == "":
                    shutdown_reason = "eof"
                    break
                line = line.strip()
                if not line:
                    continue
                trace_id = new_trace_id()
                started = time.perf_counter()
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    _flush(block=True)
                    logger.log("request_start", trace_id=trace_id,
                               op="explain")
                    _emit({"ok": False, "error": str(exc),
                           "code": "bad_json", "trace_id": trace_id},
                          trace_id, "explain", started)
                    continue
                op = (request.get("op", "explain")
                      if isinstance(request, dict) else "explain")
                logger.log("request_start", trace_id=trace_id, op=op)
                if isinstance(request, dict) and op == "explain":
                    _flush(block=False)
                    if len(pending) >= inflight_limit:
                        REGISTRY.counter(
                            "scorpion_overloaded_total",
                            "Requests rejected by the in-flight "
                            "limit").inc()
                        _emit({"ok": False,
                               "error": f"in-flight limit {inflight_limit} "
                                        "reached",
                               "code": "overloaded", "trace_id": trace_id},
                              trace_id, op, started)
                        continue
                    pending.append((trace_id, op, started, pool.submit(
                        _guarded_explain, service, request, args, table,
                        query)))
                    _flush(block=False)
                    continue
                # Control ops (and malformed requests) see the service
                # *after* everything already accepted: drain first.
                _flush(block=True)
                if not isinstance(request, dict):
                    payload = {"ok": False,
                               "error": "request must be a JSON object",
                               "code": "bad_request", "trace_id": trace_id}
                elif op == "stats":
                    payload = {"ok": True, "op": "stats",
                               "trace_id": trace_id,
                               "stats": service.stats()}
                elif op == "metrics":
                    payload = {"ok": True, "op": "metrics",
                               "trace_id": trace_id,
                               "metrics": REGISTRY.render_prometheus()}
                elif op == "health":
                    payload = {"ok": True, "op": "health",
                               "trace_id": trace_id,
                               "health": service.health()}
                else:
                    payload = {"ok": False, "error": f"unknown op {op!r}",
                               "code": "unknown_op", "trace_id": trace_id}
                _emit(payload, trace_id, op, started)
            # Graceful shutdown: drain accepted work, then release.
            _flush(block=True)
            logger.log("serve_shutdown",
                       reason=shutdown_reason or "signal",
                       requests=int(REGISTRY.counter(
                           "scorpion_requests_total",
                           "Explain requests completed").value))
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
        for sig, previous in installed:
            signal.signal(sig, previous)
    _dump_metrics(args.metrics_file)
    return 0


def run(argv: Sequence[str] | None = None, out=sys.stdout,
        stdin=sys.stdin, log=None) -> int:
    """Entry point; returns a process exit code (``stdin`` feeds
    ``--serve`` requests, ``log`` receives ``--serve`` structured JSON
    log lines — default stderr; both exist for tests)."""
    args = build_parser().parse_args(argv)
    try:
        table = read_csv(args.csv)
        parsed = parse_query(args.query)
        query = parsed.to_query()
        if args.serve:
            return _serve(args, table, query, out, stdin, log)
        group_column = query.group_by[0]
        outliers = _coerce_keys(_split_keys(args.outliers), table, group_column)
        holdouts = _coerce_keys(_split_keys(args.holdouts), table, group_column)
        if not outliers:
            raise QueryError("--outliers must name at least one group key")
        problem = ScorpionQuery(
            table=table,
            query=query,
            outliers=outliers,
            holdouts=holdouts,
            error_vectors=+1.0 if args.direction == "high" else -1.0,
            lam=args.lam,
            c=args.c,
            ignore=_split_keys(args.ignore),
        )
        scorpion = Scorpion(algorithm=args.algorithm, top_k=args.top_k,
                            use_index=not args.no_index,
                            batch_chunk=args.batch_chunk,
                            workers=args.workers,
                            group_chunk=args.group_chunk,
                            task_timeout=args.task_timeout,
                            trace=(True if args.trace or args.profile
                                   else None),
                            backend=args.backend)
        if args.explore_c:
            exploration = CExplorer(scorpion).explore(problem)
            print(exploration.to_string(), file=out)
            _dump_metrics(args.metrics_file)
            return 0
        result = scorpion.explain(problem)
        print(f"algorithm: {result.algorithm}  "
              f"({result.elapsed:.2f}s, {result.n_candidates} candidates)",
              file=out)
        if args.profile and result.trace:
            print(render_profile(result.trace), file=out)
        _dump_metrics(args.metrics_file)
        if not result.explanations:
            print("no influential predicate found", file=out)
            return 1
        for rank, explanation in enumerate(result.explanations, start=1):
            print(f"{rank}. {explanation}", file=out)
        best = result.best
        print("updated outputs with the top predicate's tuples removed:",
              file=out)
        for key, value in sorted(best.updated_outliers.items(), key=repr):
            original = problem.results.by_key(key).value
            print(f"  outlier  {key}: {original:.4g} -> {value:.4g}", file=out)
        for key, value in sorted(best.updated_holdouts.items(), key=repr):
            original = problem.results.by_key(key).value
            print(f"  hold-out {key}: {original:.4g} -> {value:.4g}", file=out)
        return 0
    except (ScorpionError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run())
