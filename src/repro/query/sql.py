"""A mini SQL dialect for the paper's query shapes.

Supported grammar (case-insensitive keywords)::

    SELECT <agg>(<column>) [, <column> ...]
    FROM <table>
    [WHERE <column> <op> <literal> [AND ...]]
    GROUP BY <column> [, <column> ...]

with ``<op>`` one of ``= != < <= > >=`` and literals either numbers or
single-quoted strings.  This covers all three queries in the paper
(Q1, the Intel STDDEV template, and the expenses SUM query).  The parser
returns a :class:`ParsedQuery`; call :meth:`ParsedQuery.to_query` to get
an executable :class:`~repro.query.groupby.GroupByQuery`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.aggregates.registry import get_aggregate
from repro.errors import QueryError
from repro.query.groupby import GroupByQuery
from repro.table.table import Table

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<string>'(?:[^']|'')*')      |
        (?P<number>-?(?:\d+(?:\.\d+)?|\.\d+)(?:[eE][+-]?\d+)?) |
        (?P<op><=|>=|!=|<>|=|<|>)       |
        (?P<punct>[(),])                |
        (?P<word>[A-Za-z_][A-Za-z_0-9.]*)
    )""",
    re.VERBOSE,
)

_COMPARATORS: dict[str, Callable[[np.ndarray, object], np.ndarray]] = {
    "=": lambda col, lit: col == lit,
    "!=": lambda col, lit: col != lit,
    "<>": lambda col, lit: col != lit,
    "<": lambda col, lit: col < lit,
    "<=": lambda col, lit: col <= lit,
    ">": lambda col, lit: col > lit,
    ">=": lambda col, lit: col >= lit,
}


@dataclass(frozen=True)
class Condition:
    """One ``column op literal`` WHERE condition."""

    column: str
    op: str
    literal: object

    def mask(self, table: Table) -> np.ndarray:
        column = table.column(self.column)
        literal = self.literal
        if column.spec.is_continuous:
            if isinstance(literal, str):
                raise QueryError(
                    f"string literal {literal!r} compared against continuous "
                    f"column {self.column!r}"
                )
            return _COMPARATORS[self.op](column.values, float(literal))
        if self.op in ("<", "<=", ">", ">="):
            raise QueryError(
                f"ordering comparison {self.op!r} on discrete column {self.column!r}"
            )
        if self.op == "=":
            return column.membership_mask([literal])
        # SQL three-valued logic: ``x != lit`` is NULL (i.e. false in a
        # WHERE clause) when x is NULL, so missing values never match a
        # negated equality — matching DuckDB and every SQL engine.
        return ~column.membership_mask([literal]) & column.notnull_mask()


@dataclass(frozen=True)
class ParsedQuery:
    """Outcome of :func:`parse_query`."""

    aggregate_name: str
    agg_column: str
    group_by: tuple[str, ...]
    table_name: str
    conditions: tuple[Condition, ...]
    select_columns: tuple[str, ...]

    def where(self, table: Table) -> np.ndarray:
        mask = np.ones(len(table), dtype=bool)
        for condition in self.conditions:
            mask &= condition.mask(table)
        return mask

    def to_query(self) -> GroupByQuery:
        """Build the executable :class:`GroupByQuery`."""
        where = None
        if self.conditions:
            conditions = self.conditions

            def where(table: Table, conditions=conditions) -> np.ndarray:
                mask = np.ones(len(table), dtype=bool)
                for condition in conditions:
                    mask &= condition.mask(table)
                return mask

        return GroupByQuery(
            group_by=self.group_by,
            aggregate=get_aggregate(self.aggregate_name),
            agg_column=self.agg_column,
            where=where,
        )


class _Tokens:
    """Token stream with one-token lookahead."""

    def __init__(self, text: str):
        self._tokens: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                if text[pos:].strip() == "":
                    break
                raise QueryError(f"cannot tokenize SQL at: {text[pos:pos + 20]!r}")
            pos = match.end()
            for kind in ("string", "number", "op", "punct", "word"):
                value = match.group(kind)
                if value is not None:
                    self._tokens.append((kind, value))
                    break
        self._index = 0

    def peek(self) -> tuple[str, str] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of SQL input")
        self._index += 1
        return token

    def expect_word(self, *keywords: str) -> str:
        kind, value = self.next()
        if kind != "word" or (keywords and value.upper() not in keywords):
            raise QueryError(f"expected {' or '.join(keywords) or 'identifier'}, got {value!r}")
        return value

    def expect_punct(self, symbol: str) -> None:
        kind, value = self.next()
        if kind != "punct" or value != symbol:
            raise QueryError(f"expected {symbol!r}, got {value!r}")

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token is not None and token[0] == "word" and token[1].upper() == keyword

    def exhausted(self) -> bool:
        return self.peek() is None


def _parse_literal(tokens: _Tokens) -> object:
    kind, value = tokens.next()
    if kind == "string":
        return value[1:-1].replace("''", "'")
    if kind == "number":
        # Integer literals stay ``int``: discrete columns are coded by
        # exact Python values, and a SQL backend pushing the comparison
        # down must see the same typed literal numpy membership sees.
        if any(ch in value for ch in ".eE"):
            return float(value)
        return int(value)
    raise QueryError(f"expected a literal, got {value!r}")


def parse_query(sql: str) -> ParsedQuery:
    """Parse a SQL string in the supported dialect.

    >>> q = parse_query("SELECT avg(temp) FROM sensors GROUP BY time")
    >>> q.aggregate_name, q.agg_column, q.group_by
    ('avg', 'temp', ('time',))
    """
    tokens = _Tokens(sql)
    tokens.expect_word("SELECT")
    aggregate_name = tokens.expect_word()
    tokens.expect_punct("(")
    agg_column = tokens.expect_word()
    tokens.expect_punct(")")
    select_columns: list[str] = []
    while tokens.peek() == ("punct", ","):
        tokens.next()
        select_columns.append(tokens.expect_word())
    tokens.expect_word("FROM")
    table_name = tokens.expect_word()

    conditions: list[Condition] = []
    if tokens.at_keyword("WHERE"):
        tokens.next()
        while True:
            column = tokens.expect_word()
            kind, op = tokens.next()
            if kind != "op":
                raise QueryError(f"expected a comparison operator, got {op!r}")
            literal = _parse_literal(tokens)
            conditions.append(Condition(column, op, literal))
            if tokens.at_keyword("AND"):
                tokens.next()
                continue
            break

    tokens.expect_word("GROUP")
    tokens.expect_word("BY")
    group_by = [tokens.expect_word()]
    while tokens.peek() == ("punct", ","):
        tokens.next()
        group_by.append(tokens.expect_word())
    if not tokens.exhausted():
        raise QueryError(f"trailing tokens after GROUP BY: {tokens.peek()!r}")

    extra = [c for c in select_columns if c not in group_by]
    if extra:
        raise QueryError(
            f"non-aggregated SELECT columns {extra} must appear in GROUP BY"
        )
    return ParsedQuery(
        aggregate_name=aggregate_name,
        agg_column=agg_column,
        group_by=tuple(group_by),
        table_name=table_name,
        conditions=tuple(conditions),
        select_columns=tuple(select_columns),
    )
