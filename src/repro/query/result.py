"""Aggregate query results: the ``α`` tuples of the paper.

Each :class:`AggregateResult` carries its group key, its aggregate value,
and — crucially for Scorpion — the row indices of its input group
``g_αi`` inside the queried table.  A :class:`ResultSet` is the ordered
collection ``α = {α_1, …, α_n}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import QueryError


@dataclass(frozen=True)
class AggregateResult:
    """One output row ``α_i`` of a group-by aggregate query.

    Attributes
    ----------
    key:
        Group-by key as a tuple (single-attribute keys are 1-tuples).
    value:
        The aggregate result ``α_i.res``.
    indices:
        Row indices (into the queried table) of the input group ``g_αi``.
    """

    key: tuple
    value: float
    indices: np.ndarray = field(repr=False, compare=False)

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        indices.setflags(write=False)
        object.__setattr__(self, "indices", indices)

    @property
    def group_size(self) -> int:
        """``|g_αi|`` — number of input tuples behind this result."""
        return len(self.indices)

    def key_string(self) -> str:
        """Human-readable group key (drops the 1-tuple parentheses)."""
        if len(self.key) == 1:
            return str(self.key[0])
        return str(self.key)


class ResultSet:
    """Ordered aggregate results with lookup by key.

    Results are sorted by group key at construction so query output is
    deterministic regardless of input row order.
    """

    def __init__(self, results: Sequence[AggregateResult], group_by: tuple[str, ...],
                 aggregate_name: str, aggregate_column: str):
        results = list(results)
        seen: set[tuple] = set()
        for result in results:
            if result.key in seen:
                raise QueryError(f"duplicate group key {result.key!r}")
            seen.add(result.key)
        try:
            results.sort(key=lambda r: r.key)
        except TypeError:
            results.sort(key=lambda r: tuple(repr(k) for k in r.key))
        self._results = results
        self._by_key = {r.key: r for r in results}
        self.group_by = tuple(group_by)
        self.aggregate_name = aggregate_name
        self.aggregate_column = aggregate_column

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[AggregateResult]:
        return iter(self._results)

    def __getitem__(self, index: int) -> AggregateResult:
        return self._results[index]

    def by_key(self, key) -> AggregateResult:
        """Result whose group key equals ``key`` (scalars are wrapped)."""
        if not isinstance(key, tuple):
            key = (key,)
        try:
            return self._by_key[key]
        except KeyError:
            raise QueryError(f"no result with group key {key!r}") from None

    def keys(self) -> list[tuple]:
        return [r.key for r in self._results]

    def values(self) -> np.ndarray:
        return np.asarray([r.value for r in self._results], dtype=np.float64)

    def to_string(self) -> str:
        """Render like the paper's Table 2 (key column + aggregate column)."""
        header = [", ".join(self.group_by), f"{self.aggregate_name}({self.aggregate_column})"]
        rows = [[r.key_string(), f"{r.value:.6g}"] for r in self._results]
        widths = [max(len(header[j]), *(len(row[j]) for row in rows)) if rows else len(header[j])
                  for j in range(2)]
        lines = ["  ".join(header[j].rjust(widths[j]) for j in range(2))]
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(row[j].rjust(widths[j]) for j in range(2)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ResultSet({self.aggregate_name}({self.aggregate_column}) "
                f"BY {','.join(self.group_by)}, n={len(self)})")
