"""The group-by aggregate query ``Q`` (paper Section 3.1).

``GroupByQuery`` captures a select–project–group-by query with a single
aggregate: the group-by attributes ``A_gb``, the aggregate attribute
``A_agg``, and an optional row filter (the paper's queries use WHERE
clauses for date ranges and candidate names).  Executing it yields a
:class:`~repro.query.result.ResultSet` whose rows carry provenance.

The attribute partition the paper defines falls out of the query:
``A_rest = A − A_gb − A_agg`` are the attributes Scorpion builds
explanations from (minus any the user explicitly ignores).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.aggregates.base import AggregateFunction
from repro.errors import AggregateError, QueryError
from repro.query.result import AggregateResult, ResultSet
from repro.table.table import Table


class GroupByQuery:
    """``SELECT agg(agg_column), group_by FROM table [WHERE ...] GROUP BY group_by``.

    Parameters
    ----------
    group_by:
        One or more group-by attribute names (``A_gb``).
    aggregate:
        The aggregate function instance.
    agg_column:
        The aggregated attribute (``A_agg``); must be continuous and must
        not appear in ``group_by`` (the paper requires
        ``A_agg ∩ A_gb = ∅``).
    where:
        Optional row filter applied before grouping, as a function from
        :class:`Table` to a boolean mask.
    """

    def __init__(self, group_by: Sequence[str] | str, aggregate: AggregateFunction,
                 agg_column: str, where: Callable[[Table], np.ndarray] | None = None):
        if isinstance(group_by, str):
            group_by = (group_by,)
        group_by = tuple(group_by)
        if not group_by:
            raise QueryError("group-by queries need at least one group-by attribute")
        if agg_column in group_by:
            raise QueryError(
                f"aggregate attribute {agg_column!r} may not also be a group-by attribute"
            )
        if not isinstance(aggregate, AggregateFunction):
            raise QueryError(f"aggregate must be an AggregateFunction, got {aggregate!r}")
        self.group_by = group_by
        self.aggregate = aggregate
        self.agg_column = agg_column
        self.where = where

    def rest_attributes(self, table: Table, ignore: Sequence[str] = ()) -> tuple[str, ...]:
        """``A_rest``: explanation attributes for this query over ``table``."""
        excluded = set(self.group_by) | {self.agg_column} | set(ignore)
        for name in excluded:
            table.schema[name]  # validate names early
        return tuple(n for n in table.schema.names if n not in excluded)

    def filtered(self, table: Table) -> Table:
        """``table`` with the WHERE clause applied (the effective ``D``)."""
        for name in self.group_by:
            table.schema[name]
        spec = table.schema[self.agg_column]
        if not spec.is_continuous:
            raise QueryError(f"aggregate attribute {self.agg_column!r} must be continuous")
        if self.where is None:
            return table
        mask = np.asarray(self.where(table), dtype=bool)
        if mask.shape != (len(table),):
            raise QueryError("WHERE mask length does not match table length")
        return table.filter(mask)

    def execute(self, table: Table) -> ResultSet:
        """Run the query, returning results with provenance indices.

        Provenance indices refer to rows of :meth:`filtered`'s output (the
        effective input relation ``D``), which is also what Scorpion
        receives as its dataset.
        """
        data = self.filtered(table)
        agg_values = data.values(self.agg_column)
        results = []
        for key, indices in data.group_indices(self.group_by).items():
            try:
                value = self.aggregate.compute(agg_values[indices])
            except AggregateError as exc:  # pragma: no cover - empty groups cannot occur
                raise QueryError(f"aggregate failed on group {key!r}: {exc}") from exc
            results.append(AggregateResult(key=key, value=value, indices=indices))
        return ResultSet(results, self.group_by, self.aggregate.name, self.agg_column)

    def __repr__(self) -> str:
        return (f"GroupByQuery({self.aggregate.name}({self.agg_column}) "
                f"GROUP BY {', '.join(self.group_by)})")
