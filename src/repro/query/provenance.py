"""Backwards provenance for aggregate results (Figure 2's Provenance box).

For group-by queries over a single table the provenance of a result is
simply its input group — the rows sharing its group-by key — which the
query engine already records on every :class:`AggregateResult`.  This
component packages that mapping behind the interface the rest of the
system uses: resolve user-selected outlier/hold-out results to their
input groups, and take unions across selections (the paper's ``g_X``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import QueryError
from repro.query.result import AggregateResult, ResultSet
from repro.table.table import Table


class Provenance:
    """Maps labeled aggregate results back to input rows of ``D``.

    Parameters
    ----------
    table:
        The effective input relation (after any WHERE clause) the query
        ran over.
    results:
        The query's result set; its provenance indices must refer to
        ``table``.
    """

    def __init__(self, table: Table, results: ResultSet):
        self._table = table
        self._results = results
        for result in results:
            if len(result.indices) and int(np.max(result.indices)) >= len(table):
                raise QueryError(
                    f"result {result.key!r} references row "
                    f"{int(np.max(result.indices))} outside the table"
                )

    @property
    def table(self) -> Table:
        return self._table

    @property
    def results(self) -> ResultSet:
        return self._results

    def resolve(self, selection: Iterable) -> list[AggregateResult]:
        """Normalize a user selection to result objects.

        Accepts :class:`AggregateResult` instances, group keys (tuples),
        or scalar group keys.
        """
        resolved = []
        for item in selection:
            if isinstance(item, AggregateResult):
                if item.key not in {r.key for r in self._results}:
                    raise QueryError(f"result {item.key!r} is not part of this query")
                resolved.append(self._results.by_key(item.key))
            else:
                resolved.append(self._results.by_key(item))
        return resolved

    def input_group(self, result: AggregateResult) -> np.ndarray:
        """Row indices of ``g_result`` in the input table."""
        return result.indices

    def union_input_group(self, results: Sequence[AggregateResult]) -> np.ndarray:
        """``g_X = ∪_{x∈X} g_x`` as a sorted, de-duplicated index array."""
        if not results:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([r.indices for r in results]))

    def input_rows(self, result: AggregateResult) -> Table:
        """The input group materialized as a table (for display/debugging)."""
        return self._table.take(result.indices)
