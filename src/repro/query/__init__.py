"""Group-by aggregate query engine with backwards provenance.

This package implements the query side of Figure 2's architecture: users
run a select–project–group-by query over a :class:`~repro.table.Table`,
the engine produces :class:`~repro.query.result.AggregateResult` rows, and
the :mod:`~repro.query.provenance` component maps any labeled result back
to its *input group* ``g_αi`` — the rows of ``D`` that produced it.

A small SQL dialect (:func:`~repro.query.sql.parse_query`) covers the
paper's query shapes, e.g.::

    SELECT avg(temp) FROM sensors GROUP BY time
    SELECT sum(disb_amt) FROM expenses WHERE candidate = 'Obama' GROUP BY date
"""

from repro.query.groupby import GroupByQuery
from repro.query.provenance import Provenance
from repro.query.result import AggregateResult, ResultSet
from repro.query.sql import parse_query

__all__ = [
    "AggregateResult",
    "GroupByQuery",
    "Provenance",
    "ResultSet",
    "parse_query",
]
