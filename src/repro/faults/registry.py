"""Deterministic fault injection for the explain pipeline.

Production code is sprinkled with *named injection points* — one
:func:`fault_point` call at each place a real deployment can fail (a
worker scoring a shard, a shared-memory attach, an index build, a
service checkout, a serve-loop read).  When no schedule is armed the
call is a single module-global load plus a ``None`` check: the
disabled path allocates nothing and branches once, so the points can
stay in the hot paths permanently.

A *schedule* arms one or more points with an action and a hit pattern::

    SCORPION_FAULTS="worker.shard:crash@2;shm.attach:oserror@1"

Grammar, per ``;``-separated spec (``point:action[=arg][@sched][~mods]``):

========  =============================================================
token     meaning
========  =============================================================
action    ``crash`` (raise :class:`InjectedFault`), ``exit`` (kill the
          process with ``os._exit`` — a real worker death), ``oserror``,
          ``memerror``, ``hang`` (sleep ``arg`` seconds, default 60 —
          induces shard timeouts)
``=arg``  numeric action argument (``hang=0.5`` sleep seconds,
          ``exit=3`` exit status)
``@2``    fire on the 2nd hit of the point (counted per process)
``@2,5``  fire on hits 2 and 5
``@2..4`` fire on hits 2 through 4
``@2..``  fire on every hit from the 2nd on
``@p0.3`` fire each hit with probability 0.3 from a seeded RNG
          (default: every hit)
``~s42``  seed the ``@p`` RNG (default seed 0; the stream is also
          keyed by the point name, so two points never share a flip
          sequence)
``~g2``   fire only while the pool generation (the
          ``SCORPION_POOL_GENERATION`` environment variable the
          executor stamps before each pool start) is below 2 — the
          lever that lets a schedule break generation-0 pools and
          prove the restarted pool recovers
========  =============================================================

Hit counters are per-process: a forked worker inherits the parent's
armed registry and counts its own hits from the fork point, a spawned
worker re-arms from the inherited ``SCORPION_FAULTS`` environment and
counts from zero.  Both are deterministic for a fixed schedule and
fixed shard routing, which is what the chaos differential oracle needs.

Programmatic arming (tests, benchmarks)::

    with fault_injection("worker.shard:exit@1~g1"):
        result = Scorpion(workers=2).explain(problem)

``install_faults`` / ``clear_faults`` are the non-context equivalents;
:func:`fault_stats` reports per-point hit/fire counts for assertions.
"""

from __future__ import annotations

import os
import re
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "InjectedFault",
    "FaultError",
    "FaultSpec",
    "FaultRegistry",
    "fault_point",
    "faults_enabled",
    "install_faults",
    "clear_faults",
    "fault_injection",
    "fault_stats",
    "parse_faults",
    "pool_generation",
]

#: Environment variable holding the armed schedule.
ENV_VAR = "SCORPION_FAULTS"

#: Environment variable the parallel executor stamps with the pool's
#: restart generation (0 = a scorer's first pool, 1 = first restart,
#: ...) just before starting it, so worker processes inherit it and
#: ``~gN`` filters can scope faults to early generations.
GENERATION_ENV = "SCORPION_POOL_GENERATION"


class InjectedFault(RuntimeError):
    """Raised by the ``crash`` action (and never by production code):
    unmistakably synthetic, so tests can tell an injected failure from
    a real one."""


class FaultError(ValueError):
    """A ``SCORPION_FAULTS`` spec string could not be parsed."""


_ACTIONS = frozenset({"crash", "exit", "oserror", "memerror", "hang"})

_SPEC_RE = re.compile(
    r"^(?P<action>[a-z_]+)"
    r"(?:=(?P<arg>[0-9]*\.?[0-9]+))?"
    r"(?:@(?P<sched>[^~]+))?"
    r"(?:~(?P<mods>[a-z0-9.,]+))?$")


def pool_generation() -> int:
    """The current pool generation (see :data:`GENERATION_ENV`)."""
    raw = os.environ.get(GENERATION_ENV, "").strip()
    try:
        return int(raw) if raw else 0
    except ValueError:
        return 0


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``point:action@schedule~mods`` spec."""

    point: str
    action: str
    arg: float | None = None
    #: Explicit hit numbers (1-based), or None.
    hits: frozenset[int] | None = None
    #: Fire on every hit >= this number, or None.
    hits_from: int | None = None
    #: ...and (with ``hits_from``) no hit beyond this one, or None.
    hits_to: int | None = None
    #: Per-hit Bernoulli probability, or None.
    probability: float | None = None
    seed: int = 0
    #: Fire only while :func:`pool_generation` is below this, or None.
    max_generation: int | None = None

    def matches_hit(self, hit: int, rng: random.Random | None) -> bool:
        if self.max_generation is not None \
                and pool_generation() >= self.max_generation:
            return False
        if self.probability is not None:
            assert rng is not None
            return rng.random() < self.probability
        if self.hits is not None:
            return hit in self.hits
        if self.hits_from is not None:
            if hit < self.hits_from:
                return False
            return self.hits_to is None or hit <= self.hits_to
        return True  # no schedule: every hit


def _parse_schedule(sched: str | None) -> dict:
    if sched is None:
        return {}
    sched = sched.strip()
    if sched.startswith("p"):
        try:
            probability = float(sched[1:])
        except ValueError:
            raise FaultError(f"bad probability schedule {sched!r}") from None
        if not 0.0 <= probability <= 1.0:
            raise FaultError(f"probability must be in [0, 1], got {sched!r}")
        return {"probability": probability}
    if ".." in sched:
        lo_raw, _, hi_raw = sched.partition("..")
        try:
            lo = int(lo_raw)
            hi = int(hi_raw) if hi_raw else None
        except ValueError:
            raise FaultError(f"bad range schedule {sched!r}") from None
        if lo < 1 or (hi is not None and hi < lo):
            raise FaultError(f"bad range schedule {sched!r}")
        return {"hits_from": lo, "hits_to": hi}
    try:
        hits = frozenset(int(tok) for tok in sched.split(","))
    except ValueError:
        raise FaultError(f"bad hit schedule {sched!r}") from None
    if any(hit < 1 for hit in hits):
        raise FaultError(f"hit numbers are 1-based, got {sched!r}")
    return {"hits": hits}


def _parse_mods(mods: str | None) -> dict:
    out: dict = {}
    if not mods:
        return out
    for token in mods.split(","):
        token = token.strip()
        if not token:
            continue
        kind, value = token[0], token[1:]
        try:
            if kind == "s":
                out["seed"] = int(value)
            elif kind == "g":
                out["max_generation"] = int(value)
            else:
                raise ValueError
        except ValueError:
            raise FaultError(f"bad modifier {token!r} "
                             "(expected sN seed or gN generation)") from None
    return out


def parse_faults(raw: str) -> list[FaultSpec]:
    """Parse a ``SCORPION_FAULTS`` string into specs (see module doc)."""
    specs: list[FaultSpec] = []
    for part in raw.split(";"):
        part = part.strip()
        if not part:
            continue
        point, sep, rest = part.partition(":")
        point = point.strip()
        if not sep or not point:
            raise FaultError(f"fault spec {part!r} needs point:action")
        match = _SPEC_RE.match(rest.strip())
        if match is None:
            raise FaultError(f"could not parse fault spec {part!r}")
        action = match.group("action")
        if action not in _ACTIONS:
            raise FaultError(
                f"unknown fault action {action!r} "
                f"(expected one of {sorted(_ACTIONS)})")
        arg = match.group("arg")
        specs.append(FaultSpec(
            point=point,
            action=action,
            arg=float(arg) if arg is not None else None,
            **_parse_schedule(match.group("sched")),
            **_parse_mods(match.group("mods")),
        ))
    return specs


class _ArmedFault:
    """One spec plus its live per-registry state (RNG, fire count)."""

    __slots__ = ("spec", "rng", "fired")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        # Key the stream by (seed, point) so two probabilistic specs
        # never share one flip sequence.
        self.rng = (random.Random(f"{spec.seed}:{spec.point}")
                    if spec.probability is not None else None)
        self.fired = 0


class FaultRegistry:
    """The armed schedule: per-point hit counters plus the specs that
    decide, on each hit, whether to perform their action."""

    def __init__(self, specs: list[FaultSpec]):
        self._by_point: dict[str, list[_ArmedFault]] = {}
        for spec in specs:
            self._by_point.setdefault(spec.point, []).append(_ArmedFault(spec))
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def points(self) -> frozenset[str]:
        return frozenset(self._by_point)

    def hit(self, name: str) -> None:
        """Count one arrival at ``name`` and fire any matching action."""
        with self._lock:
            hit = self._hits.get(name, 0) + 1
            self._hits[name] = hit
            to_fire: _ArmedFault | None = None
            for armed in self._by_point.get(name, ()):
                if armed.spec.matches_hit(hit, armed.rng):
                    armed.fired += 1
                    to_fire = armed
                    break
        if to_fire is not None:
            self._perform(name, hit, to_fire.spec)

    @staticmethod
    def _perform(name: str, hit: int, spec: FaultSpec) -> None:
        detail = f"injected {spec.action} at {name} (hit {hit})"
        if spec.action == "crash":
            raise InjectedFault(detail)
        if spec.action == "exit":
            os._exit(int(spec.arg) if spec.arg is not None else 13)
        if spec.action == "oserror":
            raise OSError(detail)
        if spec.action == "memerror":
            raise MemoryError(detail)
        if spec.action == "hang":
            time.sleep(spec.arg if spec.arg is not None else 60.0)
            return
        raise AssertionError(f"unhandled action {spec.action!r}")

    def stats(self) -> dict[str, dict[str, int]]:
        """``{point: {"hits": n, "fired": m}}`` for every point that was
        hit or armed."""
        with self._lock:
            points = set(self._hits) | set(self._by_point)
            return {
                point: {
                    "hits": self._hits.get(point, 0),
                    "fired": sum(a.fired
                                 for a in self._by_point.get(point, ())),
                }
                for point in sorted(points)
            }


def _registry_from_env() -> FaultRegistry | None:
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return None
    return FaultRegistry(parse_faults(raw))


#: The armed registry, or None (the common case: injection disabled).
#: Parsed from ``SCORPION_FAULTS`` at import so spawned workers arm
#: themselves; forked workers inherit the live object.
_REGISTRY: FaultRegistry | None = _registry_from_env()


def fault_point(name: str) -> None:
    """Declare an injection point.  Disabled cost: one global load and
    one ``is None`` branch — safe to leave in hot paths."""
    registry = _REGISTRY
    if registry is not None:
        registry.hit(name)


def faults_enabled() -> bool:
    """Whether any schedule is armed in this process."""
    return _REGISTRY is not None


def install_faults(spec: "str | list[FaultSpec]") -> FaultRegistry:
    """Arm a schedule (replacing any armed one) and return its registry."""
    global _REGISTRY
    specs = parse_faults(spec) if isinstance(spec, str) else list(spec)
    _REGISTRY = FaultRegistry(specs)
    return _REGISTRY


def clear_faults() -> None:
    """Disarm fault injection in this process."""
    global _REGISTRY
    _REGISTRY = None


@contextmanager
def fault_injection(spec: "str | list[FaultSpec]"):
    """Arm ``spec`` for the duration of the block, then restore whatever
    was armed before (including "nothing")."""
    global _REGISTRY
    previous = _REGISTRY
    registry = install_faults(spec)
    try:
        yield registry
    finally:
        _REGISTRY = previous


def fault_stats() -> dict[str, dict[str, int]]:
    """Hit/fire counts of the armed registry (empty when disabled)."""
    registry = _REGISTRY
    return {} if registry is None else registry.stats()
