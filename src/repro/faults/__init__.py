"""Deterministic fault injection (see :mod:`repro.faults.registry`)."""

from .registry import (
    FaultError,
    FaultRegistry,
    FaultSpec,
    InjectedFault,
    clear_faults,
    fault_injection,
    fault_point,
    fault_stats,
    faults_enabled,
    install_faults,
    parse_faults,
    pool_generation,
)

__all__ = [
    "FaultError",
    "FaultRegistry",
    "FaultSpec",
    "InjectedFault",
    "clear_faults",
    "fault_injection",
    "fault_point",
    "fault_stats",
    "faults_enabled",
    "install_faults",
    "parse_faults",
    "pool_generation",
]
