"""Tree nodes: every node is a predicate box over the split attributes.

The node tracks its box as a ``{attribute: Clause}`` dict so leaves can
be emitted directly as Scorpion predicates, plus an arbitrary ``payload``
slot the owning algorithm uses (row indices for the plain regression
tree; per-group samples for the DT partitioner).
"""

from __future__ import annotations

from typing import Iterator

from repro.predicates.clause import Clause
from repro.predicates.predicate import Predicate
from repro.tree.splits import Split


class TreeNode:
    """One node of a (binary) space-partitioning tree."""

    def __init__(self, clauses: dict[str, Clause], depth: int = 0, payload=None):
        self.clauses = dict(clauses)
        self.depth = depth
        self.payload = payload
        self.split: Split | None = None
        self.left: "TreeNode | None" = None
        self.right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def predicate(self) -> Predicate:
        """The node's box as a predicate."""
        return Predicate(self.clauses.values())

    def bisect(self, split: Split, left_payload=None, right_payload=None,
               ) -> tuple["TreeNode", "TreeNode"]:
        """Attach two children produced by ``split`` and return them."""
        parent_clause = self.clauses[split.attribute]
        left_clause, right_clause = split.child_clauses(parent_clause)
        left_clauses = dict(self.clauses)
        left_clauses[split.attribute] = left_clause
        right_clauses = dict(self.clauses)
        right_clauses[split.attribute] = right_clause
        self.split = split
        self.left = TreeNode(left_clauses, self.depth + 1, left_payload)
        self.right = TreeNode(right_clauses, self.depth + 1, right_payload)
        return self.left, self.right

    def leaves(self) -> Iterator["TreeNode"]:
        """All leaves under this node, left to right."""
        if self.is_leaf:
            yield self
            return
        assert self.left is not None and self.right is not None
        yield from self.left.leaves()
        yield from self.right.leaves()

    def depth_below(self) -> int:
        """Height of the subtree rooted here (0 for a leaf)."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth_below(), self.right.depth_below())

    def count_nodes(self) -> int:
        """Number of nodes in this subtree (including this one)."""
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + self.left.count_nodes() + self.right.count_nodes()

    def __repr__(self) -> str:
        role = "leaf" if self.is_leaf else f"split[{self.split}]"
        return f"TreeNode(depth={self.depth}, {role}, box={self.predicate()})"
