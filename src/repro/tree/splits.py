"""Split primitives shared by the regression tree and the DT partitioner.

A :class:`Split` bisects a node by an (attribute, value) pair — the
paper's Section 6.1.1 "best (attribute, value) pair to bisect the node":

* continuous attribute, threshold ``v``: left is ``attr < v``, right is
  ``attr ≥ v`` (preserving the half-open ``[lo, hi)`` box discipline);
* discrete attribute, value ``v``: left is ``attr = v``, right is the
  node's remaining values (one-vs-rest bisection).

The node error metric is the standard deviation of the target values
(tuple influences, for DT); split quality is the size-weighted mean of
the child errors, to be minimized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import PartitionerError
from repro.predicates.clause import Clause, RangeClause, SetClause


@dataclass(frozen=True)
class Split:
    """A bisection of a node along one attribute."""

    attribute: str
    #: "range" (continuous threshold) or "set" (one-vs-rest value).
    kind: str
    value: object

    def left_mask(self, values: np.ndarray) -> np.ndarray:
        """Mask of node rows falling in the left child, given the node's
        values of :attr:`attribute`."""
        if self.kind == "range":
            return np.asarray(values, dtype=np.float64) < float(self.value)  # type: ignore[arg-type]
        mask = np.empty(len(values), dtype=bool)
        for i, item in enumerate(values):
            mask[i] = item == self.value
        return mask

    def child_clauses(self, parent: Clause) -> tuple[Clause, Clause]:
        """Clauses describing the two children, refining the parent clause.

        Raises :class:`PartitionerError` when the split would produce an
        empty child clause (callers must pick splits strictly inside the
        parent's bounds / value set).
        """
        if self.kind == "range":
            if not isinstance(parent, RangeClause):
                raise PartitionerError(f"range split on non-range clause {parent!r}")
            threshold = float(self.value)  # type: ignore[arg-type]
            if not parent.lo < threshold < parent.hi:
                raise PartitionerError(
                    f"threshold {threshold} not inside ({parent.lo}, {parent.hi})"
                )
            left = RangeClause(self.attribute, parent.lo, threshold, include_hi=False)
            right = RangeClause(self.attribute, threshold, parent.hi, parent.include_hi)
            return left, right
        if not isinstance(parent, SetClause):
            raise PartitionerError(f"set split on non-set clause {parent!r}")
        if self.value not in parent.values:
            raise PartitionerError(f"value {self.value!r} not in {parent!r}")
        rest = parent.values - {self.value}
        if not rest:
            raise PartitionerError(f"one-vs-rest split needs >= 2 values in {parent!r}")
        return SetClause(self.attribute, [self.value]), SetClause(self.attribute, rest)

    def __str__(self) -> str:
        symbol = "<" if self.kind == "range" else "="
        return f"{self.attribute} {symbol} {self.value}"


def candidate_splits(attribute: str, kind: str, values: Iterable,
                     max_candidates: int = 8) -> list[Split]:
    """Candidate bisections of a node along ``attribute``.

    Continuous: up to ``max_candidates`` interior quantile thresholds of
    the node's values.  Discrete: one-vs-rest on the node's distinct
    values, most frequent first, capped at ``max_candidates``.
    """
    if kind == "range":
        array = np.asarray(list(values), dtype=np.float64)
        if len(array) < 2:
            return []
        quantiles = np.linspace(0.0, 1.0, max_candidates + 2)[1:-1]
        thresholds = np.unique(np.quantile(array, quantiles))
        lo, hi = float(np.min(array)), float(np.max(array))
        return [Split(attribute, "range", float(t))
                for t in thresholds if lo < t < hi]
    if kind == "set":
        counts: dict = {}
        for item in values:
            counts[item] = counts.get(item, 0) + 1
        if len(counts) < 2:
            return []
        ordered = sorted(counts, key=lambda v: (-counts[v], repr(v)))
        return [Split(attribute, "set", v) for v in ordered[:max_candidates]]
    raise PartitionerError(f"unknown split kind {kind!r}")


def node_error(targets: np.ndarray) -> float:
    """Error metric of a node: standard deviation of its targets
    (0 for empty or single-row nodes)."""
    targets = np.asarray(targets, dtype=np.float64)
    finite = targets[np.isfinite(targets)]
    if len(finite) < 2:
        return 0.0
    return float(np.std(finite))


def split_error(targets: np.ndarray, left_mask: np.ndarray) -> float:
    """Size-weighted mean child error for a candidate bisection."""
    targets = np.asarray(targets, dtype=np.float64)
    left = targets[left_mask]
    right = targets[~left_mask]
    total = len(targets)
    if total == 0:
        return 0.0
    return (len(left) * node_error(left) + len(right) * node_error(right)) / total


def range_split_errors(values: np.ndarray, targets: np.ndarray,
                       thresholds: np.ndarray,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Size-weighted child errors for *all* thresholds at once.

    Sorting once and using prefix sums of the targets makes evaluating
    ``k`` candidate thresholds O(n log n + k) instead of O(n·k) — the
    DT partitioner's split search calls this per (node, attribute,
    group).

    Returns ``(errors, n_left, n_right)`` arrays aligned with
    ``thresholds``; the left child is ``value < threshold``.
    """
    values = np.asarray(values, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    n = len(values)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    sorted_targets = targets[order]
    prefix = np.concatenate([[0.0], np.cumsum(sorted_targets)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(sorted_targets * sorted_targets)])
    n_left = np.searchsorted(sorted_values, thresholds, side="left")
    n_right = n - n_left

    def _segment_std(total: np.ndarray, total_sq: np.ndarray,
                     count: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            mean = total / count
            variance = np.maximum(total_sq / count - mean * mean, 0.0)
            std = np.sqrt(variance)
        return np.where(count >= 2, std, 0.0)

    left_std = _segment_std(prefix[n_left], prefix_sq[n_left], n_left)
    right_std = _segment_std(prefix[n] - prefix[n_left],
                             prefix_sq[n] - prefix_sq[n_left], n_right)
    if n == 0:
        errors = np.zeros(len(thresholds))
    else:
        errors = (n_left * left_std + n_right * right_std) / n
    return errors, n_left, n_right


def best_split(splits: Sequence[Split], values_by_split: Sequence[np.ndarray],
               targets: np.ndarray,
               min_child_size: int = 1) -> tuple[Split, float] | None:
    """The candidate split minimizing :func:`split_error`.

    ``values_by_split[i]`` holds the node's values of
    ``splits[i].attribute``.  Splits leaving a child with fewer than
    ``min_child_size`` rows are skipped.  Returns None when no split is
    admissible.
    """
    best: tuple[Split, float] | None = None
    for split, values in zip(splits, values_by_split):
        left = split.left_mask(values)
        n_left = int(np.count_nonzero(left))
        if n_left < min_child_size or len(values) - n_left < min_child_size:
            continue
        error = split_error(targets, left)
        if best is None or error < best[1]:
            best = (split, error)
    return best
