"""A standalone CART-style regression tree over a :class:`Table`.

This is the classic algorithm the DT partitioner extends (paper
Section 6.1.1): nodes recursively bisect on the (attribute, value) pair
minimizing the size-weighted child standard deviation, stopping on an
error threshold, a minimum node size, or a maximum depth.  Leaves
predict the mean target of their rows.

It doubles as a generally useful substrate — e.g. the PerfXplain-style
baseline of building a decision tree over labeled tuples — and gives the
split primitives an independently tested consumer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionerError
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.table.table import Table
from repro.tree.node import TreeNode
from repro.tree.splits import best_split, candidate_splits, node_error


class RegressionTree:
    """Fit a piecewise-constant model of ``target`` over ``attributes``.

    Parameters
    ----------
    attributes:
        Feature column names (continuous and discrete both supported).
    min_samples:
        Do not split nodes with fewer rows than this.
    max_depth:
        Hard depth cap.
    error_threshold:
        Stop splitting once the node's target standard deviation is at or
        below this.
    max_split_candidates:
        Candidate thresholds/values evaluated per attribute per node.
    """

    def __init__(self, attributes: list[str], min_samples: int = 10,
                 max_depth: int = 12, error_threshold: float = 0.0,
                 max_split_candidates: int = 8):
        if not attributes:
            raise PartitionerError("the tree needs at least one attribute")
        if min_samples < 2:
            raise PartitionerError(f"min_samples must be >= 2, got {min_samples}")
        self.attributes = list(attributes)
        self.min_samples = min_samples
        self.max_depth = max_depth
        self.error_threshold = error_threshold
        self.max_split_candidates = max_split_candidates
        self.root: TreeNode | None = None
        self._table: Table | None = None
        self._leaf_means: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, table: Table, target: np.ndarray) -> "RegressionTree":
        """Grow the tree on ``table``'s rows with the given targets."""
        target = np.asarray(target, dtype=np.float64)
        if len(target) != len(table):
            raise PartitionerError(
                f"target has {len(target)} rows, table has {len(table)}"
            )
        if len(table) == 0:
            raise PartitionerError("cannot fit a tree on an empty table")
        self._table = table
        clauses = {}
        for name in self.attributes:
            spec = table.schema[name]
            column = table.column(name)
            if spec.is_continuous:
                clauses[name] = RangeClause(name, column.min(), column.max())
            else:
                clauses[name] = SetClause(name, column.distinct())
        self.root = TreeNode(clauses, depth=0,
                             payload=np.arange(len(table), dtype=np.int64))
        self._grow(self.root, target)
        self._leaf_means = {
            id(leaf): float(np.mean(target[leaf.payload]))
            for leaf in self.root.leaves()
        }
        return self

    def _grow(self, node: TreeNode, target: np.ndarray) -> None:
        rows: np.ndarray = node.payload
        node_targets = target[rows]
        if (len(rows) < self.min_samples
                or node.depth >= self.max_depth
                or node_error(node_targets) <= self.error_threshold):
            return
        assert self._table is not None
        splits = []
        values_by_split = []
        for name in self.attributes:
            spec = self._table.schema[name]
            kind = "range" if spec.is_continuous else "set"
            values = self._table.values(name)[rows]
            for split in candidate_splits(name, kind, values, self.max_split_candidates):
                splits.append(split)
                values_by_split.append(values)
        choice = best_split(splits, values_by_split, node_targets,
                            min_child_size=max(self.min_samples // 2, 1))
        if choice is None:
            return
        split, error = choice
        if error >= node_error(node_targets):
            return  # no variance reduction; splitting further is noise
        attr_values = self._table.values(split.attribute)[rows]
        left_mask = split.left_mask(attr_values)
        left, right = node.bisect(split, rows[left_mask], rows[~left_mask])
        self._grow(left, target)
        self._grow(right, target)

    # ------------------------------------------------------------------
    # Inspection / prediction
    # ------------------------------------------------------------------
    def leaves(self) -> list[TreeNode]:
        if self.root is None:
            raise PartitionerError("tree is not fitted")
        return list(self.root.leaves())

    def leaf_predicates(self) -> list[Predicate]:
        """The fitted space partitioning as predicates."""
        return [leaf.predicate() for leaf in self.leaves()]

    def predict(self, table: Table) -> np.ndarray:
        """Leaf-mean prediction for each row of ``table``."""
        if self.root is None:
            raise PartitionerError("tree is not fitted")
        out = np.full(len(table), np.nan, dtype=np.float64)
        for leaf in self.root.leaves():
            mask = leaf.predicate().mask(table)
            out[mask] = self._leaf_means[id(leaf)]
        return out

    def depth(self) -> int:
        if self.root is None:
            raise PartitionerError("tree is not fitted")
        return self.root.depth_below()
