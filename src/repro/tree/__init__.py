"""Regression-tree substrate (paper Section 6.1 builds on CART [2]).

:mod:`~repro.tree.splits` provides the split primitives — candidate
bisections of a node by (attribute, value) pairs and the
variance-reduction metric; :mod:`~repro.tree.node` the tree nodes (each
node *is* a predicate box); :mod:`~repro.tree.regression_tree` a
standalone regression tree over a :class:`~repro.table.Table`, usable
independently of Scorpion.

The DT partitioner reuses the split primitives and node structure but
runs its own synchronized multi-group recursion with the influence-aware
stopping threshold (Sections 6.1.1–6.1.3).
"""

from repro.tree.node import TreeNode
from repro.tree.regression_tree import RegressionTree
from repro.tree.splits import (
    Split,
    best_split,
    candidate_splits,
    node_error,
    range_split_errors,
)

__all__ = [
    "RegressionTree",
    "Split",
    "TreeNode",
    "best_split",
    "candidate_splits",
    "node_error",
    "range_split_errors",
]
