"""Schema objects: column kinds, column specs, and table schemas.

Scorpion's predicate language distinguishes exactly two attribute kinds
(paper Section 3.1): *continuous* attributes receive range clauses and
*discrete* attributes receive set-containment clauses.  The schema layer
records that distinction once so every downstream component (predicate
enumeration, the DT split search, the MC grid) agrees on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError


class ColumnKind(enum.Enum):
    """The two attribute kinds Scorpion's predicate language knows about."""

    CONTINUOUS = "continuous"
    DISCRETE = "discrete"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ColumnSpec:
    """Name and kind of one column.

    Parameters
    ----------
    name:
        Column name; must be a non-empty identifier-like string.
    kind:
        Whether the column holds continuous (float) or discrete
        (categorical) values.
    """

    name: str
    kind: ColumnKind

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"column name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.kind, ColumnKind):
            raise SchemaError(f"column kind must be a ColumnKind, got {self.kind!r}")

    @property
    def is_continuous(self) -> bool:
        return self.kind is ColumnKind.CONTINUOUS

    @property
    def is_discrete(self) -> bool:
        return self.kind is ColumnKind.DISCRETE


class Schema:
    """An ordered collection of uniquely named :class:`ColumnSpec` objects.

    The schema is immutable; deriving a new schema (e.g. for a projection)
    creates a new object.

    >>> s = Schema([ColumnSpec("temp", ColumnKind.CONTINUOUS),
    ...             ColumnSpec("sensorid", ColumnKind.DISCRETE)])
    >>> s["temp"].is_continuous
    True
    >>> s.names
    ('temp', 'sensorid')
    """

    def __init__(self, specs: Iterable[ColumnSpec]):
        specs = tuple(specs)
        seen: set[str] = set()
        for spec in specs:
            if not isinstance(spec, ColumnSpec):
                raise SchemaError(f"expected ColumnSpec, got {spec!r}")
            if spec.name in seen:
                raise SchemaError(f"duplicate column name {spec.name!r}")
            seen.add(spec.name)
        self._specs = specs
        self._by_name = {spec.name: spec for spec in specs}

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(spec.name for spec in self._specs)

    @property
    def specs(self) -> tuple[ColumnSpec, ...]:
        return self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {sorted(self._by_name)}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:
        cols = ", ".join(f"{s.name}:{s.kind.value[:4]}" for s in self._specs)
        return f"Schema({cols})"

    def kind_of(self, name: str) -> ColumnKind:
        """Return the :class:`ColumnKind` of column ``name``."""
        return self[name].kind

    def continuous_names(self) -> tuple[str, ...]:
        """Names of all continuous columns, in order."""
        return tuple(s.name for s in self._specs if s.is_continuous)

    def discrete_names(self) -> tuple[str, ...]:
        """Names of all discrete columns, in order."""
        return tuple(s.name for s in self._specs if s.is_discrete)

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names``, in the given order."""
        return Schema(self[name] for name in names)

    def drop(self, names: Iterable[str]) -> "Schema":
        """Schema with the given column names removed."""
        dropped = set(names)
        for name in dropped:
            self[name]  # raise SchemaError on unknown names
        return Schema(s for s in self._specs if s.name not in dropped)
