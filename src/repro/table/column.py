"""Typed columns backed by numpy arrays.

Continuous columns store ``float64``; discrete columns store arbitrary
Python values via a numpy ``object`` array (small-cardinality categorical
data — sensor ids, state codes, recipient names).  Columns expose exactly
the vectorized operations the predicate evaluator needs: range masks for
continuous data and membership masks for discrete data.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.table.schema import ColumnKind, ColumnSpec


class Column:
    """One named, typed column of values.

    Instances are treated as immutable: all deriving operations (``take``,
    ``filter``) return new columns, and the backing array is flagged
    read-only to catch accidental mutation.

    >>> col = Column(ColumnSpec("temp", ColumnKind.CONTINUOUS), [34, 35, 100])
    >>> col.range_mask(30, 40).tolist()
    [True, True, False]
    """

    def __init__(self, spec: ColumnSpec, values: Iterable):
        self._spec = spec
        if spec.is_continuous:
            array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                               dtype=np.float64)
            if array.ndim != 1:
                raise SchemaError(f"column {spec.name!r} values must be one-dimensional")
        else:
            if isinstance(values, np.ndarray) and values.dtype == object:
                array = values.copy()
            else:
                listed = list(values)
                array = np.empty(len(listed), dtype=object)
                for i, value in enumerate(listed):
                    array[i] = value
            if array.ndim != 1:
                raise SchemaError(f"column {spec.name!r} values must be one-dimensional")
        array.setflags(write=False)
        self._values = array
        # Lazy factorization for fast membership masks on discrete columns.
        self._codes: np.ndarray | None = None
        self._code_of: dict | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ColumnSpec:
        return self._spec

    @property
    def name(self) -> str:
        return self._spec.name

    @property
    def kind(self) -> ColumnKind:
        return self._spec.kind

    @property
    def values(self) -> np.ndarray:
        """The read-only backing array."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator:
        return iter(self._values)

    def __getitem__(self, index: int):
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self._spec != other._spec or len(self) != len(other):
            return False
        if self._spec.is_continuous:
            return bool(np.array_equal(self._values, other._values, equal_nan=True))
        return bool(np.array_equal(self._values, other._values))

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"Column({self.name!r}, {self.kind.value}, [{preview}{suffix}], n={len(self)})"

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def take(self, indices: Sequence[int] | np.ndarray) -> "Column":
        """New column with rows selected by integer ``indices``."""
        return Column(self._spec, self._values[np.asarray(indices)])

    def filter(self, mask: np.ndarray) -> "Column":
        """New column with rows where boolean ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self._values.shape:
            raise SchemaError(
                f"mask length {mask.shape} does not match column length {self._values.shape}"
            )
        return Column(self._spec, self._values[mask])

    # ------------------------------------------------------------------
    # Predicate support
    # ------------------------------------------------------------------
    def range_mask(self, lo: float, hi: float, include_hi: bool = True) -> np.ndarray:
        """Boolean mask of rows with ``lo <= value <= hi`` (or ``< hi``).

        Only valid for continuous columns; range clauses over discrete
        columns are a schema error by construction (paper Section 3.1).
        """
        if not self._spec.is_continuous:
            raise SchemaError(f"range mask on discrete column {self.name!r}")
        if include_hi:
            return (self._values >= lo) & (self._values <= hi)
        return (self._values >= lo) & (self._values < hi)

    def _factorize(self) -> None:
        """Build the integer-code view used for fast membership masks."""
        code_of: dict = {}
        codes = np.empty(len(self._values), dtype=np.int64)
        for i, value in enumerate(self._values):
            code = code_of.get(value)
            if code is None:
                code = len(code_of)
                code_of[value] = code
            codes[i] = code
        codes.setflags(write=False)
        self._codes = codes
        self._code_of = code_of

    def notnull_mask(self) -> np.ndarray:
        """Boolean mask of rows holding a non-null value.

        ``None`` and float NaN count as null (a discrete object column
        loaded from messy data can hold either).  Continuous columns
        treat NaN as null, matching SQL semantics.
        """
        if self._spec.is_continuous:
            return ~np.isnan(self._values)
        mask = np.empty(len(self._values), dtype=bool)
        for i, value in enumerate(self._values):
            mask[i] = not (
                value is None
                or (isinstance(value, float) and value != value)
            )
        return mask

    def membership_mask(self, allowed: Iterable) -> np.ndarray:
        """Boolean mask of rows whose value is in ``allowed`` (discrete only).

        The first call factorizes the column into integer codes; subsequent
        calls are a vectorized ``np.isin`` over those codes, which matters
        because the partitioning algorithms evaluate thousands of
        set-containment clauses against the same column.
        """
        if not self._spec.is_discrete:
            raise SchemaError(f"membership mask on continuous column {self.name!r}")
        if self._codes is None:
            self._factorize()
        assert self._code_of is not None and self._codes is not None
        allowed_codes = [self._code_of[v] for v in allowed if v in self._code_of]
        if not allowed_codes:
            return np.zeros(len(self._values), dtype=bool)
        return np.isin(self._codes, np.asarray(allowed_codes, dtype=np.int64))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def distinct(self) -> list:
        """Sorted distinct values (lexicographic fallback for mixed types)."""
        if self._spec.is_continuous:
            return sorted(set(float(v) for v in self._values))
        try:
            return sorted(set(self._values))
        except TypeError:
            return sorted(set(self._values), key=repr)

    def min(self) -> float:
        if not self._spec.is_continuous:
            raise SchemaError(f"min() on discrete column {self.name!r}")
        if len(self._values) == 0:
            raise SchemaError(f"min() on empty column {self.name!r}")
        return float(np.min(self._values))

    def max(self) -> float:
        if not self._spec.is_continuous:
            raise SchemaError(f"max() on discrete column {self.name!r}")
        if len(self._values) == 0:
            raise SchemaError(f"max() on empty column {self.name!r}")
        return float(np.max(self._values))

    def cardinality(self) -> int:
        """Number of distinct values."""
        return len(set(self._values))
