"""The :class:`Table` relation — Scorpion's single input dataset ``D``.

A table is an ordered set of equal-length :class:`~repro.table.column.Column`
objects.  It supports exactly the relational operations the paper's
pipeline needs:

* row selection by boolean mask or integer indices (predicate application,
  ``p(D)``),
* column projection (``π_Aagg g_αi``),
* group-by partitioning with provenance (Section 4.1's Provenance
  component builds on :meth:`Table.group_indices`),
* construction from rows or columns, and pretty-printing for examples.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.table.column import Column
from repro.table.schema import ColumnKind, ColumnSpec, Schema


class Table:
    """An immutable-by-convention columnar relation.

    >>> t = Table.from_rows(
    ...     Schema([ColumnSpec("temp", ColumnKind.CONTINUOUS),
    ...             ColumnSpec("sensorid", ColumnKind.DISCRETE)]),
    ...     [(34.0, 1), (35.0, 2), (100.0, 3)])
    >>> len(t)
    3
    >>> t.column("temp").max()
    100.0
    """

    def __init__(self, columns: Sequence[Column]):
        columns = list(columns)
        if not columns:
            raise SchemaError("a table needs at least one column")
        length = len(columns[0])
        for col in columns:
            if len(col) != length:
                raise SchemaError(
                    f"column {col.name!r} has {len(col)} rows, expected {length}"
                )
        self._schema = Schema(col.spec for col in columns)
        self._columns = {col.name: col for col in columns}
        self._length = length

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Table":
        """Build a table from an iterable of row tuples matching ``schema``."""
        rows = list(rows)
        n_cols = len(schema)
        for row in rows:
            if len(row) != n_cols:
                raise SchemaError(
                    f"row {row!r} has {len(row)} fields, schema has {n_cols}"
                )
        columns = []
        for i, spec in enumerate(schema):
            columns.append(Column(spec, [row[i] for row in rows]))
        return cls(columns)

    @classmethod
    def from_columns(cls, schema: Schema, data: Mapping[str, Iterable]) -> "Table":
        """Build a table from a mapping of column name to values."""
        missing = [name for name in schema.names if name not in data]
        if missing:
            raise SchemaError(f"missing data for columns {missing}")
        extra = [name for name in data if name not in schema]
        if extra:
            raise SchemaError(f"data for unknown columns {extra}")
        return cls([Column(schema[name], data[name]) for name in schema.names])

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        return cls([Column(spec, []) for spec in schema])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return self._length

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def num_columns(self) -> int:
        return len(self._schema)

    def column(self, name: str) -> Column:
        """The column named ``name`` (raises :class:`SchemaError` if absent)."""
        self._schema[name]  # raise with a helpful message on unknown names
        return self._columns[name]

    def values(self, name: str) -> np.ndarray:
        """Shorthand for ``table.column(name).values``."""
        return self.column(name).values

    def row(self, index: int) -> dict:
        """Row ``index`` as a ``{column: value}`` dict."""
        if not (-self._length <= index < self._length):
            raise IndexError(f"row {index} out of range for table of {self._length} rows")
        return {name: self._columns[name][index] for name in self._schema.names}

    def iter_rows(self) -> Iterator[dict]:
        """Iterate over rows as dicts (for small tables / display only)."""
        for i in range(self._length):
            yield self.row(i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or self._length != other._length:
            return False
        return all(self._columns[n] == other._columns[n] for n in self._schema.names)

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, rows={self._length})"

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "Table":
        """New table with rows where boolean ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._length,):
            raise SchemaError(
                f"mask of shape {mask.shape} does not match table of {self._length} rows"
            )
        return Table([self._columns[n].filter(mask) for n in self._schema.names])

    def take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """New table with rows selected by integer ``indices`` (in order)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table([self._columns[n].take(indices) for n in self._schema.names])

    def project(self, names: Iterable[str]) -> "Table":
        """New table with only the named columns, in the given order."""
        names = list(names)
        return Table([self.column(n) for n in names])

    def concat(self, other: "Table") -> "Table":
        """Rows of ``self`` followed by rows of ``other`` (schemas must match)."""
        if self._schema != other._schema:
            raise SchemaError("cannot concat tables with different schemas")
        columns = []
        for name in self._schema.names:
            spec = self._schema[name]
            merged = np.concatenate(
                [self._columns[name].values, other._columns[name].values]
            )
            columns.append(Column(spec, merged))
        return Table(columns)

    # ------------------------------------------------------------------
    # Grouping
    # ------------------------------------------------------------------
    def group_indices(self, by: Sequence[str] | str) -> dict[tuple, np.ndarray]:
        """Partition row indices by the values of the ``by`` columns.

        Returns a dict mapping each distinct group key (always a tuple,
        even for a single group-by column) to the sorted array of row
        indices belonging to that group.  This is the provenance primitive:
        the input group ``g_αi`` of an aggregate result is exactly one of
        these index arrays.
        """
        if isinstance(by, str):
            by = [by]
        by = list(by)
        if not by:
            raise SchemaError("group_indices requires at least one column")
        key_columns = [self.column(name).values for name in by]
        groups: dict[tuple, list[int]] = {}
        for i in range(self._length):
            key = tuple(col[i] for col in key_columns)
            groups.setdefault(key, []).append(i)
        return {
            key: np.asarray(indices, dtype=np.int64)
            for key, indices in groups.items()
        }

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def to_string(self, max_rows: int = 20) -> str:
        """Fixed-width rendering of up to ``max_rows`` rows."""
        names = self._schema.names
        shown = min(self._length, max_rows)
        rendered: list[list[str]] = [list(names)]
        for i in range(shown):
            row = self.row(i)
            rendered.append([_format_cell(row[n]) for n in names])
        widths = [max(len(r[j]) for r in rendered) for j in range(len(names))]
        lines = []
        for r_index, r in enumerate(rendered):
            lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(r)))
            if r_index == 0:
                lines.append("  ".join("-" * w for w in widths))
        if shown < self._length:
            lines.append(f"... ({self._length - shown} more rows)")
        return "\n".join(lines)


def _format_cell(value) -> str:
    if isinstance(value, (float, np.floating)):
        return f"{value:.4g}"
    return str(value)
