"""CSV import/export for :class:`~repro.table.table.Table`.

The paper's datasets (Intel sensor trace, FEC expenses) ship as CSV files;
these helpers let users load their own data into the reproduction.  The
reader either receives an explicit schema or infers one: a column whose
every non-empty cell parses as a float is continuous, anything else is
discrete.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.errors import SchemaError
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table


def _parses_as_float(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def infer_schema(header: list[str], rows: list[list[str]]) -> Schema:
    """Infer a schema from string cells: all-float columns are continuous."""
    specs = []
    for j, name in enumerate(header):
        cells = [row[j] for row in rows if row[j] != ""]
        continuous = bool(cells) and all(_parses_as_float(cell) for cell in cells)
        kind = ColumnKind.CONTINUOUS if continuous else ColumnKind.DISCRETE
        specs.append(ColumnSpec(name, kind))
    return Schema(specs)


def read_csv(path: str | Path, schema: Schema | None = None) -> Table:
    """Load a CSV file (with header row) into a :class:`Table`.

    Parameters
    ----------
    path:
        File to read.
    schema:
        Optional explicit schema.  Its column names must match the CSV
        header exactly (order included).  When omitted, the schema is
        inferred from the data.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; expected a header row") from None
        rows = [row for row in reader if row]
    for row in rows:
        if len(row) != len(header):
            raise SchemaError(
                f"{path}: row {row!r} has {len(row)} cells, header has {len(header)}"
            )
    if schema is None:
        schema = infer_schema(header, rows)
    elif list(schema.names) != header:
        raise SchemaError(
            f"{path}: header {header} does not match schema columns {list(schema.names)}"
        )
    converted: list[list] = []
    for row in rows:
        out = []
        for spec, cell in zip(schema, row):
            if spec.is_continuous:
                try:
                    out.append(float(cell))
                except ValueError:
                    raise SchemaError(
                        f"{path}: cell {cell!r} in continuous column {spec.name!r}"
                    ) from None
            else:
                out.append(cell)
        converted.append(out)
    return Table.from_rows(schema, converted)


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV with a header row."""
    path = Path(path)
    names: Iterable[str] = table.schema.names
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(names))
        for row in table.iter_rows():
            writer.writerow([row[name] for name in table.schema.names])
