"""Columnar in-memory relational substrate.

Scorpion operates over a single relation ``D`` (joins are modelled by
materializing the join result, per the paper's Section 3.1).  This package
provides that relation: a typed, immutable-by-convention columnar table
backed by numpy arrays, with the vectorized mask/filter operations the
influence scorer and the partitioning algorithms rely on.

The public surface:

* :class:`~repro.table.schema.ColumnKind` — ``CONTINUOUS`` or ``DISCRETE``.
* :class:`~repro.table.schema.ColumnSpec` / :class:`~repro.table.schema.Schema`
  — column typing and attribute-role bookkeeping.
* :class:`~repro.table.column.Column` — one typed column.
* :class:`~repro.table.table.Table` — the relation.
* :func:`~repro.table.io.read_csv` / :func:`~repro.table.io.write_csv`.
"""

from repro.table.column import Column
from repro.table.io import read_csv, write_csv
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table

__all__ = [
    "Column",
    "ColumnKind",
    "ColumnSpec",
    "Schema",
    "Table",
    "read_csv",
    "write_csv",
]
