"""The DuckDB pushdown backend.

Pushes the repetitive, data-parallel parts of Scorpion's build and SQL
layers into DuckDB SQL over registered views of the underlying numpy
arrays:

* **per-group aggregate state totals** — one ``GROUP BY gid`` over the
  stacked state components (``SUM``/``AVG``/``COUNT``/``STDDEV`` states
  are plain ``sum(s_j)`` columns);
* **prefix/bucket index pre-aggregations** — the prefix tier's cumsum
  as a running window sum, the discrete tier's per-bucket sums as a
  ``GROUP BY code``;
* **predicate mask counts and whole parsed queries** — the mini-SQL
  layer's WHERE/GROUP BY evaluated engine-side;
* **cube pre-aggregations** — ``GROUP BY a1, a2, ...`` state cells.

Exactness gate (the bit-for-bit contract): scorer/index pushdowns are
taken only when the states are *exactly summable*
(:func:`repro.index.prefix.exactly_summable`) — integer-valued
components whose partial sums are exact in any order, so the engine's
summation order cannot differ from numpy's.  Everything else is
answered by the embedded :class:`NumpyBackend` reference path and
counted as a fallback; the only tolerance in the contract is
:meth:`execute_query` on non-exact float data (see
:meth:`ExecutionBackend.execute_query`).

``import duckdb`` happens lazily in the constructor; on machines
without the package :func:`repro.backend.resolve_backend` degrades to
the numpy backend with a warning.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend import sqlgen
from repro.backend.base import ExecutionBackend, stack_group_states
from repro.backend.numpy_backend import NumpyBackend
from repro.errors import BackendError, BackendUnavailable
from repro.index.prefix import exactly_summable


class DuckDBBackend(ExecutionBackend):
    """DuckDB-SQL execution with numpy fallback for ineligible shapes."""

    name = "duckdb"

    def __init__(self) -> None:
        super().__init__()
        try:
            import duckdb
        except ImportError as exc:
            raise BackendUnavailable(
                "the duckdb package is not installed; "
                "install duckdb or use --backend numpy") from exc
        self._duckdb = duckdb
        self._con = duckdb.connect()
        self._reference = NumpyBackend()
        self._seq = 0

    def close(self) -> None:
        """Close the embedded DuckDB connection."""
        self._con.close()

    # ------------------------------------------------------------------
    # Relation plumbing
    # ------------------------------------------------------------------
    def _relation(self, columns: dict[str, object]) -> str:
        """Materialize named columns as a temporary DuckDB relation.

        Tries the zero-copy replacement-scan registration of a dict of
        numpy arrays first; falls back to ``CREATE TABLE`` + batched
        inserts for duckdb builds without that scan.  Callers must pass
        the name to :meth:`_drop` when done.
        """
        self._seq += 1
        name = f"_scorpion_{self._seq}"
        arrays = {key: np.asarray(value) if not isinstance(value, list)
                  else value
                  for key, value in columns.items()}
        try:
            self._con.register(name, arrays)
            return name
        except Exception:
            pass
        decls = []
        for key, value in columns.items():
            if isinstance(value, np.ndarray) and value.dtype.kind == "f":
                decls.append(f"{sqlgen.quote_identifier(key)} DOUBLE")
            elif isinstance(value, np.ndarray) and value.dtype.kind == "i":
                decls.append(f"{sqlgen.quote_identifier(key)} BIGINT")
            elif value and isinstance(
                    next((v for v in value if v is not None), ""), int):
                decls.append(f"{sqlgen.quote_identifier(key)} BIGINT")
            elif value and isinstance(
                    next((v for v in value if v is not None), ""), float):
                decls.append(f"{sqlgen.quote_identifier(key)} DOUBLE")
            else:
                decls.append(f"{sqlgen.quote_identifier(key)} VARCHAR")
        quoted = sqlgen.quote_identifier(name)
        self._con.execute(f"CREATE TABLE {quoted} ({', '.join(decls)})")
        rows = list(zip(*(list(value) for value in columns.values())))
        if rows:
            holes = ", ".join("?" for _ in columns)
            self._con.executemany(
                f"INSERT INTO {quoted} VALUES ({holes})", rows)
        return name

    def _drop(self, name: str) -> None:
        quoted = sqlgen.quote_identifier(name)
        try:
            self._con.unregister(name)
        except Exception:
            pass
        try:
            self._con.execute(f"DROP TABLE IF EXISTS {quoted}")
        except Exception:  # pragma: no cover - defensive cleanup
            pass

    @staticmethod
    def _discrete_column_values(column) -> list | None:
        """A discrete object column as a typed Python list DuckDB can
        ingest, or ``None`` when the value mix has no single SQL type
        (mixed int/str columns would change comparison semantics)."""
        out = []
        kinds = set()
        for value in column.values:
            if value is None or (isinstance(value, float)
                                 and value != value):
                out.append(None)
                continue
            if isinstance(value, bool):
                return None
            if isinstance(value, (int, np.integer)):
                kinds.add(int)
                out.append(int(value))
            elif isinstance(value, (float, np.floating)):
                kinds.add(float)
                out.append(float(value))
            elif isinstance(value, str):
                kinds.add(str)
                out.append(value)
            else:
                return None
        if len(kinds) > 1:
            return None
        return out

    def _table_relation(self, table, columns: Sequence[str]) -> str:
        """Register the named columns of a Table, raising
        :class:`BackendError` for columns SQL cannot faithfully hold."""
        data: dict[str, object] = {}
        for attr in dict.fromkeys(columns):
            column = table.column(attr)
            if column.spec.is_continuous:
                values = np.asarray(column.values, dtype=np.float64)
                if np.isnan(values).any():
                    # DuckDB orders NaN above every value and makes
                    # NaN = NaN true — not numpy's comparison
                    # semantics, so NaN columns are not pushable.
                    raise BackendError(
                        f"continuous column {attr!r} holds NaN")
                data[attr] = values
            else:
                listed = self._discrete_column_values(column)
                if listed is None:
                    raise BackendError(
                        f"discrete column {attr!r} mixes SQL types")
                data[attr] = listed
        return self._relation(data)

    @staticmethod
    def _state_columns(k: int) -> list[str]:
        return [f"s{j}" for j in range(k)]

    # ------------------------------------------------------------------
    # Scorer seam
    # ------------------------------------------------------------------
    def group_total_states(
        self, group_states: Sequence[np.ndarray | None],
    ) -> list[np.ndarray | None]:
        totals: list[np.ndarray | None] = [None] * len(group_states)
        pushable = []
        for i, states in enumerate(group_states):
            if states is None:
                continue
            if len(states) and exactly_summable(states):
                pushable.append(i)
            else:
                totals[i] = states.sum(axis=0)
                if len(states):
                    self.stats.fallbacks += 1
        if not pushable:
            return totals
        try:
            wanted = set(pushable)
            ids, stacked = stack_group_states(
                [group_states[i] if i in wanted else None
                 for i in range(len(group_states))])
            assert stacked is not None
            k = stacked.shape[1]
            state_cols = self._state_columns(k)
            gid = np.repeat(np.asarray(ids, dtype=np.int64),
                            [len(group_states[i]) for i in ids])
            columns: dict[str, object] = {"gid": gid}
            for j, col in enumerate(state_cols):
                columns[col] = stacked[:, j]
            relation = self._relation(columns)
            try:
                rows = self._con.execute(
                    sqlgen.group_states_sql(relation, "gid", state_cols),
                ).fetchall()
            finally:
                self._drop(relation)
            for row in rows:
                totals[int(row[0])] = np.asarray(row[1:], dtype=np.float64)
            self.stats.routed_states += len(ids)
        except Exception:
            # Graceful degradation is part of the backend contract: an
            # engine hiccup must never fail the explain, only lose the
            # pushdown.
            for i in pushable:
                totals[i] = group_states[i].sum(axis=0)
            self.stats.fallbacks += len(pushable)
        return totals

    # ------------------------------------------------------------------
    # Index seam
    # ------------------------------------------------------------------
    def build_range_view(
        self, values: np.ndarray, tuple_states: np.ndarray | None,
        exact: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        # The stable sort itself stays in numpy: argsort tie-breaking
        # and NaN placement are part of the bit-for-bit contract.  The
        # O(n·k) prefix aggregation is what pushes down.
        order = np.argsort(values, kind="stable").astype(np.int64,
                                                         copy=False)
        sorted_values = values[order]
        if not (exact and tuple_states is not None and len(values)):
            prefix = None
            if exact and tuple_states is not None:
                prefix = np.zeros((1, tuple_states.shape[1]),
                                  dtype=np.float64)
            return order, sorted_values, prefix
        k = tuple_states.shape[1]
        try:
            sorted_states = tuple_states[order]
            state_cols = self._state_columns(k)
            columns: dict[str, object] = {
                "pos": np.arange(len(values), dtype=np.int64)}
            for j, col in enumerate(state_cols):
                columns[col] = sorted_states[:, j]
            relation = self._relation(columns)
            try:
                rows = self._con.execute(sqlgen.prefix_states_sql(
                    relation, "pos", state_cols)).fetchall()
            finally:
                self._drop(relation)
            prefix = np.zeros((len(values) + 1, k), dtype=np.float64)
            for row in rows:
                prefix[int(row[0]) + 1] = row[1:]
            self.stats.routed_views += 1
            return order, sorted_values, prefix
        except Exception:
            self.stats.fallbacks += 1
            return self._reference.build_range_view(values, tuple_states,
                                                    exact)

    def build_discrete_view(
        self, codes: np.ndarray, n_codes: int,
        tuple_states: np.ndarray | None, exact: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        order = np.argsort(codes, kind="stable").astype(np.int64,
                                                        copy=False)
        sorted_codes = codes[order]
        offsets = np.searchsorted(
            sorted_codes, np.arange(n_codes + 1, dtype=np.int64),
        ).astype(np.int64, copy=False)
        if not (exact and tuple_states is not None and len(codes)):
            bucket_states = None
            if exact and tuple_states is not None:
                bucket_states = np.zeros((n_codes, tuple_states.shape[1]),
                                         dtype=np.float64)
            return order, offsets, bucket_states
        k = tuple_states.shape[1]
        try:
            state_cols = self._state_columns(k)
            columns: dict[str, object] = {"code": codes.astype(np.int64)}
            for j, col in enumerate(state_cols):
                columns[col] = tuple_states[:, j]
            relation = self._relation(columns)
            try:
                rows = self._con.execute(sqlgen.bucket_states_sql(
                    relation, "code", state_cols)).fetchall()
            finally:
                self._drop(relation)
            bucket_states = np.zeros((n_codes, k), dtype=np.float64)
            for row in rows:
                bucket_states[int(row[0])] = row[1:]
            self.stats.routed_views += 1
            return order, offsets, bucket_states
        except Exception:
            self.stats.fallbacks += 1
            return self._reference.build_discrete_view(
                codes, n_codes, tuple_states, exact)

    # ------------------------------------------------------------------
    # SQL-layer seam
    # ------------------------------------------------------------------
    def mask_count(self, table, conditions: Sequence) -> int:
        columns = [c.column for c in conditions]
        try:
            relation = self._table_relation(table, columns or
                                            [table.schema.names[0]])
            try:
                (count,), = self._con.execute(
                    sqlgen.mask_count_sql(relation, conditions)).fetchall()
            finally:
                self._drop(relation)
        except Exception:
            self.stats.fallbacks += 1
            return self._reference.mask_count(table, conditions)
        self.stats.routed_queries += 1
        return int(count)

    def execute_query(self, table, parsed) -> dict[tuple, float]:
        from repro.aggregates.registry import get_aggregate

        if parsed.aggregate_name not in sqlgen.STATE_COMPONENT_SQL:
            self.stats.fallbacks += 1
            return self._reference.execute_query(table, parsed)
        needed = (list(parsed.group_by) + [parsed.agg_column]
                  + [c.column for c in parsed.conditions])
        try:
            relation = self._table_relation(table, needed)
            try:
                rows = self._con.execute(sqlgen.grouped_query_sql(
                    relation, parsed.aggregate_name, parsed.agg_column,
                    parsed.group_by, parsed.conditions)).fetchall()
            finally:
                self._drop(relation)
        except Exception:
            self.stats.fallbacks += 1
            return self._reference.execute_query(table, parsed)
        n_keys = len(parsed.group_by)
        aggregate = get_aggregate(parsed.aggregate_name)
        out: dict[tuple, float] = {}
        if rows:
            states = np.asarray([row[n_keys:] for row in rows],
                                dtype=np.float64)
            recovered = aggregate.recover_batch(states)
            for row, value in zip(rows, recovered):
                out[tuple(row[:n_keys])] = float(value)
        self.stats.routed_queries += 1
        return out

    # ------------------------------------------------------------------
    # Cube pre-aggregation
    # ------------------------------------------------------------------
    def build_cube(self, table, attributes: Sequence[str],
                   aggregate_name: str, agg_column: str,
                   max_cells: int = 65536):
        from repro.aggregates.registry import get_aggregate
        from repro.backend.cube import CubeIndex, _validate_cube_request

        _validate_cube_request(table, attributes, aggregate_name,
                               agg_column)
        aggregate = get_aggregate(aggregate_name)
        values = np.asarray(table.values(agg_column), dtype=np.float64)
        states = aggregate.tuple_states(values)
        if not exactly_summable(states):
            # Engine-side GROUP BY sums in engine order; only exact
            # states keep the cells bit-equal to the numpy build.
            self.stats.fallbacks += 1
            return self._reference.build_cube(table, attributes,
                                              aggregate_name, agg_column,
                                              max_cells=max_cells)
        try:
            relation = self._table_relation(
                table, list(attributes) + [agg_column])
            try:
                rows = self._con.execute(sqlgen.cube_sql(
                    relation, attributes, aggregate_name,
                    agg_column)).fetchall()
            finally:
                self._drop(relation)
        except Exception:
            self.stats.fallbacks += 1
            return self._reference.build_cube(table, attributes,
                                              aggregate_name, agg_column,
                                              max_cells=max_cells)
        if len(rows) > max_cells:
            raise BackendError(
                f"cube over {tuple(attributes)} exceeds {max_cells} cells")
        n_attrs = len(attributes)
        cells = {}
        for row in rows:
            key = tuple(row[:n_attrs])
            count = int(row[n_attrs])
            state = np.asarray(row[n_attrs + 1:], dtype=np.float64)
            cells[key] = (count, state)
        self.stats.routed_cubes += 1
        return CubeIndex(attributes, aggregate_name, agg_column, cells,
                         exact=True, source="duckdb")


__all__ = ["DuckDBBackend"]
