"""Execution backends: pluggable engines behind the scorer, index, and
SQL layers.

``resolve_backend`` is the single entry point every knob goes through
(constructor argument > ``SCORPION_BACKEND`` environment variable >
numpy default); see :mod:`repro.backend.base` for the contract each
backend implements.
"""

from __future__ import annotations

import os
import warnings

from repro.backend.base import BackendStats, ExecutionBackend, \
    stack_group_states
from repro.backend.cube import CubeIndex, build_cube_numpy
from repro.backend.duckdb_backend import DuckDBBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.errors import BackendError, BackendUnavailable

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "SCORPION_BACKEND"

#: Knob spellings accepted for the default engine.
_NUMPY_NAMES = frozenset({"", "numpy", "auto", "default"})


def resolve_backend(backend=None) -> ExecutionBackend:
    """Turn a backend knob value into a live :class:`ExecutionBackend`.

    Accepts an :class:`ExecutionBackend` instance (passed through
    untouched), a name (``"numpy"`` / ``"duckdb"``), or ``None`` — which
    consults :data:`BACKEND_ENV_VAR` and defaults to numpy.  A named
    engine whose package is not importable degrades to the numpy
    reference with a warning and a counted fallback rather than failing
    the explain; unknown names raise :class:`~repro.errors.BackendError`.

    A fresh instance is built per call so each scorer's
    ``backend_routed_*`` gauges count only its own work.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "")
    name = str(backend).strip().lower()
    if name in _NUMPY_NAMES:
        return NumpyBackend()
    if name == "duckdb":
        try:
            return DuckDBBackend()
        except BackendUnavailable as exc:
            warnings.warn(
                f"backend 'duckdb' unavailable ({exc}); "
                "falling back to numpy", RuntimeWarning, stacklevel=2)
            fallback = NumpyBackend()
            fallback.stats.fallbacks += 1
            return fallback
    raise BackendError(
        f"unknown backend {backend!r}; expected 'numpy' or 'duckdb'")


__all__ = [
    "BACKEND_ENV_VAR",
    "BackendStats",
    "CubeIndex",
    "DuckDBBackend",
    "ExecutionBackend",
    "NumpyBackend",
    "build_cube_numpy",
    "resolve_backend",
    "stack_group_states",
]
