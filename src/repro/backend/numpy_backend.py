"""The numpy reference backend — the default execution engine and the
semantics every other backend is measured against.

Each method here is **the** definition of correct: the implementations
replicate, operation for operation, what the scorer and index did
before the backend seam existed (``states.sum(axis=0)`` totals, stable
argsort + in-order cumsum views, mask-based predicate evaluation), so
routing through this backend is bit-for-bit invisible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend.base import ExecutionBackend


class NumpyBackend(ExecutionBackend):
    """In-process numpy execution (the reference engine)."""

    name = "numpy"

    # ------------------------------------------------------------------
    def group_total_states(
        self, group_states: Sequence[np.ndarray | None],
    ) -> list[np.ndarray | None]:
        # The exact reduction the scorer's contexts always used:
        # numpy's pairwise sum down axis 0, one call per group.
        return [states.sum(axis=0) if states is not None else None
                for states in group_states]

    # ------------------------------------------------------------------
    def build_range_view(
        self, values: np.ndarray, tuple_states: np.ndarray | None,
        exact: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        # Replicates GroupAttributeIndex.__init__ exactly.
        order = np.argsort(values, kind="stable").astype(np.int64,
                                                         copy=False)
        sorted_values = values[order]
        prefix: np.ndarray | None = None
        if exact and tuple_states is not None:
            prefix = np.zeros((len(values) + 1, tuple_states.shape[1]),
                              dtype=np.float64)
            np.cumsum(tuple_states[order], axis=0, out=prefix[1:])
        return order, sorted_values, prefix

    def build_discrete_view(
        self, codes: np.ndarray, n_codes: int,
        tuple_states: np.ndarray | None, exact: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        # Replicates GroupDiscreteIndex.__init__ exactly (including the
        # prefix-difference form of the bucket sums).
        order = np.argsort(codes, kind="stable").astype(np.int64,
                                                        copy=False)
        sorted_codes = codes[order]
        offsets = np.searchsorted(
            sorted_codes, np.arange(n_codes + 1, dtype=np.int64),
        ).astype(np.int64, copy=False)
        bucket_states: np.ndarray | None = None
        if exact and tuple_states is not None:
            prefix = np.zeros((len(codes) + 1, tuple_states.shape[1]),
                              dtype=np.float64)
            np.cumsum(tuple_states[order], axis=0, out=prefix[1:])
            bucket_states = prefix[offsets[1:]] - prefix[offsets[:-1]]
        return order, offsets, bucket_states

    # ------------------------------------------------------------------
    def mask_count(self, table, conditions: Sequence) -> int:
        mask = np.ones(len(table), dtype=bool)
        for condition in conditions:
            mask &= condition.mask(table)
        return int(np.count_nonzero(mask))

    def execute_query(self, table, parsed) -> dict[tuple, float]:
        return {result.key: float(result.value)
                for result in parsed.to_query().execute(table)}

    # ------------------------------------------------------------------
    def build_cube(self, table, attributes: Sequence[str],
                   aggregate_name: str, agg_column: str,
                   max_cells: int = 65536):
        from repro.backend.cube import build_cube_numpy

        # The reference build is not a pushdown — no counter moves.
        return build_cube_numpy(table, attributes, aggregate_name,
                                agg_column, max_cells=max_cells)


__all__ = ["NumpyBackend"]
