"""Cube pre-aggregation over low-cardinality discrete attributes.

A :class:`CubeIndex` materializes, once, the aggregate state components
of every combination of values of a small set of discrete attributes —
``GROUP BY a1, a2, ...`` in SQL terms — in the spirit of the
suppression-tools ``build_cubes_from_db`` pre-aggregations.  Any
conjunctive set predicate over those attributes is then answered from
the cube in O(matching cells) instead of an O(n) scan: matched counts,
total removed states, and recovered aggregate values all come from
summing pre-aggregated cells.

Exactness gate: cell *counts* are always exact integers.  Cell *states*
sum exactly (in any order — what makes the engine-side ``GROUP BY``
build bit-equal to the numpy build) precisely when the underlying
per-tuple states are exactly summable
(:func:`repro.index.prefix.exactly_summable`); the
:attr:`CubeIndex.exact` flag records this, and the DuckDB backend only
pushes the build down when it holds.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.aggregates.registry import get_aggregate
from repro.backend.sqlgen import STATE_COMPONENT_SQL
from repro.errors import BackendError
from repro.index.prefix import exactly_summable


class CubeIndex:
    """Pre-aggregated ``(count, state)`` cells keyed by attribute-value
    combinations.

    Cells are stored as a dict keyed by the value tuple (attribute
    order fixed at build time); only combinations present in the data
    exist — a missing key is an empty cell.
    """

    def __init__(self, attributes: Sequence[str], aggregate_name: str,
                 agg_column: str,
                 cells: Mapping[tuple, tuple[int, np.ndarray]],
                 exact: bool, source: str):
        self.attributes = tuple(attributes)
        self.aggregate_name = aggregate_name
        self.agg_column = agg_column
        self._cells = dict(cells)
        #: Whether cell states are order-independent exact sums (the
        #: engine-equality precondition).
        self.exact = bool(exact)
        #: Which engine built the cells (``"numpy"`` / ``"duckdb"``).
        self.source = source

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self._cells)

    @property
    def state_size(self) -> int:
        for _, state in self._cells.values():
            return len(state)
        return len(STATE_COMPONENT_SQL.get(self.aggregate_name, ()))

    def keys(self) -> list[tuple]:
        """Cell keys in a deterministic (repr-sorted) order."""
        return sorted(self._cells, key=repr)

    def cell(self, key: tuple) -> tuple[int, np.ndarray]:
        """``(count, state)`` of one exact combination (zeros if the
        combination never occurs)."""
        found = self._cells.get(tuple(key))
        if found is None:
            return 0, np.zeros(self.state_size, dtype=np.float64)
        return found

    # ------------------------------------------------------------------
    def _matching_keys(self, assignment: Mapping[str, object]) -> list[tuple]:
        unknown = [a for a in assignment if a not in self.attributes]
        if unknown:
            raise BackendError(
                f"attributes {unknown} are not cube dimensions "
                f"{self.attributes}")
        positions = []
        for attr, wanted in assignment.items():
            values = (wanted if isinstance(wanted, (list, tuple, set,
                                                    frozenset))
                      else [wanted])
            positions.append((self.attributes.index(attr), set(values)))
        return [key for key in self.keys()
                if all(key[pos] in allowed for pos, allowed in positions)]

    def slice_states(self, assignment: Mapping[str, object],
                     ) -> tuple[int, np.ndarray]:
        """Matched count and summed state of a conjunctive set predicate
        ``attr1 IN {...} AND attr2 IN {...}`` over cube dimensions.

        Unconstrained dimensions are summed over.  With :attr:`exact`
        states the result is bit-equal to a direct masked scan.
        """
        count = 0
        state = np.zeros(self.state_size, dtype=np.float64)
        for key in self._matching_keys(assignment):
            cell_count, cell_state = self._cells[key]
            count += cell_count
            state = state + cell_state
        return count, state

    def aggregate_value(self, assignment: Mapping[str, object]) -> float:
        """The aggregate recovered over the predicate's matched rows
        (NaN for an empty match, mirroring ``recover_batch``)."""
        count, state = self.slice_states(assignment)
        if count == 0:
            return float("nan")
        aggregate = get_aggregate(self.aggregate_name)
        return float(aggregate.recover_batch(state[np.newaxis, :])[0])

    # ------------------------------------------------------------------
    def same_cells(self, other: "CubeIndex") -> bool:
        """Bit-for-bit cell equality with another cube (the build
        oracle's comparison: every key, count, and state float equal)."""
        if (self.attributes != other.attributes
                or set(self._cells) != set(other._cells)):
            return False
        for key, (count, state) in self._cells.items():
            other_count, other_state = other._cells[key]
            if count != other_count or not np.array_equal(state, other_state):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CubeIndex({self.aggregate_name}({self.agg_column}) "
                f"BY {self.attributes}, cells={self.n_cells}, "
                f"exact={self.exact}, source={self.source!r})")


def _validate_cube_request(table, attributes: Sequence[str],
                           aggregate_name: str, agg_column: str) -> None:
    if not attributes:
        raise BackendError("a cube needs at least one attribute")
    if aggregate_name not in STATE_COMPONENT_SQL:
        raise BackendError(
            f"aggregate {aggregate_name!r} has no state decomposition; "
            "cubes require a linear-state aggregate")
    for attr in attributes:
        if not table.schema[attr].is_discrete:
            raise BackendError(
                f"cube attribute {attr!r} must be discrete "
                "(low-cardinality)")
    if not table.schema[agg_column].is_continuous:
        raise BackendError(
            f"aggregate column {agg_column!r} must be continuous")


def build_cube_numpy(table, attributes: Sequence[str], aggregate_name: str,
                     agg_column: str, max_cells: int = 65536) -> CubeIndex:
    """Reference cube build: factorize each attribute, scatter-add the
    state components per composite cell with the same in-row-order
    ``bincount`` kernel the scorer's batch path uses."""
    _validate_cube_request(table, attributes, aggregate_name, agg_column)
    aggregate = get_aggregate(aggregate_name)
    values = np.asarray(table.values(agg_column), dtype=np.float64)
    states = aggregate.tuple_states(values)

    codes_per_attr: list[np.ndarray] = []
    levels_per_attr: list[list] = []
    cells_bound = 1
    for attr in attributes:
        column_values = table.values(attr)
        code_of: dict = {}
        codes = np.empty(len(column_values), dtype=np.int64)
        for i, value in enumerate(column_values):
            code = code_of.get(value)
            if code is None:
                code = len(code_of)
                code_of[value] = code
            codes[i] = code
        codes_per_attr.append(codes)
        levels_per_attr.append(list(code_of))
        cells_bound *= max(len(code_of), 1)
        if cells_bound > max_cells:
            raise BackendError(
                f"cube over {tuple(attributes)} would exceed "
                f"{max_cells} cells; pick lower-cardinality attributes")

    composite = np.zeros(len(table), dtype=np.int64)
    for codes, levels in zip(codes_per_attr, levels_per_attr):
        composite = composite * max(len(levels), 1) + codes

    n_cells = cells_bound
    counts = np.bincount(composite, minlength=n_cells).astype(np.int64)
    summed = np.zeros((n_cells, states.shape[1]), dtype=np.float64)
    for j in range(states.shape[1]):
        summed[:, j] = np.bincount(composite, weights=states[:, j],
                                   minlength=n_cells)

    cells: dict[tuple, tuple[int, np.ndarray]] = {}
    for flat in np.nonzero(counts)[0]:
        remaining = int(flat)
        key_codes = []
        for levels in reversed(levels_per_attr):
            base = max(len(levels), 1)
            key_codes.append(remaining % base)
            remaining //= base
        key = tuple(levels_per_attr[i][code]
                    for i, code in enumerate(reversed(key_codes)))
        cells[key] = (int(counts[flat]), summed[flat].copy())
    return CubeIndex(attributes, aggregate_name, agg_column, cells,
                     exact=exactly_summable(states), source="numpy")


__all__ = ["CubeIndex", "build_cube_numpy"]
