"""The :class:`ExecutionBackend` protocol — the seam that makes the
scorer's state building, the prefix-aggregate index's view
construction, and the SQL layer's predicate/aggregate evaluation
engine-agnostic.

A backend is an *execution strategy*, never a semantics change: every
method's result must be bit-for-bit equal to the numpy reference
implementation (:class:`~repro.backend.numpy_backend.NumpyBackend`),
except where a documented tolerance applies (see
:meth:`ExecutionBackend.execute_query`).  The scorer-facing methods —
:meth:`group_total_states`, :meth:`build_range_view`,
:meth:`build_discrete_view` — carry the strict contract with **no**
tolerance: a pushdown is only taken when the engine can reproduce the
numpy floats exactly (integer-valued exactly-summable states, whose
sums are order-independent), and everything else falls back to the
reference path with a counted fallback.

Counter contract
----------------

Each backend instance owns a :class:`BackendStats`; the scorer mirrors
it into ``ScorerStats.backend_routed_*`` as gauge snapshots (set, not
incremented — the :attr:`ScorerStats.cost_calibrations` precedent), so
``result.scorer_stats`` shows how much work the engine actually
answered versus fell back on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


@dataclass
class BackendStats:
    """Pushdown counters of one backend instance.

    The numpy reference backend answers everything itself and counts
    nothing — these measure work *pushed into an engine* (and the
    eligibility misses that could not be).
    """

    #: Group total-state reductions answered engine-side (one per group).
    routed_states: int = 0
    #: Index views (prefix cumsums / code-bucket sums) built engine-side
    #: (one per attribute build that pushed down).
    routed_views: int = 0
    #: Predicate mask counts / parsed-query executions answered
    #: engine-side.
    routed_queries: int = 0
    #: Cube pre-aggregations built engine-side.
    routed_cubes: int = 0
    #: Requests served by the numpy reference path because the pushdown
    #: was ineligible (non-exact states, unsupported column types) or
    #: the engine was unavailable.
    fallbacks: int = 0


class ExecutionBackend(abc.ABC):
    """One execution engine behind the scorer/index/SQL seams.

    Implementations must be deterministic and side-effect-free on their
    inputs; arrays handed in are read-only views owned by the caller.
    """

    #: Short knob value identifying the backend (``--backend <name>``).
    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = BackendStats()

    # ------------------------------------------------------------------
    # Scorer seam: per-group aggregate state totals
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def group_total_states(
        self, group_states: Sequence[np.ndarray | None],
    ) -> list[np.ndarray | None]:
        """Column sums of each group's ``(n_i, k)`` per-tuple state
        matrix — the scorer's ``total_state`` per context.

        ``None`` entries (black-box aggregates carry no states) map to
        ``None``.  Contract: bit-for-bit equal to
        ``states.sum(axis=0)`` per group.
        """

    # ------------------------------------------------------------------
    # Index seam: per-(group, attribute) sorted views
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_range_view(
        self, values: np.ndarray, tuple_states: np.ndarray | None,
        exact: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """One group's sorted view along one continuous attribute.

        Returns ``(order, sorted_values, prefix)`` exactly as
        :class:`~repro.index.prefix.GroupAttributeIndex` would build
        them: a stable argsort order, the reordered values, and — only
        when ``exact`` and states exist — the ``(n + 1, k)`` prefix
        state matrix (else ``None``, the gather tier).
        """

    @abc.abstractmethod
    def build_discrete_view(
        self, codes: np.ndarray, n_codes: int,
        tuple_states: np.ndarray | None, exact: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """One group's code-bucket view along one discrete attribute.

        Returns ``(order, offsets, bucket_states)`` exactly as
        :class:`~repro.index.discrete.GroupDiscreteIndex` would build
        them; ``bucket_states`` is ``None`` off the exact bucket tier.
        """

    # ------------------------------------------------------------------
    # SQL-layer seam: predicates and whole parsed queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mask_count(self, table, conditions: Sequence) -> int:
        """Rows of ``table`` matching every
        :class:`~repro.query.sql.Condition` (SQL NULL semantics: a null
        never matches ``=`` *or* ``!=``).  Equal to
        ``ParsedQuery.where(table).sum()``.
        """

    @abc.abstractmethod
    def execute_query(self, table, parsed) -> dict[tuple, float]:
        """Execute a :class:`~repro.query.sql.ParsedQuery`, returning
        ``{group key tuple: aggregate value}``.

        Tolerance contract: for exactly-summable aggregate inputs the
        results are bit-for-bit equal to the numpy engine.  For general
        floats an engine may sum in a different order than numpy's
        pairwise reduction, so recombined aggregates (SUM/AVG and the
        VARIANCE/STDDEV moment states) agree only to relative tolerance
        ~1e-12 — the one documented deviation in the backend contract.
        """

    # ------------------------------------------------------------------
    # Cube pre-aggregation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_cube(self, table, attributes: Sequence[str],
                   aggregate_name: str, agg_column: str,
                   max_cells: int = 65536):
        """Materialize a :class:`~repro.backend.cube.CubeIndex` over the
        given low-cardinality discrete attributes (see that module for
        the exactness gate and the cell query API).
        """

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def stack_group_states(
    group_states: Sequence[np.ndarray | None],
) -> tuple[list[int], np.ndarray | None]:
    """Concatenate the non-``None``, non-empty state matrices, returning
    the owning group ids alongside — the shared plumbing pushdown
    backends use to ship all groups' states in one relation."""
    ids = [i for i, states in enumerate(group_states)
           if states is not None and len(states)]
    if not ids:
        return ids, None
    return ids, np.vstack([group_states[i] for i in ids])


__all__ = [
    "BackendStats",
    "ExecutionBackend",
    "stack_group_states",
]
