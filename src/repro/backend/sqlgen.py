"""Pure SQL generation for pushdown backends.

Everything here is string-in, string-out — no engine import, no
connection — so the exact SQL a pushdown will run is unit-testable on
machines without ``duckdb`` installed.  The dialect targeted is
DuckDB's (double-quoted identifiers, single-quoted strings with ``''``
escaping, ``<>`` for not-equal), which is close enough to standard SQL
that the statements read as plain SQL-92 aggregates.

Aggregate states map to SQL as *component sums*: the scorer's
per-tuple state rows (``[v, 1]`` for SUM/AVG, ``[v, v², 1]`` for
VARIANCE/STDDEV, ``[1]`` for COUNT — see
:mod:`repro.aggregates.standard`) are exactly the quantities
``SUM(v)`` / ``SUM(v*v)`` / ``COUNT(*)`` compute, which is what makes
Scorpion's incremental-removal cache expressible as one grouped SQL
query.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import BackendError

#: Aggregate name → state-component SQL templates over the aggregate
#: column placeholder ``{v}``.  Component order matches each
#: aggregate's ``tuple_states`` column order, so a fetched row *is* a
#: total state vector.
STATE_COMPONENT_SQL: Mapping[str, tuple[str, ...]] = {
    "sum": ("sum({v})", "count(*)"),
    "avg": ("sum({v})", "count(*)"),
    "count": ("count(*)",),
    "variance": ("sum({v})", "sum({v} * {v})", "count(*)"),
    "stddev": ("sum({v})", "sum({v} * {v})", "count(*)"),
}

#: numpy condition operators → SQL spelling.
_OP_SQL = {"=": "=", "!=": "<>", "<>": "<>",
           "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def quote_identifier(name: str) -> str:
    """Double-quote an identifier, doubling embedded quotes."""
    return '"' + str(name).replace('"', '""') + '"'


def quote_literal(value) -> str:
    """Render a Python literal as a SQL literal.

    Strings single-quote with ``''`` escaping; bools become integers
    (the mini-dialect has no boolean literals); ``None`` renders as
    ``NULL``; int stays integral (no float coercion — the point of the
    parser's integer-preservation fix); float uses ``repr``'s
    shortest-round-trip decimal, which SQL engines parse back to the
    identical double.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:
            raise BackendError("NaN has no SQL literal spelling")
        if value in (float("inf"), float("-inf")):
            raise BackendError("infinity has no portable SQL literal")
        return repr(value)
    raise BackendError(f"unsupported SQL literal type {type(value).__name__}")


def condition_sql(condition) -> str:
    """One ``column op literal`` condition as SQL.

    SQL's three-valued logic natively gives the NULL semantics the
    numpy layer now matches: a NULL row satisfies neither ``=`` nor
    ``<>``, so no ``IS NOT NULL`` guard is needed.
    """
    op = _OP_SQL.get(condition.op)
    if op is None:
        raise BackendError(f"unsupported SQL operator {condition.op!r}")
    return (f"{quote_identifier(condition.column)} {op} "
            f"{quote_literal(condition.literal)}")


def where_sql(conditions: Sequence) -> str:
    """``WHERE c1 AND c2 ...`` (empty string for no conditions)."""
    if not conditions:
        return ""
    return " WHERE " + " AND ".join(condition_sql(c) for c in conditions)


def state_component_sql(aggregate_name: str, agg_column: str,
                        ) -> tuple[str, ...]:
    """The aggregate's state components as SQL select expressions."""
    templates = STATE_COMPONENT_SQL.get(aggregate_name)
    if templates is None:
        raise BackendError(
            f"aggregate {aggregate_name!r} has no SQL state decomposition "
            "(black-box aggregates are not pushable)")
    v = quote_identifier(agg_column)
    return tuple(template.format(v=v) for template in templates)


def mask_count_sql(relation: str, conditions: Sequence) -> str:
    """``SELECT count(*)`` over the relation under the conditions."""
    return (f"SELECT count(*) FROM {quote_identifier(relation)}"
            f"{where_sql(conditions)}")


def group_states_sql(relation: str, group_column: str,
                     state_columns: Sequence[str]) -> str:
    """Grouped component sums over pre-materialized state columns —
    the scorer's per-group ``total_state`` as one query."""
    sums = ", ".join(f"sum({quote_identifier(c)})" for c in state_columns)
    gid = quote_identifier(group_column)
    return (f"SELECT {gid}, {sums} FROM {quote_identifier(relation)} "
            f"GROUP BY {gid} ORDER BY {gid}")


def prefix_states_sql(relation: str, position_column: str,
                      state_columns: Sequence[str]) -> str:
    """Running in-order state sums (the prefix tier's cumsum) as one
    window query ordered by the pre-sorted position column."""
    pos = quote_identifier(position_column)
    frame = (f"OVER (ORDER BY {pos} ROWS BETWEEN UNBOUNDED PRECEDING "
             "AND CURRENT ROW)")
    sums = ", ".join(f"sum({quote_identifier(c)}) {frame}"
                     for c in state_columns)
    return (f"SELECT {pos}, {sums} FROM {quote_identifier(relation)} "
            f"ORDER BY {pos}")


def bucket_states_sql(relation: str, code_column: str,
                      state_columns: Sequence[str]) -> str:
    """Per-code-bucket state sums (the discrete bucket tier)."""
    code = quote_identifier(code_column)
    sums = ", ".join(f"sum({quote_identifier(c)})" for c in state_columns)
    return (f"SELECT {code}, {sums} FROM {quote_identifier(relation)} "
            f"GROUP BY {code} ORDER BY {code}")


def grouped_query_sql(relation: str, aggregate_name: str, agg_column: str,
                      group_by: Sequence[str], conditions: Sequence,
                      ) -> str:
    """A whole parsed mini-SQL query as one engine-side statement:
    group keys plus the aggregate's state components."""
    keys = ", ".join(quote_identifier(g) for g in group_by)
    components = ", ".join(state_component_sql(aggregate_name, agg_column))
    return (f"SELECT {keys}, {components} "
            f"FROM {quote_identifier(relation)}"
            f"{where_sql(conditions)} "
            f"GROUP BY {keys} ORDER BY {keys}")


def cube_sql(relation: str, attributes: Sequence[str],
             aggregate_name: str, agg_column: str,
             conditions: Sequence = ()) -> str:
    """Cube pre-aggregation: state components for every combination of
    the (low-cardinality) attributes' values present in the data."""
    keys = ", ".join(quote_identifier(a) for a in attributes)
    components = ", ".join(state_component_sql(aggregate_name, agg_column))
    return (f"SELECT {keys}, count(*), {components} "
            f"FROM {quote_identifier(relation)}"
            f"{where_sql(conditions)} "
            f"GROUP BY {keys} ORDER BY {keys}")


__all__ = [
    "STATE_COMPONENT_SQL",
    "bucket_states_sql",
    "condition_sql",
    "cube_sql",
    "group_states_sql",
    "grouped_query_sql",
    "mask_count_sql",
    "prefix_states_sql",
    "quote_identifier",
    "quote_literal",
    "state_component_sql",
    "where_sql",
]
