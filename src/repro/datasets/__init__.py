"""Dataset generators for the paper's three experimental workloads.

* :mod:`~repro.datasets.synth` — the Section 8.1 SYNTH generator (nested
  random hyper-cubes of outlier tuples inside 2–4 dimensional groups);
* :mod:`~repro.datasets.intel` — a statistically matched simulator of the
  Intel Lab sensor trace with the two failure workloads the paper
  analyzes (see DESIGN.md §3 for the substitution rationale);
* :mod:`~repro.datasets.expenses` — a generator shaped like the FEC 2012
  campaign-expense file with the Obama media-buy outlier days.

Every generator returns a dataset object bundling the table, the paper's
query, the outlier/hold-out annotations, and the ground-truth masks the
evaluation harness scores against.
"""

from repro.datasets.expenses import ExpensesConfig, ExpensesDataset, generate_expenses
from repro.datasets.intel import IntelConfig, IntelDataset, generate_intel, make_intel
from repro.datasets.synth import SynthConfig, SynthDataset, generate_synth, make_synth

__all__ = [
    "ExpensesConfig",
    "ExpensesDataset",
    "IntelConfig",
    "IntelDataset",
    "SynthConfig",
    "SynthDataset",
    "generate_expenses",
    "generate_intel",
    "generate_synth",
    "make_intel",
    "make_synth",
]
