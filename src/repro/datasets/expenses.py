"""Generator shaped like the FEC 2012 campaign-expense file
(paper Section 8.1, EXPENSE).

The real file (116,448 rows, 14 mostly discrete attributes, recipient
cardinality up to 18k) is unavailable offline; this generator reproduces
the structure the paper's analysis depends on:

* daily Obama-campaign expenses from 2011-01 through 2012-07, dominated
  by many small disbursements (payroll, travel, rent, …);
* seven **outlier days** whose totals exceed $10M, driven by a handful
  of huge media buys paid to ``GMMB INC.`` in Washington DC under filing
  number 800316 with description ``MEDIA BUY`` (average ≈ $2.7M) — the
  exact predicate Scorpion finds in Section 8.4;
* a second, cheaper GMMB filing (800317) and other $1M-class payments
  that give the low-``c`` runs something coarser to return;
* twelve discrete explanation attributes with skewed cardinalities
  (recipient names by far the largest).

Query::

    SELECT sum(disb_amt) FROM expenses WHERE candidate = 'Obama'
    GROUP BY date

Ground truth follows the paper: all tuples with ``disb_amt > $1.5M``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aggregates.standard import Sum
from repro.core.problem import ScorpionQuery
from repro.errors import DatasetError
from repro.query.groupby import GroupByQuery
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table

GROUND_TRUTH_AMOUNT = 1_500_000.0

_DISB_DESCS = [
    "PAYROLL", "TRAVEL", "RENT", "CATERING", "PRINTING", "POSTAGE",
    "CONSULTING", "POLLING", "SECURITY", "OFFICE SUPPLIES", "PHONES",
    "ONLINE ADVERTISING", "SITE RENTAL", "EQUIPMENT", "INSURANCE",
]
_STATES = [
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DC", "DE", "FL", "GA",
    "HI", "IA", "IL", "IN", "KY", "MA", "MD", "MI", "MN", "MO", "NC",
    "NH", "NJ", "NM", "NV", "NY", "OH", "OR", "PA", "TX", "VA", "WA", "WI",
]
_ORG_TYPES = ["CORPORATION", "LLC", "PARTNERSHIP", "INDIVIDUAL", "NONPROFIT"]
_ENTITY_TYPES = ["ORG", "IND", "PAC", "PTY", "CCM"]
_ELECTION_TYPES = ["P2012", "G2012", "O2012"]
_MEMO_CODES = ["", "X"]
_CATEGORIES = ["ADMINISTRATIVE", "ADVERTISING", "FUNDRAISING", "TRAVEL",
               "SALARY", "CONTRIBUTIONS", "OTHER", "EVENTS", "MATERIALS",
               "RESEARCH"]
_PAYEE_TYPES = ["VENDOR", "EMPLOYEE", "CONSULTANT", "COMMITTEE", "AGENCY"]


@dataclass(frozen=True)
class ExpensesConfig:
    """Parameters of the generated expense file."""

    n_days: int = 240
    rows_per_day: int = 60
    n_recipients: int = 2000
    n_cities: int = 100
    n_zips: int = 100
    n_outlier_days: int = 7
    media_buys_per_outlier_day: int = 5
    #: Fraction of rows belonging to other candidates (exercises WHERE).
    other_candidate_fraction: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_days < self.n_outlier_days + 27:
            raise DatasetError(
                "need enough days for 7 outliers plus 27 hold-outs (Section 8.1)"
            )
        if self.rows_per_day < 10:
            raise DatasetError("rows_per_day must be >= 10")
        if self.n_recipients < 10:
            raise DatasetError("n_recipients must be >= 10")


@dataclass
class ExpensesDataset:
    """A generated expense file plus the paper's workload annotations."""

    config: ExpensesConfig
    table: Table
    outlier_keys: list[str]
    holdout_keys: list[str]
    #: Mask over all rows: the >$1.5M ground-truth tuples.
    truth_mask: np.ndarray = field(repr=False)

    def query(self) -> GroupByQuery:
        """``SELECT sum(disb_amt) … WHERE candidate = 'Obama' GROUP BY date``."""

        def only_obama(table: Table) -> np.ndarray:
            return table.column("candidate").membership_mask(["Obama"])

        return GroupByQuery("date", Sum(), "disb_amt", where=only_obama)

    def scorpion_query(self, c: float = 0.5, lam: float = 0.5) -> ScorpionQuery:
        return ScorpionQuery(
            table=self.table,
            query=self.query(),
            outliers=self.outlier_keys,
            holdouts=self.holdout_keys,
            error_vectors=+1.0,
            lam=lam,
            c=c,
            ignore=("candidate",),
        )

    def effective_table(self) -> Table:
        """The WHERE-filtered relation Scorpion actually sees."""
        return self.query().filtered(self.table)

    def effective_truth_mask(self) -> np.ndarray:
        """Ground-truth mask aligned with :meth:`effective_table`."""
        obama = self.table.column("candidate").membership_mask(["Obama"])
        return self.truth_mask[obama]

    def outlier_row_indices(self) -> np.ndarray:
        """Row indices of the outlier days within :meth:`effective_table`."""
        effective = self.effective_table()
        mask = effective.column("date").membership_mask(self.outlier_keys)
        return np.flatnonzero(mask)


def _date_string(day_index: int) -> str:
    """Sequential dates starting 2011-01-01 (month lengths simplified to
    30 days — the group-by only needs distinct, ordered labels)."""
    year = 2011 + day_index // 360
    month = (day_index % 360) // 30 + 1
    day = day_index % 30 + 1
    return f"{year:04d}-{month:02d}-{day:02d}"


def generate_expenses(config: ExpensesConfig) -> ExpensesDataset:
    """Generate the expense file per the module docstring."""
    rng = np.random.default_rng(config.seed)
    recipients = np.array(
        [f"VENDOR {i:05d} LLC" for i in range(config.n_recipients)], dtype=object)
    cities = np.array([f"CITY_{i:03d}" for i in range(config.n_cities)], dtype=object)
    zips = np.array([f"{20000 + 37 * i}" for i in range(config.n_zips)], dtype=object)
    file_nums = np.array([800310 + i for i in range(10)], dtype=object)

    # Zipf-ish skew: a few vendors receive most payments (like the real file).
    recipient_weights = 1.0 / np.arange(1, config.n_recipients + 1) ** 0.8
    recipient_weights /= recipient_weights.sum()

    days = [_date_string(i) for i in range(config.n_days)]
    outlier_day_indices = sorted(
        rng.choice(config.n_days, size=config.n_outlier_days, replace=False).tolist())
    outlier_days = {days[i] for i in outlier_day_indices}

    columns: dict[str, list] = {name: [] for name in (
        "date", "candidate", "recipient_nm", "recipient_st", "recipient_city",
        "recipient_zip", "disb_desc", "file_num", "org_type", "entity_type",
        "election_type", "memo_cd", "category", "payee_tp", "disb_amt")}

    def emit(date: str, candidate: str, recipient: str, state: str, city: str,
             zip_code: str, desc: str, file_num, org: str, entity: str,
             election: str, memo: str, category: str, payee: str,
             amount: float) -> None:
        columns["date"].append(date)
        columns["candidate"].append(candidate)
        columns["recipient_nm"].append(recipient)
        columns["recipient_st"].append(state)
        columns["recipient_city"].append(city)
        columns["recipient_zip"].append(zip_code)
        columns["disb_desc"].append(desc)
        columns["file_num"].append(file_num)
        columns["org_type"].append(org)
        columns["entity_type"].append(entity)
        columns["election_type"].append(election)
        columns["memo_cd"].append(memo)
        columns["category"].append(category)
        columns["payee_tp"].append(payee)
        columns["disb_amt"].append(amount)

    def random_row(date: str, candidate: str) -> None:
        recipient_index = int(rng.choice(config.n_recipients, p=recipient_weights))
        emit(
            date, candidate,
            str(recipients[recipient_index]),
            str(rng.choice(_STATES)),
            str(rng.choice(cities)),
            str(rng.choice(zips)),
            str(rng.choice(_DISB_DESCS)),
            int(rng.choice(file_nums[:6])),
            str(rng.choice(_ORG_TYPES)),
            str(rng.choice(_ENTITY_TYPES)),
            str(rng.choice(_ELECTION_TYPES)),
            str(rng.choice(_MEMO_CODES, p=[0.9, 0.1])),
            str(rng.choice(_CATEGORIES)),
            str(rng.choice(_PAYEE_TYPES)),
            float(np.round(rng.lognormal(5.5, 1.2), 2)),  # median ≈ $245
        )

    for day_index, date in enumerate(days):
        n_other = int(round(config.rows_per_day * config.other_candidate_fraction))
        for _ in range(config.rows_per_day - n_other):
            random_row(date, "Obama")
        for _ in range(n_other):
            random_row(date, str(rng.choice(["Romney", "Paul", "Santorum"])))
        if date in outlier_days:
            # The GMMB INC. media buys that blow up the daily total
            # (report 800316, avg ≈ $2.7M each).
            for _ in range(config.media_buys_per_outlier_day):
                emit(date, "Obama", "GMMB INC.", "DC", "CITY_000", "20001",
                     "MEDIA BUY", 800316, "CORPORATION", "ORG", "G2012", "",
                     "ADVERTISING", "VENDOR",
                     float(np.round(rng.uniform(1.8e6, 3.6e6), 2)))
            # The cheaper sibling report drops below the $1.5M truth line.
            for _ in range(2):
                emit(date, "Obama", "GMMB INC.", "DC", "CITY_000", "20001",
                     "MEDIA BUY", 800317, "CORPORATION", "ORG", "G2012", "",
                     "ADVERTISING", "VENDOR",
                     float(np.round(rng.uniform(4e5, 1.2e6), 2)))
        elif rng.uniform() < 0.05:
            # Occasional big-but-not-outlier payment on a normal day.
            emit(date, "Obama", str(recipients[int(rng.integers(10))]),
                 str(rng.choice(_STATES)), str(rng.choice(cities)),
                 str(rng.choice(zips)), "ONLINE ADVERTISING",
                 int(rng.choice(file_nums[:6])), "CORPORATION", "ORG",
                 "G2012", "", "ADVERTISING", "VENDOR",
                 float(np.round(rng.uniform(2e5, 9e5), 2)))

    schema = Schema(
        [ColumnSpec(name, ColumnKind.DISCRETE) for name in columns if name != "disb_amt"]
        + [ColumnSpec("disb_amt", ColumnKind.CONTINUOUS)]
    )
    table = Table.from_columns(schema, columns)
    truth_mask = np.asarray(
        [amount > GROUND_TRUTH_AMOUNT for amount in columns["disb_amt"]], dtype=bool)

    holdout_pool = [d for d in days if d not in outlier_days]
    holdout_keys = list(np.random.default_rng(config.seed + 1).choice(
        holdout_pool, size=27, replace=False))
    return ExpensesDataset(
        config=config,
        table=table,
        outlier_keys=sorted(outlier_days),
        holdout_keys=sorted(str(d) for d in holdout_keys),
        truth_mask=truth_mask,
    )
