"""The SYNTH generator (paper Section 8.1).

Query shape::

    SELECT SUM(av) FROM synthetic GROUP BY ad

One discrete group-by attribute ``ad`` with 10 values, one value
attribute ``av``, and ``n`` continuous dimension attributes ``a1 … an``
over ``[0, 100]``.  Half the groups are hold-outs whose values all come
from the normal distribution N(10, 10); the other half are outlier
groups built around two nested random hyper-cubes:

* the **outer cube** holds 25% of the group's tuples; those outside the
  inner cube draw *medium* values from N((µ+10)/2, 10);
* the **inner cube** holds 25% of the outer cube's tuples and draws
  *high* values from N(µ, 10);
* the remaining 75% draw normal values and scatter uniformly over the
  whole domain (so they may fall inside the cubes — that is what makes
  Hard hard).

``µ`` controls difficulty: Easy = 80, Hard = 30.  Values are clipped at
zero so SUM's non-negativity ``check`` passes and the MC partitioner is
applicable, as the paper's use of an "independent anti-monotonic
aggregate" requires.

Each tuple's value-distribution label (normal / medium / high) is
recorded; following Section 8.3.1, the *inner* ground truth is the high
tuples and the *outer* ground truth is high + medium.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aggregates.standard import Sum
from repro.core.problem import ScorpionQuery
from repro.errors import DatasetError
from repro.query.groupby import GroupByQuery
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table

LABEL_NORMAL = 0
LABEL_MEDIUM = 1
LABEL_HIGH = 2


@dataclass(frozen=True)
class SynthConfig:
    """Parameters of one SYNTH instance."""

    n_dims: int = 2
    n_groups: int = 10
    tuples_per_group: int = 2000
    #: Mean of the high-outlier value distribution (Easy 80, Hard 30).
    mu: float = 80.0
    normal_mean: float = 10.0
    value_std: float = 10.0
    outer_fraction: float = 0.25
    inner_fraction_of_outer: float = 0.25
    domain_lo: float = 0.0
    domain_hi: float = 100.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_dims < 1:
            raise DatasetError(f"n_dims must be >= 1, got {self.n_dims}")
        if self.n_groups < 2:
            raise DatasetError(f"n_groups must be >= 2, got {self.n_groups}")
        if self.tuples_per_group < 4:
            raise DatasetError("tuples_per_group must be >= 4")
        if not 0 < self.outer_fraction < 1 or not 0 < self.inner_fraction_of_outer < 1:
            raise DatasetError("cube fractions must be in (0, 1)")
        if self.domain_lo >= self.domain_hi:
            raise DatasetError("domain_lo must be < domain_hi")

    @property
    def medium_mean(self) -> float:
        """Medium outliers draw from N((µ + normal_mean) / 2, σ)."""
        return (self.mu + self.normal_mean) / 2.0

    @property
    def dimension_names(self) -> tuple[str, ...]:
        return tuple(f"a{i + 1}" for i in range(self.n_dims))


@dataclass
class SynthDataset:
    """A generated SYNTH instance with annotations and ground truth."""

    config: SynthConfig
    table: Table
    #: Group keys (``ad`` values) of the outlier / hold-out groups.
    outlier_keys: list[int]
    holdout_keys: list[int]
    #: Per-row label: 0 normal, 1 medium, 2 high.
    labels: np.ndarray = field(repr=False)
    #: Per-dimension (lo, hi) bounds of the planted cubes.
    outer_cube: list[tuple[float, float]] = field(default_factory=list)
    inner_cube: list[tuple[float, float]] = field(default_factory=list)

    def query(self) -> GroupByQuery:
        """The paper's ``SELECT SUM(av) … GROUP BY ad`` query."""
        return GroupByQuery("ad", Sum(), "av")

    def scorpion_query(self, c: float = 0.1, lam: float = 0.5) -> ScorpionQuery:
        """The annotated problem: outlier groups too high, rest held out."""
        return ScorpionQuery(
            table=self.table,
            query=self.query(),
            outliers=self.outlier_keys,
            holdouts=self.holdout_keys,
            error_vectors=+1.0,
            lam=lam,
            c=c,
        )

    # ------------------------------------------------------------------
    # Ground truth (Section 8.3.1: "we simply use the tuples in the inner
    # and outer cubes ... as surrogates for ground truth" — spatial
    # membership, including normal-valued tuples that happen to fall
    # inside the cubes)
    # ------------------------------------------------------------------
    def _cube_mask(self, cube: list[tuple[float, float]]) -> np.ndarray:
        mask = np.ones(len(self.table), dtype=bool)
        for dim, (lo, hi) in zip(self.config.dimension_names, cube):
            values = self.table.values(dim)
            mask &= (values >= lo) & (values <= hi)
        return mask

    def truth_inner(self) -> np.ndarray:
        """Mask over all rows: tuples spatially inside the inner cube."""
        return self._cube_mask(self.inner_cube)

    def truth_outer(self) -> np.ndarray:
        """Mask over all rows: tuples spatially inside the outer cube."""
        return self._cube_mask(self.outer_cube)

    def label_inner(self) -> np.ndarray:
        """Mask over all rows: tuples *drawn from* the high distribution
        (distribution-label variant of :meth:`truth_inner`)."""
        return self.labels == LABEL_HIGH

    def label_outer(self) -> np.ndarray:
        """Mask over all rows: tuples drawn from either outlier
        distribution."""
        return self.labels != LABEL_NORMAL

    def outlier_row_indices(self) -> np.ndarray:
        """Row indices belonging to outlier groups (``g_O``)."""
        mask = self.table.column("ad").membership_mask(self.outlier_keys)
        return np.flatnonzero(mask)


def _random_nested_cubes(config: SynthConfig, rng: np.random.Generator,
                         ) -> tuple[list[tuple[float, float]], list[tuple[float, float]]]:
    """Two random axis-aligned cubes, the second nested in the first.

    The outer side spans 40–70% of the domain per dimension and the inner
    side 25–50% of the outer (the paper's Figure 8 example is outer
    [20, 80], inner [40, 60]).
    """
    width = config.domain_hi - config.domain_lo
    outer: list[tuple[float, float]] = []
    inner: list[tuple[float, float]] = []
    for _ in range(config.n_dims):
        outer_side = rng.uniform(0.4, 0.7) * width
        outer_lo = config.domain_lo + rng.uniform(0.0, width - outer_side)
        inner_side = rng.uniform(0.25, 0.5) * outer_side
        inner_lo = outer_lo + rng.uniform(0.0, outer_side - inner_side)
        outer.append((outer_lo, outer_lo + outer_side))
        inner.append((inner_lo, inner_lo + inner_side))
    return outer, inner


def _uniform_in_box(rng: np.random.Generator, box: list[tuple[float, float]],
                    count: int) -> np.ndarray:
    columns = [rng.uniform(lo, hi, count) for lo, hi in box]
    return np.column_stack(columns) if columns else np.empty((count, 0))


def _uniform_in_shell(rng: np.random.Generator, outer: list[tuple[float, float]],
                      inner: list[tuple[float, float]], count: int) -> np.ndarray:
    """Uniform points inside ``outer`` but outside ``inner`` (rejection
    sampling; the inner cube is at most a quarter of the outer per side,
    so acceptance is high)."""
    points = np.empty((count, len(outer)))
    filled = 0
    while filled < count:
        batch = _uniform_in_box(rng, outer, max(count - filled, 16) * 2)
        in_inner = np.ones(len(batch), dtype=bool)
        for dim, (lo, hi) in enumerate(inner):
            in_inner &= (batch[:, dim] >= lo) & (batch[:, dim] <= hi)
        accepted = batch[~in_inner]
        take = min(len(accepted), count - filled)
        points[filled:filled + take] = accepted[:take]
        filled += take
    return points


def generate_synth(config: SynthConfig) -> SynthDataset:
    """Generate a SYNTH instance per the Section 8.1 recipe."""
    rng = np.random.default_rng(config.seed)
    outer, inner = _random_nested_cubes(config, rng)
    n_groups = config.n_groups
    per_group = config.tuples_per_group
    n_outlier_groups = n_groups // 2
    outlier_keys = list(range(n_outlier_groups))
    holdout_keys = list(range(n_outlier_groups, n_groups))

    group_col: list[int] = []
    dims_rows: list[np.ndarray] = []
    values: list[np.ndarray] = []
    labels: list[np.ndarray] = []

    domain_box = [(config.domain_lo, config.domain_hi)] * config.n_dims
    n_outer = int(round(config.outer_fraction * per_group))
    n_inner = int(round(config.inner_fraction_of_outer * n_outer))
    n_medium = n_outer - n_inner
    n_normal = per_group - n_outer

    for key in range(n_groups):
        if key in outlier_keys:
            high_points = _uniform_in_box(rng, inner, n_inner)
            medium_points = _uniform_in_shell(rng, outer, inner, n_medium)
            normal_points = _uniform_in_box(rng, domain_box, n_normal)
            points = np.vstack([high_points, medium_points, normal_points])
            group_values = np.concatenate([
                rng.normal(config.mu, config.value_std, n_inner),
                rng.normal(config.medium_mean, config.value_std, n_medium),
                rng.normal(config.normal_mean, config.value_std, n_normal),
            ])
            group_labels = np.concatenate([
                np.full(n_inner, LABEL_HIGH),
                np.full(n_medium, LABEL_MEDIUM),
                np.full(n_normal, LABEL_NORMAL),
            ])
        else:
            points = _uniform_in_box(rng, domain_box, per_group)
            group_values = rng.normal(config.normal_mean, config.value_std, per_group)
            group_labels = np.full(per_group, LABEL_NORMAL)
        group_col.extend([key] * per_group)
        dims_rows.append(points)
        values.append(group_values)
        labels.append(group_labels)

    dims = np.vstack(dims_rows)
    specs = [ColumnSpec("ad", ColumnKind.DISCRETE)]
    specs += [ColumnSpec(name, ColumnKind.CONTINUOUS) for name in config.dimension_names]
    specs.append(ColumnSpec("av", ColumnKind.CONTINUOUS))
    schema = Schema(specs)
    data = {"ad": group_col, "av": np.clip(np.concatenate(values), 0.0, None)}
    for i, name in enumerate(config.dimension_names):
        data[name] = dims[:, i]
    table = Table.from_columns(schema, data)
    return SynthDataset(
        config=config,
        table=table,
        outlier_keys=outlier_keys,
        holdout_keys=holdout_keys,
        labels=np.concatenate(labels),
        outer_cube=outer,
        inner_cube=inner,
    )


def make_synth(n_dims: int, difficulty: str, tuples_per_group: int = 2000,
               seed: int = 0) -> SynthDataset:
    """Named instances matching the paper, e.g. ``make_synth(2, "hard")``
    is SYNTH-2D-Hard (µ = 30); ``"easy"`` is µ = 80."""
    difficulty = difficulty.lower()
    if difficulty == "easy":
        mu = 80.0
    elif difficulty == "hard":
        mu = 30.0
    else:
        raise DatasetError(f"difficulty must be 'easy' or 'hard', got {difficulty!r}")
    return generate_synth(SynthConfig(
        n_dims=n_dims, mu=mu, tuples_per_group=tuples_per_group, seed=seed))
