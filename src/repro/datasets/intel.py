"""Simulator for the Intel Lab sensor trace (paper Section 8.1, INTEL).

The original download (2.3M readings from 61 motes) is unavailable
offline, so this module generates a statistically matched trace with the
same schema and — critically — the same two failure structures the
paper's workloads ask Scorpion to explain:

* **Workload 1 ("sensor 15 dies")**: during its failure window sensor 15
  emits >100°C readings whose magnitude correlates with a characteristic
  low-voltage band ([2.307, 2.33]) and low light, matching the predicate
  the paper reports (``light ∈ [0, 923] & voltage ∈ [2.307, 2.33] &
  sensorid = 15``).
* **Workload 2 ("sensor 18 loses power")**: sensor 18's battery decays,
  voltage drops below 2.4, temperatures climb to 90–122°C and peak when
  light is between 283 and 354 lux (the paper's ``light ∈ [283, 354] &
  sensorid = 18``).

Both workloads use the paper's query template::

    SELECT stddev(temp) FROM readings GROUP BY hour

Hours where the failing sensor is active become the user's outliers
("too high"), normal hours become hold-outs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aggregates.standard import StdDev
from repro.core.problem import ScorpionQuery
from repro.errors import DatasetError
from repro.query.groupby import GroupByQuery
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table


@dataclass(frozen=True)
class IntelConfig:
    """Parameters of the simulated deployment."""

    workload: int = 1
    n_sensors: int = 61
    n_hours: int = 33
    readings_per_sensor_hour: int = 8
    #: Hour (inclusive) at which the failure starts.
    failure_start: int = 13
    #: Hours the failure lasts (w1: 20 outlier hours; w2 uses longer runs).
    failure_hours: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workload not in (1, 2):
            raise DatasetError(f"workload must be 1 or 2, got {self.workload}")
        if self.n_sensors < 2:
            raise DatasetError("need at least 2 sensors")
        if self.n_sensors < self.failing_sensor:
            raise DatasetError(
                f"workload {self.workload} needs sensor {self.failing_sensor} "
                f"to exist; n_sensors={self.n_sensors} is too small"
            )
        if self.failure_start + self.failure_hours > self.n_hours:
            raise DatasetError("failure window exceeds the simulated span")
        if self.failure_start < 1:
            raise DatasetError("failure_start must leave at least one normal hour")

    @property
    def failing_sensor(self) -> int:
        return 15 if self.workload == 1 else 18


@dataclass
class IntelDataset:
    """A simulated trace plus the paper's workload annotations."""

    config: IntelConfig
    table: Table
    outlier_keys: list[int]
    holdout_keys: list[int]
    #: Mask over rows: readings produced by the failure itself (used as
    #: ground truth when scoring predicates).
    failure_mask: np.ndarray = field(repr=False)

    def query(self, start_hour: int | None = None,
              end_hour: int | None = None) -> GroupByQuery:
        """The paper's template: ``SELECT stddev(temp) FROM readings
        [WHERE start ≤ hour ≤ end] GROUP BY hour``."""
        where = None
        if start_hour is not None or end_hour is not None:
            lo = start_hour if start_hour is not None else 0
            hi = end_hour if end_hour is not None else self.config.n_hours - 1

            def where(table, lo=lo, hi=hi):
                hours = table.values("hour")
                return np.asarray([lo <= h <= hi for h in hours], dtype=bool)

        return GroupByQuery("hour", StdDev(), "temp", where=where)

    def outlier_row_indices(self) -> np.ndarray:
        """Row indices belonging to the outlier hours (``g_O``)."""
        mask = self.table.column("hour").membership_mask(self.outlier_keys)
        return np.flatnonzero(mask)

    def scorpion_query(self, c: float = 0.5, lam: float = 0.5,
                       attributes: tuple[str, ...] = ("sensorid", "voltage",
                                                      "humidity", "light"),
                       ) -> ScorpionQuery:
        """The annotated problem (outlier hours too high).

        ``attributes`` defaults to the four explanation attributes the
        paper uses (sensorid, humidity, light, voltage).
        """
        return ScorpionQuery(
            table=self.table,
            query=self.query(),
            outliers=self.outlier_keys,
            holdouts=self.holdout_keys,
            error_vectors=+1.0,
            lam=lam,
            c=c,
            attributes=attributes,
        )


def _diurnal_temperature(hour_of_day: np.ndarray) -> np.ndarray:
    """Lab temperature swinging around 19°C, peaking mid-afternoon."""
    return 19.0 + 4.0 * np.sin((hour_of_day - 9.0) / 24.0 * 2.0 * np.pi)


def _daylight(hour_of_day: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Lux profile: dark nights, ~150–600 lux office daylight."""
    daylight = np.clip(np.sin((hour_of_day - 6.0) / 12.0 * np.pi), 0.0, None)
    base = 520.0 * daylight + 3.0
    return base * rng.uniform(0.7, 1.3, len(hour_of_day))


def generate_intel(config: IntelConfig) -> IntelDataset:
    """Generate the simulated trace for the configured workload."""
    rng = np.random.default_rng(config.seed + config.workload * 1000)
    sensors = np.arange(1, config.n_sensors + 1)
    sensor_offset = rng.normal(0.0, 0.8, config.n_sensors)
    sensor_voltage0 = rng.uniform(2.62, 2.75, config.n_sensors)

    hours_col: list[int] = []
    sensor_col: list[int] = []
    voltage_col: list[float] = []
    humidity_col: list[float] = []
    light_col: list[float] = []
    temp_col: list[float] = []
    failure_flags: list[bool] = []

    failing = config.failing_sensor
    fail_lo = config.failure_start
    fail_hi = config.failure_start + config.failure_hours  # exclusive

    for hour in range(config.n_hours):
        hour_of_day = hour % 24
        for s_index, sensor in enumerate(sensors):
            n = config.readings_per_sensor_hour
            hod = np.full(n, float(hour_of_day))
            temp = (_diurnal_temperature(hod) + sensor_offset[s_index]
                    + rng.normal(0.0, 0.4, n))
            light = _daylight(hod, rng)
            voltage = (sensor_voltage0[s_index] - 0.0008 * hour
                       + rng.normal(0.0, 0.004, n))
            in_failure = (sensor == failing and fail_lo <= hour < fail_hi)
            if in_failure:
                if config.workload == 1:
                    # Dying sensor: garbage >100°C readings; its voltage
                    # regulator sits in a tell-tale band and its light
                    # sensor reads low.
                    voltage = rng.uniform(2.307, 2.33, n)
                    light = rng.uniform(0.0, 250.0, n)
                    # ~20°C hotter when voltage (and light) are lower.
                    volt_drop = (2.33 - voltage) / (2.33 - 2.307)
                    light_drop = 1.0 - light / 250.0
                    temp = (103.0 + 10.0 * volt_drop + 10.0 * light_drop
                            + rng.normal(0.0, 1.5, n))
                else:
                    # Battery loss: low decaying voltage, 90–122°C readings
                    # peaking when light falls in [283, 354] lux.
                    progress = (hour - fail_lo) / max(config.failure_hours - 1, 1)
                    voltage = (2.38 - 0.06 * progress
                               + rng.normal(0.0, 0.004, n))
                    light = rng.uniform(150.0, 500.0, n)
                    in_band = (light >= 283.0) & (light <= 354.0)
                    temp = np.where(
                        in_band,
                        rng.uniform(115.0, 122.0, n),
                        rng.uniform(90.0, 108.0, n),
                    )
            humidity = (42.0 - 0.8 * (temp - 19.0) + rng.normal(0.0, 2.0, n))
            humidity = np.clip(humidity, 0.0, 100.0)
            hours_col.extend([hour] * n)
            sensor_col.extend([int(sensor)] * n)
            voltage_col.extend(voltage.tolist())
            humidity_col.extend(humidity.tolist())
            light_col.extend(light.tolist())
            temp_col.extend(temp.tolist())
            failure_flags.extend([in_failure] * n)

    schema = Schema([
        ColumnSpec("hour", ColumnKind.DISCRETE),
        ColumnSpec("sensorid", ColumnKind.DISCRETE),
        ColumnSpec("voltage", ColumnKind.CONTINUOUS),
        ColumnSpec("humidity", ColumnKind.CONTINUOUS),
        ColumnSpec("light", ColumnKind.CONTINUOUS),
        ColumnSpec("temp", ColumnKind.CONTINUOUS),
    ])
    table = Table.from_columns(schema, {
        "hour": hours_col,
        "sensorid": sensor_col,
        "voltage": voltage_col,
        "humidity": humidity_col,
        "light": light_col,
        "temp": temp_col,
    })
    outlier_keys = list(range(fail_lo, fail_hi))
    holdout_keys = [h for h in range(config.n_hours) if h not in outlier_keys]
    return IntelDataset(
        config=config,
        table=table,
        outlier_keys=outlier_keys,
        holdout_keys=holdout_keys,
        failure_mask=np.asarray(failure_flags, dtype=bool),
    )


def make_intel(workload: int, readings_per_sensor_hour: int = 8,
               seed: int = 0) -> IntelDataset:
    """The paper's two workloads at their reported annotation sizes:
    w1 = 20 outlier hours + 13 hold-outs, w2 = 138 outliers + 21
    hold-outs.  ``readings_per_sensor_hour`` scales the row count."""
    if workload == 1:
        config = IntelConfig(workload=1, n_hours=33, failure_start=13,
                             failure_hours=20,
                             readings_per_sensor_hour=readings_per_sensor_hour,
                             seed=seed)
    elif workload == 2:
        config = IntelConfig(workload=2, n_hours=159, failure_start=21,
                             failure_hours=138,
                             readings_per_sensor_hour=readings_per_sensor_hour,
                             seed=seed)
    else:
        raise DatasetError(f"workload must be 1 or 2, got {workload}")
    return generate_intel(config)
