"""Self-healing policy for the parallel scoring pool.

Before ISSUE 9, any pool failure flipped the scorer to serial forever
(`_disable_parallel`).  :class:`ParallelRecovery` replaces that with
the standard resilience triad:

* **bounded retry with exponential backoff** — a failed batch rebuilds
  the pool and retries up to ``SCORPION_SHARD_RETRIES`` times, sleeping
  ``SCORPION_POOL_BACKOFF * 2**attempt`` seconds between attempts;
* **a restart budget per window** — at most ``SCORPION_POOL_RESTARTS``
  pool restarts per ``SCORPION_POOL_WINDOW`` seconds; exhausting the
  budget *opens the circuit*;
* **a cooldown circuit breaker** — while open, batches run serial
  (degraded, counted in ``scorpion_degraded_batches_total``) without
  touching the pool; after ``SCORPION_POOL_COOLDOWN`` seconds the next
  batch *half-opens* the circuit and probes parallel once.  A
  successful probe closes the circuit (full parallel resumes); a
  failed probe re-opens it for another cooldown.

The policy object is pure bookkeeping — it never touches the pool
itself — so the scorer stays the single owner of executor lifetime,
and tests can drive the state machine with an injected clock/sleep.
"""

from __future__ import annotations

import os
import time
from typing import Callable

__all__ = [
    "ParallelRecovery",
    "DEFAULT_SHARD_RETRIES",
    "DEFAULT_POOL_RESTARTS",
    "DEFAULT_POOL_WINDOW",
    "DEFAULT_POOL_COOLDOWN",
    "DEFAULT_BACKOFF_BASE",
]

#: Retries per failed batch (each retry restarts the pool).
DEFAULT_SHARD_RETRIES = 2
#: Pool restarts allowed per window before the circuit opens.
DEFAULT_POOL_RESTARTS = 3
#: Width of the restart-budget window, seconds.
DEFAULT_POOL_WINDOW = 30.0
#: Seconds the circuit stays open before a half-open parallel probe.
DEFAULT_POOL_COOLDOWN = 5.0
#: Base backoff sleep, seconds (doubled per retry attempt).
DEFAULT_BACKOFF_BASE = 0.05


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    try:
        return float(raw) if raw else default
    except ValueError:
        return default


class ParallelRecovery:
    """Retry / restart-budget / circuit-breaker bookkeeping for one
    scorer's pool (see module docstring for the knobs)."""

    def __init__(self,
                 retries: int | None = None,
                 restarts: int | None = None,
                 window: float | None = None,
                 cooldown: float | None = None,
                 backoff_base: float | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        self.retries = (retries if retries is not None
                        else _env_int("SCORPION_SHARD_RETRIES",
                                      DEFAULT_SHARD_RETRIES))
        self.restarts = (restarts if restarts is not None
                         else _env_int("SCORPION_POOL_RESTARTS",
                                       DEFAULT_POOL_RESTARTS))
        self.window = (window if window is not None
                       else _env_float("SCORPION_POOL_WINDOW",
                                       DEFAULT_POOL_WINDOW))
        self.cooldown = (cooldown if cooldown is not None
                         else _env_float("SCORPION_POOL_COOLDOWN",
                                         DEFAULT_POOL_COOLDOWN))
        self.backoff_base = (backoff_base if backoff_base is not None
                             else _env_float("SCORPION_POOL_BACKOFF",
                                             DEFAULT_BACKOFF_BASE))
        self._clock = clock
        self._sleep = sleep
        #: monotonic stamps of recent pool failures (restart budget).
        self._failures: list[float] = []
        #: when the circuit opened, or None while closed.
        self._opened_at: float | None = None

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while the circuit is open (batches run serial)."""
        return self._opened_at is not None

    def allow_parallel(self) -> bool:
        """May the next batch touch the pool?

        True while the circuit is closed, and — once per cooldown —
        when an open circuit is due a half-open probe.
        """
        if self._opened_at is None:
            return True
        if self._clock() - self._opened_at >= self.cooldown:
            # Half-open: let one batch probe.  Failure re-opens (and
            # re-stamps) the circuit; success closes it.
            return True
        return False

    def record_failure(self) -> bool:
        """Count one pool failure; returns True if retrying is still
        within budget, False if the circuit just opened (give up and
        run this batch serial)."""
        now = self._clock()
        cutoff = now - self.window
        self._failures = [t for t in self._failures if t >= cutoff]
        self._failures.append(now)
        if len(self._failures) > self.restarts:
            self._opened_at = now
            return False
        return True

    def record_success(self) -> None:
        """A parallel batch completed: close the circuit and forget
        the failure history (a healed machine starts clean)."""
        self._failures.clear()
        self._opened_at = None

    def backoff(self, attempt: int) -> None:
        """Sleep the exponential backoff for retry ``attempt`` (0-based)."""
        delay = self.backoff_base * (2 ** attempt)
        if delay > 0:
            self._sleep(delay)

    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half_open"`` (for health)."""
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half_open"
        return "open"
