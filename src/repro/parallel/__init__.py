"""Shared-memory parallel scoring (the ``workers`` knob).

:class:`~repro.core.influence.InfluenceScorer.score_batch` is
embarrassingly parallel across its ``batch_chunk``-sized predicate
shards: every shard's influences depend only on the problem's read-only
arrays, and both batch kernels are row-deterministic, so sharding can
never change a result.  This package exploits that:

* :mod:`repro.parallel.shm` — packs the problem's big arrays into
  :mod:`multiprocessing.shared_memory` segments once, so workers map
  the same pages instead of pickling arrays per shard;
* :mod:`repro.parallel.kernel` — serializes the scorer's batch kernel
  (and pre-built prefix-aggregate index attributes) into a picklable
  spec and rebuilds a kernel-only scorer inside each worker;
* :mod:`repro.parallel.worker` — the per-shard entry point workers run;
* :mod:`repro.parallel.executor` — the persistent pool tying it
  together, with ordered reassembly and crash/timeout fallback.

The scorer's ``workers`` knob (constructor argument, the
``SCORPION_WORKERS`` environment variable, ``Scorpion(workers=...)``,
or ``--workers`` on the CLI) selects the process count: ``1`` (the
default) keeps today's serial path, ``0`` means one worker per CPU.
Results are bit-for-bit identical at any worker count, and per-worker
scoring counters are merged back into the aggregate ``scorer_stats``.
"""

from repro.parallel.executor import (
    DEFAULT_TASK_TIMEOUT,
    ShardedScoringExecutor,
    resolve_workers,
)
from repro.parallel.kernel import (
    DiscreteIndexAttributeSpec,
    IndexAttributeSpec,
    KernelSpec,
    build_kernel_spec,
    build_worker_scorer,
    export_discrete_index_attribute,
    export_index_attribute,
)
from repro.parallel.recovery import ParallelRecovery
from repro.parallel.shm import (
    SegmentSpec,
    assert_no_segment_leaks,
    attach_segment,
    create_segment,
    live_segments,
)

__all__ = [
    "DEFAULT_TASK_TIMEOUT",
    "DiscreteIndexAttributeSpec",
    "IndexAttributeSpec",
    "KernelSpec",
    "ParallelRecovery",
    "SegmentSpec",
    "ShardedScoringExecutor",
    "assert_no_segment_leaks",
    "attach_segment",
    "build_kernel_spec",
    "build_worker_scorer",
    "create_segment",
    "export_discrete_index_attribute",
    "export_index_attribute",
    "live_segments",
    "resolve_workers",
]
