"""The sharded scoring executor: a persistent worker pool plus the
shared-memory segments its workers score against.

One :class:`ShardedScoringExecutor` serves one scorer/problem: the
scorer builds its :class:`~repro.parallel.kernel.KernelSpec` once,
:meth:`start` places the big arrays in shared memory and spins up the
pool (each worker attaches and rebuilds the kernel in its initializer),
and every parallel ``score_batch`` call turns into one :meth:`run` of
routed shards.  Results come back in submission order, so reassembly in
the scorer is a plain ``zip`` and the output is bit-for-bit identical
to the serial chunk loop.

Failure policy: any pool-level failure — a worker crash
(``BrokenProcessPool``), a shard exceeding ``task_timeout``, a
submission error — aborts the pool (terminating live workers so a hung
shard cannot hang the caller) and surfaces as one
:class:`~repro.errors.ParallelError`.  The scorer's
:class:`~repro.parallel.recovery.ParallelRecovery` policy decides what
happens next: bounded retries with a fresh pool, then a degraded
(serial) batch behind a cooldown circuit breaker that periodically
re-probes parallel — results are therefore always produced, and a
healthy machine heals back to parallel.  ``KeyboardInterrupt`` /
``SystemExit`` are never converted to :class:`ParallelError`: the
executor still aborts the pool (no hung workers, no leaked segments)
and re-raises them.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Sequence

from repro.errors import ParallelError
from repro.faults import fault_point
from repro.obs.metrics import REGISTRY
from repro.parallel import worker as _worker
from repro.parallel.kernel import KernelSpec
from repro.parallel.shm import destroy_segment

#: Per-shard wall-clock budget before the pool is declared hung
#: (override via ``SCORPION_TASK_TIMEOUT``, or the legacy
#: ``SCORPION_WORKER_TIMEOUT`` alias; ``0`` disables).
DEFAULT_TASK_TIMEOUT = 300.0


def resolve_workers(workers: int | None) -> int:
    """Resolve the ``workers`` knob to an effective process count.

    ``None`` reads ``SCORPION_WORKERS`` (absent → 1, today's serial
    path); ``0`` means one worker per CPU (``os.cpu_count()``);
    positive integers are taken as-is.  ``1`` means serial in-process
    scoring — no pool, no shared memory.
    """
    if workers is None:
        raw = os.environ.get("SCORPION_WORKERS", "").strip()
        workers = int(raw) if raw else 1
    workers = int(workers)
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ParallelError(f"workers must be >= 0, got {workers}")
    return workers


def _resolve_timeout(task_timeout: float | None) -> float | None:
    if task_timeout is None:
        raw = os.environ.get("SCORPION_TASK_TIMEOUT", "").strip()
        if not raw:
            # Legacy alias from before the knob was documented.
            raw = os.environ.get("SCORPION_WORKER_TIMEOUT", "").strip()
            if raw:
                warnings.warn(
                    "SCORPION_WORKER_TIMEOUT is deprecated and will be "
                    "removed in the release after 2026-12; set "
                    "SCORPION_TASK_TIMEOUT instead",
                    DeprecationWarning, stacklevel=3)
        task_timeout = float(raw) if raw else DEFAULT_TASK_TIMEOUT
    return task_timeout if task_timeout > 0 else None


class ShardedScoringExecutor:
    """Persistent process pool scoring predicate shards against a
    shared-memory problem image.

    Parameters
    ----------
    workers:
        Worker process count (already resolved; must be >= 2 to be
        useful, but 1 is accepted for testing).
    task_timeout:
        Per-shard result deadline in seconds (None → the
        ``SCORPION_TASK_TIMEOUT`` environment variable, falling back
        to the legacy ``SCORPION_WORKER_TIMEOUT`` alias, else
        :data:`DEFAULT_TASK_TIMEOUT`; ``<= 0`` waits forever).
    """

    def __init__(self, workers: int, task_timeout: float | None = None):
        self.workers = int(workers)
        self.task_timeout = _resolve_timeout(task_timeout)
        self._pool: ProcessPoolExecutor | None = None
        self._segments: list[shared_memory.SharedMemory] = []

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._pool is not None

    def start(self, spec: KernelSpec,
              segments: Sequence[shared_memory.SharedMemory]) -> None:
        """Take ownership of ``segments`` and spin up the worker pool.

        Workers rebuild the kernel in their initializer, so the first
        shard a worker receives pays no per-shard setup.  ``fork`` is
        preferred when available (no module re-import, instant
        inheritance of the spec); the spec is fully picklable either
        way, so ``spawn``-only platforms work identically.
        """
        self._segments.extend(segments)
        if self._pool is not None:
            raise ParallelError("executor already started")
        try:
            fault_point("pool.start")
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_worker.initialize,
                initargs=(spec,),
            )
        except BaseException as exc:
            # Unlink the just-adopted segments even on interrupt — a
            # failed start must never leak shared memory.
            self.close()
            if not isinstance(exc, Exception):
                raise
            raise ParallelError(f"could not start worker pool: {exc}") from exc
        REGISTRY.counter(
            "scorpion_pool_starts_total",
            "Worker pools started (first start and every restart)").inc()

    def register_segment(self, shm: shared_memory.SharedMemory) -> None:
        """Adopt a later-created segment (e.g. an index attribute pack)
        so it is unlinked with the rest on :meth:`close`."""
        self._segments.append(shm)

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[tuple]) -> list[tuple]:
        """Execute ``run_shard(*task)`` for every task; results are
        returned in submission order.  Raises :class:`ParallelError` on
        any crash, timeout, or submission failure (after aborting the
        pool, so a hung worker cannot hang the caller)."""
        if self._pool is None:
            raise ParallelError("executor not started")
        try:
            futures = [self._pool.submit(_worker.run_shard, *task)
                       for task in tasks]
        except BaseException as exc:
            self._abort()
            if not isinstance(exc, Exception):
                raise  # KeyboardInterrupt/SystemExit: abort, then propagate
            raise ParallelError(f"could not submit shards: {exc}") from exc
        results = []
        try:
            for future in futures:
                results.append(future.result(timeout=self.task_timeout))
        except BaseException as exc:
            for future in futures:
                future.cancel()
            self._abort()
            if not isinstance(exc, Exception):
                raise  # KeyboardInterrupt/SystemExit: abort, then propagate
            raise ParallelError(f"worker shard failed: {exc!r}") from exc
        return results

    # ------------------------------------------------------------------
    def _abort(self) -> None:
        """Tear the pool down without waiting on (possibly hung) workers."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive teardown
            pass
        # ProcessPoolExecutor has no kill switch; terminate stragglers so
        # a hung shard cannot outlive the fallback decision.
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead workers
                pass

    def close(self) -> None:
        """Shut the pool down and unlink every owned segment (idempotent).
        Safe to call on a broken executor; live workers are terminated
        first so shared memory is never unlinked out from under a
        running shard on platforms where that matters.  Segments are
        unlinked in a ``finally``: even if pool shutdown itself raises
        (or is interrupted), no shared memory is leaked."""
        try:
            self._abort()
        finally:
            segments, self._segments = self._segments, []
            for shm in segments:
                destroy_segment(shm)
