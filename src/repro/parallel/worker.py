"""Worker-process entry points for the sharded scoring executor.

The process pool initializes each worker exactly once with
:func:`initialize` (rebuilding the kernel-only scorer around the
shared-memory views) and then feeds it :func:`run_shard` calls.  A
shard is one ``batch_chunk``-sized slice of a ``score_batch`` call,
already routed by the parent's :class:`~repro.index.IndexPlanner`:

* ``"masked"`` shards carry the predicates themselves; the worker
  builds the mask matrix with its own labeled evaluator and runs the
  scatter-add kernel — exactly the serial code path, so the returned
  influences are bit-for-bit what the parent would have computed;
* ``"indexed"`` / ``"indexed_set"`` shards carry only the single range
  or set clauses (the predicates stay in the parent) plus the specs of
  any pre-built index attribute views the worker has not installed yet;
* ``"indexed_conj"`` shards carry the parent-planned
  :class:`~repro.index.ConjunctionPlan` objects (probe side already
  chosen) plus the probe attributes' view specs.

Each call returns ``(influences, worker_counters)`` where the counters
are the kernel-internal :class:`ScorerStats` increments
(``incremental_deltas`` / ``full_recomputes``) the parent merges back,
keeping aggregate counters identical to a serial run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.faults import fault_point
from repro.parallel.kernel import (
    KernelSpec,
    build_worker_scorer,
    install_index_attribute,
)


@dataclass
class _WorkerState:
    scorer: object
    #: The owning process's resource-tracker PID (attach bookkeeping).
    owner_tracker_pid: int | None
    #: Attached SharedMemory blocks — referenced for the process's
    #: lifetime so the zero-copy views stay mapped.
    segments: list = field(default_factory=list)
    installed_attrs: set = field(default_factory=set)


_STATE: _WorkerState | None = None


def initialize(spec: KernelSpec) -> None:
    """Pool initializer: rebuild the batch kernel in this process."""
    global _STATE
    scorer, segments = build_worker_scorer(spec)
    _STATE = _WorkerState(scorer=scorer, owner_tracker_pid=spec.tracker_pid,
                          segments=segments)


def run_shard(kind: str, items: Sequence, ignore_holdouts: bool,
              attr_specs: tuple,
              group_range: tuple[int, int] | None = None,
              scalars: tuple[float, float, float] | None = None,
              ) -> tuple[object, dict[str, float]]:
    """Score one routed shard; see the module docstring.

    With ``group_range`` the shard is a (predicate-chunk ×
    group-range) *tile*: instead of final influences the worker returns
    ``(counts, removed)`` partial arrays for contexts ``[lo, hi)``
    only, which the parent's group-axis reduce step reassembles (see
    ``InfluenceScorer._reduce_group_tiles``) — the parent then runs the
    influence fold itself, so tile workers never fold and never count
    fold-side stats.

    ``scalars`` is the parent scorer's current ``(c, c_holdout, λ)``.
    The pool initializer bakes the spec's scalars into the worker
    scorer, but a resident scorer can be *rebound* to new scalars
    between batches while keeping the same warm pool — so every shard
    carries the live values and the worker re-points (and drops its
    memo, which bakes the old scalars in) when they changed.
    """
    state = _STATE
    assert state is not None, "worker used before initialize()"
    fault_point("worker.shard")
    shard_t0 = time.perf_counter()
    scorer = state.scorer

    def _counters() -> dict:
        counters = scorer.stats.worker_counters()
        # Wall-time stamps for the parent's tracer: perf_counter is
        # CLOCK_MONOTONIC (machine-wide on Linux), so the parent can
        # re-attach these as shard spans and derive queue wait from its
        # own submit stamp.  merge_worker_counters only folds the
        # WORKER_MERGED names, so stats totals are untouched.
        counters["shard_t0"] = shard_t0
        counters["shard_t1"] = time.perf_counter()
        return counters
    if scalars is not None and scalars != (scorer.c, scorer.c_holdout,
                                           scorer.lam):
        scorer.c, scorer.c_holdout, scorer.lam = scalars
        scorer.clear_memo()
    for attr_spec in attr_specs:
        key = (attr_spec.kind, attr_spec.attribute)
        if key not in state.installed_attrs:
            state.segments.append(install_index_attribute(
                scorer, attr_spec, state.owner_tracker_pid))
            state.installed_attrs.add(key)
    scorer.stats.reset()
    if group_range is not None:
        if kind == "masked":
            partial = scorer._partial_masked_chunk(items, ignore_holdouts,
                                                   group_range)
        elif kind == "indexed":
            partial = scorer._partial_index_chunk(
                [(None, clause) for clause in items], ignore_holdouts,
                group_range)
        elif kind == "indexed_set":
            partial = scorer._partial_set_chunk(
                [(None, clause) for clause in items], ignore_holdouts,
                group_range)
        elif kind == "indexed_conj":
            partial = scorer._partial_conj_chunk(
                [(None, plan) for plan in items], ignore_holdouts,
                group_range)
        else:  # pragma: no cover - guarded by the executor's task builder
            raise ValueError(f"unknown shard kind {kind!r}")
        return partial, _counters()
    if kind == "masked":
        values = scorer._score_masked_chunk(items, ignore_holdouts)
    elif kind == "indexed":
        values = scorer._score_clause_shard(items, ignore_holdouts)
    elif kind == "indexed_set":
        values = scorer._score_set_clause_shard(items, ignore_holdouts)
    elif kind == "indexed_conj":
        values = scorer._score_conjunction_shard(items, ignore_holdouts)
    else:  # pragma: no cover - guarded by the executor's task builder
        raise ValueError(f"unknown shard kind {kind!r}")
    return np.asarray(values, dtype=np.float64), _counters()
