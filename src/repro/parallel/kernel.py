"""Serializing a scorer's batch kernel into shared memory, and
rebuilding it inside a worker process.

:func:`build_kernel_spec` runs in the parent: it packs every large
array the batch-scoring kernels read — the stacked per-tuple aggregate
states, the labeled aggregate-attribute values, the context-id map, and
the labeled evaluator's attribute columns (continuous values and
factorized discrete codes) — into one shared-memory segment, and
collects the small per-group scalars (total values, error vectors,
total/mean states) plus the aggregate object into a picklable
:class:`KernelSpec`.

:func:`build_worker_scorer` runs once per worker (pool initializer): it
attaches the segment and reconstructs a *kernel-only*
:class:`~repro.core.influence.InfluenceScorer` around zero-copy views —
same classes, same methods, same arrays byte for byte — so a shard
scored in a worker runs exactly the code the serial path runs and
produces bit-for-bit identical influences.  The worker scorer has no
table, no query, and no caches: it only ever sees routed batch shards
(mask-matrix or index chunks), never the scalar/fallback paths.

Prefix-aggregate index views built in the parent are shipped the same
way, per attribute, via :func:`export_index_attribute` /
:func:`export_discrete_index_attribute` /
:func:`install_index_attribute` — the sorted orders, sorted values (or
code-bucket boundaries), and exact prefix (or per-bucket) states of
every group concatenated into one segment.  A worker that receives a
shard for an attribute nobody shipped simply builds the attribute
locally (stable argsort of identical values/codes is deterministic, so
the result is still bit-identical); shipping is a pure optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.parallel.shm import (
    SegmentSpec,
    attach_segment,
    create_segment,
    tracker_pid,
)

_STATES = "states"
_AGG_VALUES = "agg_values"
_CONTEXT_IDS = "context_ids"
_CONT = "cont:"
_CODES = "codes:"


@dataclass(frozen=True, eq=False)
class ContextSpec:
    """The small per-group scalars of one :class:`GroupContext` (its
    arrays live in the shared segment and are re-sliced by position)."""

    key: object
    size: int
    is_outlier: bool
    error_vector: float
    total_value: float
    total_state: np.ndarray | None
    mean_state: np.ndarray | None


@dataclass(frozen=True, eq=False)
class KernelSpec:
    """Everything a worker needs to rebuild the batch-scoring kernel."""

    segment: SegmentSpec
    contexts: tuple[ContextSpec, ...]
    outlier_cols: int
    lam: float
    c: float
    c_holdout: float
    perturbation: str
    aggregate: object
    incremental: bool
    batch_chunk: int
    continuous_attrs: tuple[str, ...]
    discrete_attrs: tuple[str, ...]
    code_of: dict[str, dict]
    has_index: bool
    #: Resource-tracker PID of the owning process (workers use it to
    #: decide whether their attach registrations need undoing; see
    #: :func:`repro.parallel.shm.attach_segment`).
    tracker_pid: int | None


@dataclass(frozen=True, eq=False)
class IndexAttributeSpec:
    """One continuous attribute's pre-built prefix-aggregate index views.

    ``segment`` packs, in labeled-slice order: every group's sorted row
    order (``order``), sorted attribute values (``values``), and — for
    groups on the exact prefix tier — the ``(size + 1, state_size)``
    prefix states concatenated row-wise (``prefix``).
    ``prefix_offsets[g] : prefix_offsets[g + 1]`` are group ``g``'s rows
    inside that concatenation (an empty span for gather-tier groups).
    """

    kind = "range"

    attribute: str
    segment: SegmentSpec
    prefix_offsets: tuple[int, ...]


@dataclass(frozen=True, eq=False)
class DiscreteIndexAttributeSpec:
    """One discrete attribute's pre-built code-bucket index views.

    ``segment`` packs, in labeled-slice order: every group's code-sorted
    row order (``order``), the groups' ``(n_codes + 1,)`` bucket
    boundary arrays concatenated (``offsets``), and — for groups on the
    exact bucket tier — the ``(n_codes, state_size)`` per-bucket summed
    states concatenated row-wise (``buckets``).
    ``bucket_offsets[g] : bucket_offsets[g + 1]`` are group ``g``'s rows
    inside that concatenation (an empty span for gather-tier groups).
    """

    kind = "discrete"

    attribute: str
    segment: SegmentSpec
    bucket_offsets: tuple[int, ...]
    n_codes: int


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def build_kernel_spec(scorer) -> tuple[KernelSpec,
                                       list[shared_memory.SharedMemory]]:
    """Pack ``scorer``'s batch kernel for worker reconstruction.

    Returns the picklable spec plus the shared-memory segments created
    (the caller owns them — typically handed to the executor, which
    unlinks them on close).  The scorer keeps using its original arrays;
    the one-time copy here is the only copy workers ever cause.
    """
    continuous, codes, code_of = scorer._labeled_evaluator.export_state()
    contexts = scorer.contexts
    arrays: dict[str, np.ndarray] = {
        _CONTEXT_IDS: scorer._context_ids,
        _AGG_VALUES: (np.concatenate([ctx.agg_values for ctx in contexts])
                      if contexts else np.empty(0, dtype=np.float64)),
    }
    if scorer._stacked_states is not None:
        arrays[_STATES] = scorer._stacked_states
    for attr, values in continuous.items():
        arrays[_CONT + attr] = values
    for attr, attr_codes in codes.items():
        arrays[_CODES + attr] = attr_codes
    shm, segment = create_segment(arrays)
    spec = KernelSpec(
        segment=segment,
        contexts=tuple(
            ContextSpec(
                key=ctx.key,
                size=ctx.size,
                is_outlier=ctx.is_outlier,
                error_vector=ctx.error_vector,
                total_value=ctx.total_value,
                total_state=ctx.total_state,
                mean_state=ctx.mean_state,
            )
            for ctx in contexts
        ),
        outlier_cols=scorer._outlier_cols,
        lam=scorer.lam,
        c=scorer.c,
        c_holdout=scorer.c_holdout,
        perturbation=scorer.perturbation,
        aggregate=scorer.aggregate,
        incremental=scorer._incremental,
        batch_chunk=scorer.batch_chunk,
        continuous_attrs=tuple(continuous),
        discrete_attrs=tuple(codes),
        code_of=code_of,
        has_index=scorer._index is not None,
        tracker_pid=tracker_pid(),
    )
    return spec, [shm]


def export_index_attribute(index, attribute: str,
                           ) -> tuple[shared_memory.SharedMemory,
                                      IndexAttributeSpec]:
    """Pack one attribute's built per-group index views into a segment."""
    per_group = index.ensure(attribute)
    orders = [group.order for group in per_group]
    values = [group.sorted_values for group in per_group]
    prefixes = [group.prefix for group in per_group]
    state_size = index.state_size
    offsets = [0]
    for prefix in prefixes:
        offsets.append(offsets[-1] + (0 if prefix is None else len(prefix)))
    prefix_all = (np.concatenate([p for p in prefixes if p is not None])
                  if offsets[-1]
                  else np.empty((0, state_size), dtype=np.float64))
    shm, segment = create_segment({
        "order": (np.concatenate(orders) if orders
                  else np.empty(0, dtype=np.int64)),
        "values": (np.concatenate(values) if values
                   else np.empty(0, dtype=np.float64)),
        "prefix": prefix_all,
    })
    return shm, IndexAttributeSpec(attribute, segment, tuple(offsets))


def export_discrete_index_attribute(index, attribute: str,
                                    ) -> tuple[shared_memory.SharedMemory,
                                               DiscreteIndexAttributeSpec]:
    """Pack one discrete attribute's built code-bucket views into a
    segment (the discrete counterpart of :func:`export_index_attribute`)."""
    per_group = index.ensure_discrete(attribute)
    n_codes = index.n_codes(attribute)
    orders = [group.order for group in per_group]
    offsets = [group.offsets for group in per_group]
    buckets = [group.bucket_states for group in per_group]
    state_size = index.state_size
    rows = [0]
    for bucket in buckets:
        rows.append(rows[-1] + (0 if bucket is None else len(bucket)))
    buckets_all = (np.concatenate([b for b in buckets if b is not None])
                   if rows[-1]
                   else np.empty((0, state_size), dtype=np.float64))
    shm, segment = create_segment({
        "order": (np.concatenate(orders) if orders
                  else np.empty(0, dtype=np.int64)),
        "offsets": (np.concatenate(offsets) if offsets
                    else np.empty(0, dtype=np.int64)),
        "buckets": buckets_all,
    })
    return shm, DiscreteIndexAttributeSpec(attribute, segment, tuple(rows),
                                           n_codes)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def build_worker_scorer(spec: KernelSpec,
                        ) -> tuple["object", list[shared_memory.SharedMemory]]:
    """Reconstruct a kernel-only :class:`InfluenceScorer` from a spec.

    Imported objects are resolved lazily so this module can be imported
    without pulling in the scorer (the parent-side functions above only
    need shm plumbing).  Returns the scorer plus the attached segments,
    which must stay referenced for the scorer's lifetime.
    """
    from repro.backend import NumpyBackend
    from repro.core.influence import GroupContext, InfluenceScorer, ScorerStats
    from repro.index import IndexPlanner, PrefixAggregateIndex
    from repro.predicates.evaluator import ArrayMaskEvaluator

    shm, views = attach_segment(spec.segment, spec.tracker_pid)
    held = [shm]

    contexts: list[GroupContext] = []
    offset = 0
    stacked = views.get(_STATES)
    for ctx_spec in spec.contexts:
        start, stop = offset, offset + ctx_spec.size
        contexts.append(GroupContext(
            key=ctx_spec.key,
            # Worker contexts index the labeled concatenation, not the
            # full table (which workers never see); only the length is
            # consumed by kernel code.
            indices=np.arange(start, stop, dtype=np.int64),
            agg_values=views[_AGG_VALUES][start:stop],
            total_value=ctx_spec.total_value,
            error_vector=ctx_spec.error_vector,
            is_outlier=ctx_spec.is_outlier,
            total_state=ctx_spec.total_state,
            tuple_states=stacked[start:stop] if stacked is not None else None,
            mean_state=ctx_spec.mean_state,
        ))
        offset = stop

    scorer = InfluenceScorer.__new__(InfluenceScorer)
    scorer.query = None
    scorer.table = None
    scorer.aggregate = spec.aggregate
    scorer.lam = spec.lam
    scorer.c = spec.c
    scorer.c_holdout = spec.c_holdout
    scorer.perturbation = spec.perturbation
    scorer.stats = ScorerStats()
    # Workers always run the numpy reference engine: the parent ships
    # pre-built views and pre-summed totals, so any pushdown already
    # happened (and was counted) parent-side.
    scorer._backend = NumpyBackend()
    scorer._incremental = spec.incremental
    scorer.batch_chunk = spec.batch_chunk
    scorer._score_cache = None
    scorer._outlier_score_cache = None
    scorer._tuple_influence_cache = {}
    scorer.outlier_contexts = [c for c in contexts if c.is_outlier]
    scorer.holdout_contexts = [c for c in contexts if not c.is_outlier]
    slices = []
    offset = 0
    for ctx in contexts:
        slices.append((ctx, offset, offset + ctx.size))
        offset += ctx.size
    scorer._labeled_slices = slices
    scorer._n_labeled = offset
    scorer._context_ids = views[_CONTEXT_IDS]
    scorer._outlier_cols = spec.outlier_cols
    scorer._stacked_states = stacked
    scorer._labeled_evaluator = ArrayMaskEvaluator.from_state(
        {attr: views[_CONT + attr] for attr in spec.continuous_attrs},
        {attr: views[_CODES + attr] for attr in spec.discrete_attrs},
        spec.code_of,
    )
    scorer._index = None
    if spec.has_index:
        scorer._index = PrefixAggregateIndex(
            {attr: views[_CONT + attr] for attr in spec.continuous_attrs},
            [(start, stop) for _, start, stop in slices],
            [ctx.tuple_states for ctx in contexts],
            codes_by_attr={attr: views[_CODES + attr]
                           for attr in spec.discrete_attrs},
            code_tables=spec.code_of,
        )
    scorer._planner = IndexPlanner(scorer._index)
    scorer._index_builds_seen = 0
    scorer._index_seconds_seen = 0.0
    # Workers never parallelize recursively (and never re-plan routes
    # or re-tile groups — they execute parent decisions only).
    scorer.workers = 1
    scorer._parallel_disabled = True
    scorer._executor = None
    scorer._finalizer = None
    scorer._index_attr_specs = {}
    scorer._recovery = None
    scorer._pool_starts = 0
    scorer._span_evaluators = {}
    scorer.group_chunk = 0
    scorer.task_timeout = None
    return scorer, held


def install_index_attribute(scorer, spec, owner_tracker_pid: int | None = None,
                            ) -> shared_memory.SharedMemory:
    """Install one shipped attribute view (range or discrete, per the
    spec's ``kind``) into a worker scorer's index."""
    from repro.index.discrete import GroupDiscreteIndex
    from repro.index.prefix import GroupAttributeIndex

    shm, views = attach_segment(spec.segment, owner_tracker_pid)
    order_all = views["order"]
    if spec.kind == "discrete":
        offsets_all = views["offsets"]
        buckets_all = views["buckets"]
        rows = spec.bucket_offsets
        span = spec.n_codes + 1
        per_group = []
        for gi, (start, stop) in enumerate(scorer._index.group_slices):
            lo, hi = rows[gi], rows[gi + 1]
            per_group.append(GroupDiscreteIndex.from_arrays(
                order_all[start:stop],
                offsets_all[gi * span:(gi + 1) * span],
                buckets_all[lo:hi] if hi > lo else None,
            ))
        scorer._index.install_discrete_attribute(spec.attribute, per_group)
        return shm
    values_all = views["values"]
    prefix_all = views["prefix"]
    offsets = spec.prefix_offsets
    per_group = []
    for gi, (start, stop) in enumerate(scorer._index.group_slices):
        lo, hi = offsets[gi], offsets[gi + 1]
        per_group.append(GroupAttributeIndex.from_arrays(
            order_all[start:stop],
            values_all[start:stop],
            prefix_all[lo:hi] if hi > lo else None,
        ))
    scorer._index.install_attribute(spec.attribute, per_group)
    return shm
