"""Shared-memory array packing for the parallel scoring executor.

A *segment* is one :class:`multiprocessing.shared_memory.SharedMemory`
block holding several numpy arrays back to back (64-byte aligned), plus
a picklable :class:`SegmentSpec` describing how to find each array
inside it.  The parent process packs the scorer's big read-only arrays
(per-tuple states, attribute columns, prefix-aggregate index views)
once per problem; each worker attaches the block by name and maps the
same physical pages, so shipping a scoring shard to a worker costs zero
array copies and zero array re-pickling.

Worker-side views are marked read-only: the scoring kernels never write
to their inputs, and a stray write through a shared mapping would
corrupt every other worker's view of the problem.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping

import numpy as np

from repro.faults import fault_point

#: Byte alignment of each array inside a segment (cache-line sized, and
#: a multiple of every numpy itemsize used here).
ALIGNMENT = 64

#: Names of segments this process has created and not yet destroyed.
#: Crash-path hygiene is a hard contract (see ISSUE 9's chaos oracle):
#: every code path that can abandon a pool must still reach
#: :func:`destroy_segment`, and :func:`assert_no_segment_leaks` lets
#: tests prove it did.
_LIVE_SEGMENTS: set[str] = set()
_LIVE_LOCK = threading.Lock()


@dataclass(frozen=True)
class ArraySpec:
    """Where one array lives inside a segment."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SegmentSpec:
    """A shared-memory block's name plus the arrays packed into it.

    Picklable and tiny — this is what travels to workers (through pool
    ``initargs`` or inside a shard task); the array bytes themselves
    never leave the shared block.
    """

    name: str
    size: int
    arrays: tuple[ArraySpec, ...]


def _aligned(offset: int) -> int:
    return -(-offset // ALIGNMENT) * ALIGNMENT


def create_segment(arrays: Mapping[str, np.ndarray],
                   ) -> tuple[shared_memory.SharedMemory, SegmentSpec]:
    """Copy ``arrays`` into one freshly created shared-memory block.

    Returns the owning :class:`SharedMemory` (the caller must keep it
    alive and eventually ``close()`` + ``unlink()`` it) and the spec
    workers use to attach.  This is the single copy the executor pays
    per problem; everything downstream is zero-copy.
    """
    layout: list[tuple[str, np.ndarray, int]] = []
    offset = 0
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        layout.append((key, array, offset))
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    with _LIVE_LOCK:
        _LIVE_SEGMENTS.add(shm.name)
    specs = []
    for key, array, off in layout:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf,
                          offset=off)
        view[...] = array
        specs.append(ArraySpec(key, array.dtype.str, tuple(array.shape), off))
        del view  # drop the buffer reference so close()/unlink() can proceed
    return shm, SegmentSpec(shm.name, shm.size, tuple(specs))


def tracker_pid() -> int | None:
    """PID of this process's resource-tracker process (None if one
    cannot be started).  Forked children inherit the parent's tracker;
    spawned children run their own — which is exactly the distinction
    :func:`attach_segment` needs."""
    tracker = resource_tracker._resource_tracker
    try:
        tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker startup failure
        return None
    return getattr(tracker, "_pid", None)


def attach_segment(spec: SegmentSpec, owner_tracker_pid: int | None = None,
                   ) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Attach a segment by name and map its arrays as read-only views.

    The returned :class:`SharedMemory` must stay referenced as long as
    any view is in use (the mapping closes when it is collected).

    ``owner_tracker_pid`` is the resource-tracker PID of the owning
    (parent) process.  POSIX ``SharedMemory`` registers with the
    tracker even on attach, so a worker must undo that registration —
    but only when it runs its *own* tracker (``spawn`` children), where
    worker exit would otherwise unlink a block the parent still uses.
    Forked children share the parent's tracker, where the registration
    is an idempotent no-op and unregistering would strip the parent's
    own entry instead.
    """
    fault_point("shm.attach")
    shm = shared_memory.SharedMemory(name=spec.name)
    if owner_tracker_pid is None or tracker_pid() != owner_tracker_pid:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    views: dict[str, np.ndarray] = {}
    for array in spec.arrays:
        view = np.ndarray(array.shape, dtype=np.dtype(array.dtype),
                          buffer=shm.buf, offset=array.offset)
        view.flags.writeable = False
        views[array.key] = view
    return shm, views


def destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Best-effort close + unlink of an owned segment (idempotent)."""
    try:
        shm.close()
    except Exception:  # pragma: no cover - platform-specific teardown races
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # pragma: no cover - platform-specific teardown races
        pass
    with _LIVE_LOCK:
        _LIVE_SEGMENTS.discard(shm.name)


def live_segments() -> frozenset[str]:
    """Names of segments this process created and has not destroyed."""
    with _LIVE_LOCK:
        return frozenset(_LIVE_SEGMENTS)


def assert_no_segment_leaks(context: str = "",
                            baseline: frozenset[str] = frozenset()) -> None:
    """Assert every segment created in this process has been destroyed.

    The leak check behind the chaos oracle's "never a leaked shm
    segment" guarantee — call it after closing scorers/services (crash
    paths included).  Raises :class:`AssertionError` naming the leaked
    blocks; as a best-effort courtesy it unlinks them first so one
    failing test does not poison ``/dev/shm`` for the rest of the run.

    ``baseline`` (a prior :func:`live_segments` snapshot) excludes
    segments owned by scorers that are legitimately still alive — pass
    it when other fixtures in the process hold warm pools.
    """
    leaked = []
    for name in live_segments() - baseline:
        try:
            stale = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            # Unlinked behind our back (not a resource leak) — just
            # drop the stale bookkeeping entry.
            with _LIVE_LOCK:
                _LIVE_SEGMENTS.discard(name)
            continue
        destroy_segment(stale)
        leaked.append(name)
    if leaked:
        detail = f" after {context}" if context else ""
        raise AssertionError(
            f"leaked shared-memory segments{detail}: {sorted(leaked)}")
