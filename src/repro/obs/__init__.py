"""Observability layer: span tracing, metrics, structured logs.

Zero-dependency instrumentation for the resident explain pipeline:

* :mod:`repro.obs.trace` — a ``perf_counter_ns`` span tracer recording
  a per-explain span tree (build/checkout, partition phases, every
  ``score_batch`` with its routed tiers, merger rounds, parallel shard
  fan-out with worker-side wall time and queue wait).  Off by default;
  opt in with ``SCORPION_TRACE=1`` or ``--trace``.  Tracing is
  bit-for-bit invisible to results — the differential oracle runs a
  traced leg, and ``bench_obs_overhead.py`` pins the overhead.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and histograms that the service/index/pool layers publish
  into, exported as a snapshot dict or Prometheus text exposition.
* :mod:`repro.obs.logs` — one-JSON-object-per-line structured logging
  with per-request trace IDs for the ``--serve`` loop
  (``SCORPION_SLOW_MS`` flags slow requests).
"""

from repro.obs.logs import JsonLogger, new_trace_id
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Tracer,
    current_tracer,
    phase_totals,
    render_profile,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsRegistry",
    "REGISTRY",
    "Tracer",
    "current_tracer",
    "new_trace_id",
    "phase_totals",
    "render_profile",
    "span",
    "tracing_enabled",
]
