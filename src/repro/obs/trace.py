"""Span tracer for the explain pipeline.

A :class:`Tracer` records a tree of named spans timed with
``time.perf_counter_ns``.  The active tracer lives in a
:class:`contextvars.ContextVar`, so instrumented code never threads a
tracer argument around — call sites just write::

    with span("score_batch") as sp:
        ...
    if sp:
        sp.annotate(predicates=n)

When no tracer is active, :func:`span` returns a shared no-op singleton
whose ``__enter__``/``__exit__``/``annotate`` do nothing and which is
falsy — the ``if sp:`` guard means attribute dicts are never even built
on the disabled path, keeping the off-by-default overhead to one
ContextVar read per call site (``bench_obs_overhead.py`` pins it).

Worker processes cannot append to the parent's span list, so parallel
shards are timed worker-side with plain ``time.perf_counter()`` stamps
riding back in the (ignored-by-stats) counters dict and re-attached
parent-side with :meth:`Tracer.add_span`.  ``perf_counter`` is
``CLOCK_MONOTONIC`` on Linux — one machine-wide clock — so worker
stamps and the parent's submit time are directly comparable and the
difference is the shard's real queue wait.

Spans export as a flat JSON-ready list (``id`` / ``parent`` / ``name``
/ ``start_ns`` relative to the trace origin / ``dur_ns`` / ``attrs``)
on :attr:`ScorpionResult.trace <repro.core.scorpion.ScorpionResult>`;
:func:`render_profile` renders the tree as an indented text profile
(the ``--profile`` CLI flag) and :func:`phase_totals` folds it into a
per-phase seconds dict for the eval runner.
"""

from __future__ import annotations

import os
import time
from contextvars import ContextVar

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "phase_totals",
    "render_profile",
    "span",
    "tracing_enabled",
]

_ACTIVE: ContextVar["Tracer | None"] = ContextVar("scorpion_tracer",
                                                  default=None)

_TRUTHY = frozenset(("1", "true", "on", "yes"))


def tracing_enabled() -> bool:
    """``SCORPION_TRACE`` opt-in (off unless ``1``/``true``/``on``/``yes``)."""
    return os.environ.get("SCORPION_TRACE", "").strip().lower() in _TRUTHY


def current_tracer() -> "Tracer | None":
    """The tracer active in this context, or ``None`` when disabled."""
    return _ACTIVE.get()


class _NoopSpan:
    """Falsy do-nothing span returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


class Span:
    """One timed phase; a context manager that ends itself on exit."""

    __slots__ = ("tracer", "id", "parent", "name", "start_ns", "dur_ns",
                 "attrs")

    def __init__(self, tracer: "Tracer", span_id: int, parent: int | None,
                 name: str, start_ns: int):
        self.tracer = tracer
        self.id = span_id
        self.parent = parent
        self.name = name
        self.start_ns = start_ns
        self.dur_ns: int | None = None
        self.attrs: dict = {}

    def annotate(self, **attrs) -> None:
        """Attach key/value attributes (tier counts, sizes, outcomes)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> bool:
        self.tracer.end(self)
        return False


class Tracer:
    """Records one explain's span tree; activate around the request."""

    def __init__(self):
        # Two origin stamps taken back-to-back: ``ns`` anchors in-process
        # spans, ``s`` anchors worker-side perf_counter() stamps (same
        # CLOCK_MONOTONIC, float seconds) for add_span().
        self._origin_ns = time.perf_counter_ns()
        self._origin_s = self._origin_ns / 1e9
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0
        self._token = None

    # -- context-variable plumbing ----------------------------------
    def activate(self) -> "Tracer":
        """Install as the context's active tracer; returns ``self``."""
        self._token = _ACTIVE.set(self)
        return self

    def deactivate(self) -> None:
        """Uninstall (restores whatever was active before)."""
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None

    # -- span recording ---------------------------------------------
    def _now_ns(self) -> int:
        return time.perf_counter_ns() - self._origin_ns

    def begin(self, name: str) -> Span:
        """Open a span under the current stack top; close it via ``with``."""
        parent = self._stack[-1].id if self._stack else None
        sp = Span(self, self._next_id, parent, name, self._now_ns())
        self._next_id += 1
        self.spans.append(sp)
        self._stack.append(sp)
        return sp

    def end(self, sp: Span) -> None:
        sp.dur_ns = self._now_ns() - sp.start_ns
        if self._stack and self._stack[-1] is sp:
            self._stack.pop()

    def add_span(self, name: str, start_s: float, end_s: float,
                 attrs: dict | None = None) -> Span:
        """Attach an externally-timed span (worker ``perf_counter()``
        stamps, seconds) under the current stack top."""
        parent = self._stack[-1].id if self._stack else None
        start_ns = max(0, int((start_s - self._origin_s) * 1e9))
        sp = Span(self, self._next_id, parent, name, start_ns)
        sp.dur_ns = max(0, int((end_s - start_s) * 1e9))
        if attrs:
            sp.attrs.update(attrs)
        self._next_id += 1
        self.spans.append(sp)
        return sp

    # -- export ------------------------------------------------------
    def export(self) -> list[dict]:
        """Flat JSON-ready span list in recording order."""
        out = []
        for sp in self.spans:
            row = {"id": sp.id, "parent": sp.parent, "name": sp.name,
                   "start_ns": sp.start_ns,
                   "dur_ns": 0 if sp.dur_ns is None else sp.dur_ns}
            if sp.attrs:
                row["attrs"] = dict(sp.attrs)
            out.append(row)
        return out


def span(name: str):
    """Open a span on the active tracer, or the no-op singleton."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NOOP
    return tracer.begin(name)


def render_profile(spans: list[dict]) -> str:
    """Indented text profile of an exported span list (``--profile``)."""
    by_id = {sp["id"]: sp for sp in spans}
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for sp in spans:
        parent = sp.get("parent")
        if parent is None or parent not in by_id:
            roots.append(sp)
        else:
            children.setdefault(parent, []).append(sp)
    lines: list[str] = []

    def emit(sp: dict, depth: int) -> None:
        dur_ms = sp.get("dur_ns", 0) / 1e6
        label = "  " * depth + sp["name"]
        attrs = sp.get("attrs") or {}
        text = " ".join(f"{key}={value}" for key, value in attrs.items())
        line = f"{label:<34} {dur_ms:10.3f} ms"
        if text:
            line += f"  {text}"
        lines.append(line)
        for child in sorted(children.get(sp["id"], []),
                            key=lambda c: c["start_ns"]):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda sp: sp["start_ns"]):
        emit(root, 0)
    return "\n".join(lines)


def phase_totals(spans: list[dict]) -> dict[str, float]:
    """Total seconds per span name (``score_batch`` sums all batches)."""
    totals: dict[str, int] = {}
    for sp in spans:
        totals[sp["name"]] = totals.get(sp["name"], 0) + sp.get("dur_ns", 0)
    return {name: dur / 1e9 for name, dur in totals.items()}
