"""Process-wide metrics registry (counters, gauges, histograms).

One global :data:`REGISTRY` instance collects what the per-request
``scorer_stats`` dicts cannot: monotonic totals across requests, the
cache's live size, pool restarts — the process-level view a scraper
wants.  The service publishes into it on every request; tests pass a
fresh :class:`MetricsRegistry` for isolation.

Zero dependencies: :meth:`MetricsRegistry.render_prometheus` emits the
Prometheus text exposition format directly (``HELP``/``TYPE`` lines,
``_bucket{le=...}``/``_sum``/``_count`` for histograms) for the
``--metrics-file`` dump and the ``{"op": "metrics"}`` serve request,
and :meth:`MetricsRegistry.snapshot` returns plain dicts for
``ExplainService.stats()``.

All mutation is lock-guarded; the lock is per-registry and uncontended
in practice (one service thread, or short asyncio worker threads).
"""

from __future__ import annotations

import re
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Request-latency buckets (seconds): sub-10ms warm hits through
#: multi-second cold builds.
DEFAULT_LATENCY_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                           1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class Counter:
    """Monotonically increasing float total."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc({amount}))")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self):
        return self._value


class Gauge:
    """Point-in-time value (cache entries, resident bytes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self):
        return self._value


class Histogram:
    """Cumulative-bucket histogram in the Prometheus style."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs ascending buckets")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._total = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._total += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._total

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict:
        """``{"count", "sum", "buckets": {"le-label": cumulative}}``.

        Bucket keys are the Prometheus ``le`` labels as strings
        (``"+Inf"`` for the overflow bucket), so the snapshot is
        JSON-clean for ``ExplainService.stats()``.
        """
        with self._lock:
            out: dict = {"count": self._total, "sum": self._sum}
            cumulative = 0
            buckets = {}
            for bound, n in zip(self.buckets, self._counts):
                cumulative += n
                buckets[_fmt(bound)] = cumulative
            buckets["+Inf"] = self._total
            out["buckets"] = buckets
            return out


class MetricsRegistry:
    """Get-or-create home for named metrics.

    Re-requesting a name returns the existing metric (the first help
    string wins); re-requesting it as a different kind raises, so a
    counter can never silently shadow a gauge.
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        """The registered metric, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict:
        """``{name: value-or-histogram-dict}`` for every metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.name: m.snapshot() for m in metrics}

    def reset(self) -> None:
        """Drop every registration (test isolation for the global)."""
        with self._lock:
            self._metrics.clear()

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, one block per metric."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                for le, cumulative in snap["buckets"].items():
                    lines.append(
                        f'{metric.name}_bucket{{le="{le}"}} {cumulative}')
                lines.append(f"{metric.name}_sum {_fmt(snap['sum'])}")
                lines.append(f"{metric.name}_count {snap['count']}")
            else:
                lines.append(f"{metric.name} {_fmt(metric.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Integral floats as integers, everything else as repr."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


#: The process-wide default registry.
REGISTRY = MetricsRegistry()
