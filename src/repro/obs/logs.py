"""Structured JSON-lines logging for the serve loop.

One JSON object per line on a stream of the caller's choice (stderr by
default, so serve responses on stdout stay machine-parseable).  Every
record carries a wall-clock ``ts``, an ``event`` name, and — for
request-scoped events — the request's ``trace_id``, which also appears
in the serve response line so a log line and its response can be
joined.

``SCORPION_SLOW_MS`` sets a slow-request threshold: ``request_finish``
events whose ``elapsed_ms`` meets it gain ``"slow": true``, giving a
grep-able signal without a separate sampling pipeline.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import time

__all__ = ["JsonLogger", "new_trace_id"]

#: Process-unique prefix so trace IDs from concurrent serve processes
#: never collide in shared log storage.
_NONCE = f"{os.getpid():x}-{time.time_ns() & 0xFFFFFF:06x}"
_SEQUENCE = itertools.count(1)


def new_trace_id() -> str:
    """A short process-unique request ID, e.g. ``"1a2b-3f00ab-7"``."""
    return f"{_NONCE}-{next(_SEQUENCE)}"


def _slow_threshold_ms() -> float | None:
    raw = os.environ.get("SCORPION_SLOW_MS", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


class JsonLogger:
    """Writes one JSON log record per line.

    Parameters
    ----------
    stream:
        Target stream; ``None`` resolves to ``sys.stderr`` at log time
        (so pytest's capture replacement is honored).
    slow_ms:
        Slow-request threshold in milliseconds; ``None`` reads
        ``SCORPION_SLOW_MS`` (unset = no slow flagging).
    """

    def __init__(self, stream=None, slow_ms: float | None = None):
        self.stream = stream
        self.slow_ms = _slow_threshold_ms() if slow_ms is None else slow_ms

    def log(self, event: str, trace_id: str | None = None, **fields) -> None:
        record: dict = {"ts": round(time.time(), 6), "event": event}
        if trace_id is not None:
            record["trace_id"] = trace_id
        record.update(fields)
        if (self.slow_ms is not None and event == "request_finish"
                and record.get("elapsed_ms", 0) >= self.slow_ms):
            record["slow"] = True
        stream = self.stream if self.stream is not None else sys.stderr
        print(json.dumps(record, sort_keys=True, default=str), file=stream,
              flush=True)
