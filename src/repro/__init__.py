"""Scorpion — Explaining Away Outliers in Aggregate Queries.

A from-scratch reproduction of Wu & Madden (VLDB 2013).  Typical use::

    from repro import (ColumnKind, ColumnSpec, GroupByQuery, Schema,
                       Scorpion, ScorpionQuery, Table, get_aggregate)

    table = Table.from_rows(schema, rows)
    query = GroupByQuery("time", get_aggregate("avg"), "temp")
    problem = ScorpionQuery(table, query, outliers=["12PM", "1PM"],
                            holdouts=["11AM"], error_vectors=+1.0)
    result = Scorpion().explain(problem)
    print(result.best.predicate)

See DESIGN.md for the paper ↔ module map and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.aggregates import (
    AggregateFunction,
    Avg,
    Count,
    Max,
    Median,
    Min,
    StdDev,
    Sum,
    Variance,
    get_aggregate,
    list_aggregates,
    register_aggregate,
)
from repro.core import (
    CExplorer,
    DTPartitioner,
    Explanation,
    InfluenceScorer,
    MCPartitioner,
    Merger,
    NaivePartitioner,
    Scorpion,
    ScorpionQuery,
    ScorpionResult,
)
from repro.errors import (
    AggregateError,
    DatasetError,
    PartitionerError,
    PredicateError,
    QueryError,
    SchemaError,
    ScorpionError,
)
from repro.predicates import Domain, Predicate, RangeClause, SetClause
from repro.query import GroupByQuery, Provenance, ResultSet, parse_query
from repro.service import ExplainService
from repro.table import ColumnKind, ColumnSpec, Schema, Table, read_csv, write_csv

__version__ = "1.0.0"

__all__ = [
    "AggregateError",
    "AggregateFunction",
    "Avg",
    "CExplorer",
    "ColumnKind",
    "ColumnSpec",
    "Count",
    "DatasetError",
    "Domain",
    "DTPartitioner",
    "ExplainService",
    "Explanation",
    "GroupByQuery",
    "InfluenceScorer",
    "Max",
    "MCPartitioner",
    "Median",
    "Merger",
    "Min",
    "NaivePartitioner",
    "PartitionerError",
    "Predicate",
    "PredicateError",
    "Provenance",
    "QueryError",
    "RangeClause",
    "ResultSet",
    "Schema",
    "SchemaError",
    "Scorpion",
    "ScorpionError",
    "ScorpionQuery",
    "ScorpionResult",
    "SetClause",
    "StdDev",
    "Sum",
    "Table",
    "Variance",
    "get_aggregate",
    "list_aggregates",
    "parse_query",
    "read_csv",
    "register_aggregate",
    "write_csv",
]
