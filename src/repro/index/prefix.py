"""Prefix-aggregate indexes: sorted per-attribute views of each labeled
group with precomputed aggregate state, so a single-clause range
predicate ``lo ≤ attr < hi`` is answered with two binary searches
instead of an O(n) mask row.

For every (group, attribute) pair the index sorts the group's rows by
the attribute's value once.  A range predicate then matches exactly one
contiguous slice ``[a, b)`` of that order (``np.searchsorted`` with the
clause's bound semantics), which yields the matched count as ``b − a``
and the summed removed state through one of two tiers:

**Prefix tier (O(1) per predicate).**  When every state column of the
group is *exactly summable* — integer-valued floats whose absolute sum
stays below 2**52 — every partial sum of every subset is an exact
integer below 2**53, hence exactly representable and independent of
summation order.  The per-state prefix sums along the sorted order are
then exact, and ``prefix[b] − prefix[a]`` reproduces the scalar path's
masked in-order sum bit for bit.  COUNT states always qualify; SUM/AVG
and the STDDEV/VARIANCE ``[sum, sum²]`` states qualify whenever the
aggregate column holds bounded integers (sensor ids, counts, cents).

**Gather tier (O(log n + k) per predicate).**  For general float data a
prefix difference is *not* bitwise equal to a direct sum (float addition
is not associative), so the slice's row positions ``order[a:b]`` are
gathered, re-sorted into ascending row order, and scatter-added with the
same in-input-order ``np.bincount`` kernel the batched mask path uses.
That reproduces the scalar path's masked sum exactly — same rows, same
ascending-row accumulation order, same elementwise adds — while still
skipping the O(n) mask row and its full-row scan; only the ``k`` matched
rows are touched.

Both tiers share the binary-search slice and therefore the matched *row
set* is identical to the comparison mask (``searchsorted`` side
selection mirrors the clause's ``>= lo`` / ``< hi`` / ``<= hi``
semantics, and NaN attribute values sort to the tail where no finite
bound reaches them).

:class:`PrefixAggregateIndex` additionally hosts two further tiers:
discrete code buckets for single set clauses (see
:mod:`repro.index.discrete`) and probe-side execution of 2-clause
conjunctions (:meth:`PrefixAggregateIndex.conjunction_group_stats`).
See :mod:`repro.index.planner` for how predicates are routed here.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

import numpy as np

from repro.errors import PredicateError
from repro.faults import fault_point
from repro.index.discrete import GroupDiscreteIndex
from repro.obs.trace import span
from repro.predicates.clause import Clause, RangeClause, SetClause

#: Per-column absolute-sum budget under which integer-valued state
#: columns sum exactly: every subset sum is an integer of magnitude
#: below 2**52 < 2**53, so each partial sum — in any order — is exactly
#: representable and prefix differences equal direct masked sums.
EXACT_SUM_BUDGET = float(2 ** 52)


def exactly_summable(columns: np.ndarray) -> bool:
    """Whether every column of the ``(n, k)`` state matrix sums exactly
    in any order (see :data:`EXACT_SUM_BUDGET`).  Empty matrices qualify
    trivially; anything non-finite (NaN/inf states) does not."""
    if columns.size == 0:
        return True
    if not np.isfinite(columns).all():
        return False
    if not (columns == np.floor(columns)).all():
        return False
    return bool(np.abs(columns).sum(axis=0).max() < EXACT_SUM_BUDGET)


def expand_slices(order: np.ndarray, starts: np.ndarray, stops: np.ndarray,
                  owners: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten slices ``order[starts_i:stops_i]`` into parallel
    ``(owners, rows)`` arrays — one entry per covered row, tagged with
    the slice's owning predicate."""
    lengths = stops - starts
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    out_owners = np.repeat(owners, lengths)
    exclusive = np.cumsum(lengths) - lengths
    positions = (np.arange(total, dtype=np.int64)
                 + np.repeat(starts - exclusive, lengths))
    return out_owners, order[positions]


def accumulate_owner_rows(owners: np.ndarray, rows: np.ndarray, m: int,
                          n: int, tuple_states: np.ndarray,
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Per-owner matched counts and summed states over ``(owner, row)``
    pairs, accumulated in ascending row order within each owner —
    bit-for-bit equal to the scalar path's
    ``tuple_states[mask].sum(axis=0)`` per owner.

    The shared reduction of every non-exact index tier.  ``np.nonzero``
    hands the mask kernel its set bits in ascending row order;
    re-sorting each owner's rows by row position reproduces that exact
    accumulation order.  A single composite-key sort (owner-major,
    row-minor) beats a two-key lexsort; the int64 key never overflows
    for any realistic (batch, group) shape, and the lexsort fallback
    covers the rest.
    """
    k = tuple_states.shape[1]
    out = np.zeros((m, k), dtype=np.float64)
    counts = np.bincount(owners, minlength=m).astype(np.int64)
    if not len(rows):
        return counts, out
    if m <= (2 ** 62) // max(n, 1):
        composite = np.sort(owners * n + rows)
        owners = composite // n
        rows = composite - owners * n
    else:  # pragma: no cover - astronomically large batches only
        sorter = np.lexsort((rows, owners))
        owners = owners[sorter]
        rows = rows[sorter]
    gathered = tuple_states[rows]
    for j in range(k):
        out[:, j] = np.bincount(owners, weights=gathered[:, j],
                                minlength=m)
    return counts, out


def gather_slice_states(order: np.ndarray, starts: np.ndarray,
                        stops: np.ndarray, owners: np.ndarray, m: int,
                        tuple_states: np.ndarray) -> np.ndarray:
    """Summed states per owner over the rows ``order[starts_i:stops_i]``,
    accumulated in ascending row order within each owner — bit-for-bit
    equal to the scalar path's ``tuple_states[mask].sum(axis=0)``.

    The shared gather kernel of the range and discrete gather tiers:
    slices may be range-clause binary-search bounds (one slice per
    predicate) or set-clause code buckets (several slices per predicate,
    with ``owners`` mapping each slice back to its predicate).
    """
    flat_owners, rows = expand_slices(order, starts, stops, owners)
    _, out = accumulate_owner_rows(flat_owners, rows, m, len(order),
                                   tuple_states)
    return out


class GroupAttributeIndex:
    """One group's rows sorted along one attribute.

    ``order`` maps sorted positions to the group's local row positions;
    ``prefix`` holds the (n+1, k) exact prefix states when the group is
    on the prefix tier, else None (gather tier).
    """

    __slots__ = ("order", "sorted_values", "prefix")

    def __init__(self, values: np.ndarray, tuple_states: np.ndarray | None,
                 exact: bool):
        order = np.argsort(values, kind="stable").astype(np.int64, copy=False)
        self.order = order
        self.sorted_values = values[order]
        self.prefix: np.ndarray | None = None
        if exact and tuple_states is not None:
            prefix = np.zeros((len(values) + 1, tuple_states.shape[1]),
                              dtype=np.float64)
            np.cumsum(tuple_states[order], axis=0, out=prefix[1:])
            self.prefix = prefix

    @classmethod
    def from_arrays(cls, order: np.ndarray, sorted_values: np.ndarray,
                    prefix: np.ndarray | None) -> "GroupAttributeIndex":
        """Adopt already-built views (no sort, no cumsum) — used by the
        parallel executor to install shared-memory copies of a parent
        process's build, which are byte-identical by construction."""
        self = cls.__new__(cls)
        self.order = order
        self.sorted_values = sorted_values
        self.prefix = prefix
        return self

    @property
    def uses_prefix(self) -> bool:
        return self.prefix is not None

    def resident_bytes(self) -> int:
        """Bytes of view data this group's index holds (the sorted copy,
        the permutation, and the prefix matrix when on the prefix tier)."""
        total = self.order.nbytes + self.sorted_values.nbytes
        if self.prefix is not None:
            total += self.prefix.nbytes
        return int(total)

    def slice_bounds(self, los: np.ndarray, his: np.ndarray,
                     closed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sorted-position bounds ``[a, b)`` of each range.

        Mirrors :meth:`RangeClause.mask_values` exactly: ``a`` is the
        first position with ``value >= lo``; ``b`` is one past the last
        position with ``value <= hi`` (closed) or ``value < hi`` (open).
        NaN values sort past every finite bound and are never included.
        """
        a = np.searchsorted(self.sorted_values, los, side="left")
        b = np.where(
            closed,
            np.searchsorted(self.sorted_values, his, side="right"),
            np.searchsorted(self.sorted_values, his, side="left"),
        )
        return a, b

    def removed_states(self, a: np.ndarray, b: np.ndarray,
                       tuple_states: np.ndarray) -> np.ndarray:
        """Summed removed state per slice, bit-for-bit equal to the
        scalar path's ``tuple_states[mask].sum(axis=0)``.

        Prefix tier: one O(1) subtraction per slice (exact by the
        integer-summability argument above).  Gather tier: the slices'
        row positions are concatenated, re-sorted to ascending row order
        within each slice, and accumulated with the same in-input-order
        ``bincount`` scatter-add as the batched mask kernel.
        """
        if self.prefix is not None:
            return self.prefix[b] - self.prefix[a]
        m = len(a)
        return gather_slice_states(self.order, a, b,
                                   np.arange(m, dtype=np.int64), m,
                                   tuple_states)


class PrefixAggregateIndex:
    """Lazily built per-(group, attribute) sorted indexes over the
    labeled rows of one scorer/evaluator.

    Parameters
    ----------
    values_by_attr:
        Continuous attribute name → values over the *labeled* rows (all
        groups concatenated, outliers first) — the same arrays the
        labeled :class:`~repro.predicates.evaluator.ArrayMaskEvaluator`
        compares against, so slice membership equals mask membership.
    group_slices:
        ``(start, stop)`` column spans of each group inside the labeled
        concatenation, in context order.
    group_states:
        Each group's ``(size, state_size)`` per-tuple aggregate states
        (the incremental-removal cache); the removed-state queries
        require them for every group.
    codes_by_attr:
        Discrete attribute name → factorized integer codes over the
        labeled rows (the same code arrays the labeled evaluator's set
        clauses compare against, so bucket membership equals mask
        membership).  Optional; without it only the range tiers exist.
    code_tables:
        Discrete attribute name → value → code mapping (the labeled
        evaluator's factorization tables), required for every attribute
        in ``codes_by_attr`` — set-clause values are translated through
        it exactly like :meth:`ArrayMaskEvaluator.clause_mask` does.
    backend:
        Optional :class:`~repro.backend.base.ExecutionBackend` that
        builds the per-group sorted views (the prefix cumsums and
        code-bucket sums).  ``None`` keeps the original in-place numpy
        construction; a backend must return bit-identical arrays (the
        views are adopted via ``from_arrays``), so routing is invisible
        to every query tier.
    """

    def __init__(self, values_by_attr: Mapping[str, np.ndarray],
                 group_slices: Sequence[tuple[int, int]],
                 group_states: Sequence[np.ndarray],
                 codes_by_attr: Mapping[str, np.ndarray] | None = None,
                 code_tables: Mapping[str, dict] | None = None,
                 backend=None):
        if len(group_slices) != len(group_states):
            raise PredicateError(
                f"{len(group_slices)} group slices vs {len(group_states)} "
                "state matrices")
        self._values = dict(values_by_attr)
        self._codes = dict(codes_by_attr or {})
        self._code_tables = dict(code_tables or {})
        missing = [attr for attr in self._codes if attr not in self._code_tables]
        if missing:
            raise PredicateError(
                f"discrete attributes {missing} have codes but no "
                "value → code table")
        self._slices = [(int(start), int(stop)) for start, stop in group_slices]
        self._states = list(group_states)
        for (start, stop), states in zip(self._slices, self._states):
            if states is None or len(states) != stop - start:
                raise PredicateError(
                    f"group slice [{start}, {stop}) does not match its "
                    "state matrix")
        self._exact = [exactly_summable(states) for states in self._states]
        self._backend = backend
        self._by_attr: dict[str, list[GroupAttributeIndex]] = {}
        self._by_discrete: dict[str, list[GroupDiscreteIndex]] = {}
        #: Number of attributes indexed so far / seconds spent sorting
        #: and prefix-summing (surfaced through ``scorer_stats``).
        self.build_count = 0
        self.build_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self._slices)

    @property
    def n_labeled_rows(self) -> int:
        """Total labeled rows across all groups (the planner's
        profitability denominator)."""
        return sum(stop - start for start, stop in self._slices)

    @property
    def state_size(self) -> int:
        return self._states[0].shape[1] if self._states else 0

    @property
    def all_exact(self) -> bool:
        """Whether every group is exactly summable, i.e. single-clause
        queries never pay a per-matched-row gather (the cost model's
        ``exact`` flag)."""
        return all(self._exact)

    @property
    def attributes_built(self) -> tuple[str, ...]:
        """Attributes with built views (continuous first, then discrete)."""
        return tuple(self._by_attr) + tuple(self._by_discrete)

    def resident_bytes(self) -> int:
        """Bytes of *built view* data across all attributes and tiers.

        Deliberately excludes ``values_by_attr`` / ``codes_by_attr`` /
        ``group_states`` — those arrays are shared with (and accounted
        by) the owning scorer's evaluator and contexts; counting them
        here would double-bill the resident service's memory ledger.
        Views, by contrast, are owned copies (sorted values, permutation
        orders, prefix/bucket matrices) that exist only because the
        index was built.
        """
        total = 0
        for per_group in self._by_attr.values():
            total += sum(view.resident_bytes() for view in per_group)
        for per_group in self._by_discrete.values():
            total += sum(view.resident_bytes() for view in per_group)
        return int(total)

    @property
    def group_slices(self) -> tuple[tuple[int, int], ...]:
        """Each group's ``(start, stop)`` span inside the labeled
        concatenation — also each group's span inside any attribute's
        concatenated ``order`` / ``sorted_values`` arrays, since a
        group's sorted view has exactly the group's rows."""
        return tuple(self._slices)

    def install_attribute(self, attribute: str,
                          per_group: Sequence[GroupAttributeIndex]) -> None:
        """Adopt per-group indexes built elsewhere (a parent process's
        export; see :meth:`GroupAttributeIndex.from_arrays`).

        Does not touch ``build_count`` / ``build_seconds`` — installs
        are zero-cost adoptions, and counting them would double-count
        the one build the exporting process already recorded.
        """
        if not self.supports(attribute):
            raise PredicateError(
                f"no continuous attribute {attribute!r} in index")
        if len(per_group) != self.n_groups:
            raise PredicateError(
                f"{len(per_group)} group indexes for {self.n_groups} groups")
        self._by_attr[attribute] = list(per_group)

    def install_discrete_attribute(self, attribute: str,
                                   per_group: Sequence[GroupDiscreteIndex],
                                   ) -> None:
        """Adopt per-group discrete indexes built elsewhere (the
        discrete counterpart of :meth:`install_attribute`; same zero-cost
        adoption semantics, so build counters stay untouched)."""
        if not self.supports_discrete(attribute):
            raise PredicateError(
                f"no discrete attribute {attribute!r} in index")
        if len(per_group) != self.n_groups:
            raise PredicateError(
                f"{len(per_group)} group indexes for {self.n_groups} groups")
        self._by_discrete[attribute] = list(per_group)

    def supports(self, attribute: str) -> bool:
        """Whether the attribute is continuous over the labeled rows."""
        return attribute in self._values

    def supports_discrete(self, attribute: str) -> bool:
        """Whether the attribute is a factorized discrete column of the
        labeled rows."""
        return attribute in self._codes

    def supports_clause(self, clause: Clause) -> bool:
        """Whether the clause's attribute has the raw arrays its kind
        needs — a range needs the continuous values, a set clause the
        factorized codes.  Anything else has no prepared index view."""
        if isinstance(clause, RangeClause):
            return self.supports(clause.attribute)
        if isinstance(clause, SetClause):
            return self.supports_discrete(clause.attribute)
        return False

    def prefix_tier_groups(self, attribute: str) -> int:
        """How many of the attribute's group indexes answer in O(1)."""
        return sum(gi.uses_prefix for gi in self.ensure(attribute))

    def bucket_tier_groups(self, attribute: str) -> int:
        """How many of the discrete attribute's group indexes answer
        set clauses from exact per-bucket sums."""
        return sum(gi.uses_buckets for gi in self.ensure_discrete(attribute))

    def n_codes(self, attribute: str) -> int:
        """Distinct codes of a discrete attribute over the labeled rows."""
        try:
            return len(self._code_tables[attribute])
        except KeyError:
            raise PredicateError(
                f"no discrete attribute {attribute!r} in index") from None

    def translate(self, attribute: str, values) -> np.ndarray:
        """Clause values → sorted factorized codes, dropping values the
        labeled rows never take (exactly like the labeled evaluator's
        set-clause translation, so matched row sets agree)."""
        code_of = self._code_tables.get(attribute)
        if code_of is None:
            raise PredicateError(
                f"no discrete attribute {attribute!r} in index")
        return np.asarray(
            sorted(code_of[v] for v in values if v in code_of),
            dtype=np.int64)

    def _resolve_group_range(self, group_range: tuple[int, int] | None,
                             active_groups: int | None) -> tuple[int, int]:
        """Normalize the two group-restriction spellings to ``[lo, hi)``.

        ``active_groups=N`` (the scorer's outlier-only scoring) is the
        prefix ``[0, N)``; ``group_range`` is an arbitrary contiguous
        span — the parallel executor's group-axis tiles.  ``group_range``
        wins when both are given.
        """
        if group_range is not None:
            lo, hi = group_range
            return max(0, int(lo)), min(self.n_groups, int(hi))
        if active_groups is None:
            return 0, self.n_groups
        return 0, min(self.n_groups, int(active_groups))

    # ------------------------------------------------------------------
    def ensure(self, attribute: str) -> list[GroupAttributeIndex]:
        """Build (once) and return the attribute's per-group indexes."""
        per_group = self._by_attr.get(attribute)
        if per_group is None:
            try:
                values = self._values[attribute]
            except KeyError:
                raise PredicateError(
                    f"no continuous attribute {attribute!r} in index"
                ) from None
            fault_point("index.build")
            started = time.perf_counter()
            with span("index_build") as sp:
                if self._backend is None:
                    per_group = [
                        GroupAttributeIndex(values[start:stop], states, exact)
                        for (start, stop), states, exact
                        in zip(self._slices, self._states, self._exact)
                    ]
                else:
                    per_group = [
                        GroupAttributeIndex.from_arrays(
                            *self._backend.build_range_view(
                                values[start:stop], states, exact))
                        for (start, stop), states, exact
                        in zip(self._slices, self._states, self._exact)
                    ]
                if sp:
                    sp.annotate(attribute=attribute, kind="range",
                                groups=len(per_group))
            self._by_attr[attribute] = per_group
            self.build_count += 1
            self.build_seconds += time.perf_counter() - started
        return per_group

    def ensure_discrete(self, attribute: str) -> list[GroupDiscreteIndex]:
        """Build (once) and return the discrete attribute's per-group
        code-bucket indexes."""
        per_group = self._by_discrete.get(attribute)
        if per_group is None:
            try:
                codes = self._codes[attribute]
            except KeyError:
                raise PredicateError(
                    f"no discrete attribute {attribute!r} in index"
                ) from None
            n_codes = len(self._code_tables[attribute])
            fault_point("index.build")
            started = time.perf_counter()
            with span("index_build") as sp:
                if self._backend is None:
                    per_group = [
                        GroupDiscreteIndex(codes[start:stop], n_codes, states,
                                           exact)
                        for (start, stop), states, exact
                        in zip(self._slices, self._states, self._exact)
                    ]
                else:
                    per_group = [
                        GroupDiscreteIndex.from_arrays(
                            *self._backend.build_discrete_view(
                                codes[start:stop], n_codes, states, exact))
                        for (start, stop), states, exact
                        in zip(self._slices, self._states, self._exact)
                    ]
                if sp:
                    sp.annotate(attribute=attribute, kind="discrete",
                                groups=len(per_group))
            self._by_discrete[attribute] = per_group
            self.build_count += 1
            self.build_seconds += time.perf_counter() - started
        return per_group

    def range_group_stats(self, attribute: str, los: np.ndarray,
                          his: np.ndarray, closed: np.ndarray,
                          active_groups: int | None = None,
                          group_range: tuple[int, int] | None = None,
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Matched counts and removed states of ``m`` ranges per group.

        Returns ``(counts, removed)`` with shapes ``(m, n_groups)`` and
        ``(m, n_groups, state_size)``, aligned with the construction-time
        group order — exactly the quantities the scorer's batched
        influence arithmetic consumes.  ``active_groups`` restricts the
        work to the first N groups (the scorer's outlier-only scoring
        skips hold-out groups entirely); ``group_range=(lo, hi)``
        restricts it to an arbitrary contiguous span (the executor's
        group-axis tiles).  Groups outside the span stay zero, and each
        in-span group's result is identical to a full-width call's —
        per-group work is independent, which is what makes group-tiled
        parallel reassembly bit-for-bit equal to serial.
        """
        per_group = self.ensure(attribute)
        lo_g, hi_g = self._resolve_group_range(group_range, active_groups)
        m = len(los)
        counts = np.zeros((m, self.n_groups), dtype=np.int64)
        removed = np.zeros((m, self.n_groups, self.state_size),
                           dtype=np.float64)
        for gi in range(lo_g, hi_g):
            group_index = per_group[gi]
            a, b = group_index.slice_bounds(los, his, closed)
            counts[:, gi] = b - a
            removed[:, gi, :] = group_index.removed_states(
                a, b, self._states[gi])
        return counts, removed

    def set_group_stats(self, attribute: str,
                        wanted_lists: Sequence[np.ndarray],
                        active_groups: int | None = None,
                        group_range: tuple[int, int] | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Matched counts and removed states of ``m`` set clauses per
        group, each clause given as its sorted wanted-code array (see
        :meth:`translate`).

        Same output contract as :meth:`range_group_stats` (including the
        ``active_groups`` / ``group_range`` restriction semantics).
        Bucket-tier groups answer with one 0/1-matrix product against
        their exact per-bucket states (every intermediate an exact
        integer, so the blocked BLAS reduction cannot deviate from the
        scalar masked sum); gather-tier groups route the wanted buckets'
        slices through the shared ascending-row gather kernel.
        """
        per_group = self.ensure_discrete(attribute)
        lo_g, hi_g = self._resolve_group_range(group_range, active_groups)
        m = len(wanted_lists)
        counts = np.zeros((m, self.n_groups), dtype=np.int64)
        removed = np.zeros((m, self.n_groups, self.state_size),
                           dtype=np.float64)
        if m == 0:
            return counts, removed
        n_codes = len(self._code_tables[attribute])
        # Flattened (clause, bucket) slice bookkeeping, shared by every
        # group of the attribute: which clause owns each wanted bucket.
        owners = np.repeat(
            np.arange(m, dtype=np.int64),
            np.asarray([len(w) for w in wanted_lists], dtype=np.int64))
        flat_wanted = (np.concatenate(wanted_lists)
                       if len(owners) else np.empty(0, dtype=np.int64))
        wanted_matrix = np.zeros((m, n_codes), dtype=np.float64)
        wanted_matrix[owners, flat_wanted] = 1.0
        for gi in range(lo_g, hi_g):
            group_index = per_group[gi]
            starts = group_index.offsets[flat_wanted]
            stops = group_index.offsets[flat_wanted + 1]
            counts[:, gi] = np.bincount(
                owners, weights=(stops - starts).astype(np.float64),
                minlength=m).astype(np.int64)
            if group_index.bucket_states is not None:
                removed[:, gi, :] = wanted_matrix @ group_index.bucket_states
            else:
                removed[:, gi, :] = gather_slice_states(
                    group_index.order, starts, stops, owners, m,
                    self._states[gi])
        return counts, removed

    # ------------------------------------------------------------------
    # 2-clause conjunctions (probe the rarer side, mask-test its rows)
    # ------------------------------------------------------------------
    def estimate_clause_count(self, clause: Clause) -> int:
        """Exact matched-row total of one clause over all labeled groups
        — the planner's selectivity estimate.  O(log n) per group for
        ranges, O(|values|) for set clauses, on views that are built
        anyway for the clause itself."""
        return int(self.estimate_clause_counts([clause])[0])

    def estimate_clause_counts(self, clauses: Sequence[Clause]) -> np.ndarray:
        """Exact matched-row totals of many clauses at once.

        The batched form of :meth:`estimate_clause_count`: one
        vectorized ``searchsorted`` (ranges) or bucket-width ``bincount``
        (set clauses) per (kind, attribute, group) instead of a Python
        loop per clause — this is what keeps the planner's cost pass
        negligible next to the scoring it prices.
        """
        out = np.zeros(len(clauses), dtype=np.int64)
        range_ids: dict[str, list[int]] = {}
        set_ids: dict[str, list[int]] = {}
        for j, clause in enumerate(clauses):
            if isinstance(clause, RangeClause):
                range_ids.setdefault(clause.attribute, []).append(j)
            elif isinstance(clause, SetClause):
                set_ids.setdefault(clause.attribute, []).append(j)
            else:
                raise PredicateError(
                    f"cannot estimate clause kind {type(clause).__name__}")
        for attribute, ids in range_ids.items():
            sub = [clauses[j] for j in ids]
            los = np.asarray([c.lo for c in sub], dtype=np.float64)
            his = np.asarray([c.hi for c in sub], dtype=np.float64)
            closed = np.asarray([c.include_hi for c in sub], dtype=bool)
            totals = np.zeros(len(ids), dtype=np.int64)
            for group_index in self.ensure(attribute):
                a, b = group_index.slice_bounds(los, his, closed)
                totals += b - a
            out[np.asarray(ids, dtype=np.int64)] = totals
        for attribute, ids in set_ids.items():
            wanted_lists = [self.translate(attribute, clauses[j].values)
                            for j in ids]
            owners = np.repeat(
                np.arange(len(ids), dtype=np.int64),
                np.asarray([len(w) for w in wanted_lists], dtype=np.int64))
            flat_wanted = (np.concatenate(wanted_lists)
                           if len(owners) else np.empty(0, dtype=np.int64))
            totals = np.zeros(len(ids), dtype=np.int64)
            for group_index in self.ensure_discrete(attribute):
                widths = (group_index.offsets[flat_wanted + 1]
                          - group_index.offsets[flat_wanted])
                totals += np.bincount(
                    owners, weights=widths.astype(np.float64),
                    minlength=len(ids)).astype(np.int64)
            out[np.asarray(ids, dtype=np.int64)] = totals
        return out

    def conjunction_group_stats(self, plans: Sequence[tuple[Clause, Clause]],
                                active_groups: int | None = None,
                                group_range: tuple[int, int] | None = None,
                                ) -> tuple[np.ndarray, np.ndarray]:
        """Matched counts and removed states of ``m`` 2-clause
        conjunctions per group, each given as ``(probe, other)`` with the
        probe side chosen by the planner.

        Same output contract as :meth:`range_group_stats` (including the
        ``active_groups`` / ``group_range`` restriction semantics).  Per
        group, every plan's probe clause contributes its sorted slice or
        code buckets as candidate ``(plan, row)`` pairs — one vectorized
        expansion per (probe kind, attribute) family — and only those
        candidates are mask-tested against their plan's other clause
        (one vectorized comparison per (other kind, attribute) family,
        the exact comparison the labeled evaluator would run).  The
        survivors are reduced with the shared ascending-row-order
        scatter-add, so results are bit-for-bit equal to scalar scoring.
        """
        lo_g, hi_g = self._resolve_group_range(group_range, active_groups)
        m = len(plans)
        counts = np.zeros((m, self.n_groups), dtype=np.int64)
        removed = np.zeros((m, self.n_groups, self.state_size),
                           dtype=np.float64)
        if m == 0:
            return counts, removed

        # Probe families: one vectorized slice computation per
        # (kind, attribute) pair per group.
        range_probe_ids: dict[str, list[int]] = {}
        set_probe_ids: dict[str, list[int]] = {}
        for j, (probe, _) in enumerate(plans):
            if isinstance(probe, RangeClause):
                range_probe_ids.setdefault(probe.attribute, []).append(j)
            else:
                set_probe_ids.setdefault(probe.attribute, []).append(j)
        probe_specs: list[tuple] = []
        for attribute, ids in range_probe_ids.items():
            clauses = [plans[j][0] for j in ids]
            probe_specs.append((
                "range", attribute, np.asarray(ids, dtype=np.int64),
                np.asarray([c.lo for c in clauses], dtype=np.float64),
                np.asarray([c.hi for c in clauses], dtype=np.float64),
                np.asarray([c.include_hi for c in clauses], dtype=bool),
            ))
        for attribute, ids in set_probe_ids.items():
            wanted_lists = [self.translate(attribute, plans[j][0].values)
                            for j in ids]
            bucket_owners = np.repeat(
                np.asarray(ids, dtype=np.int64),
                np.asarray([len(w) for w in wanted_lists], dtype=np.int64))
            flat_wanted = (np.concatenate(wanted_lists)
                           if len(bucket_owners)
                           else np.empty(0, dtype=np.int64))
            probe_specs.append(("set", attribute, bucket_owners, flat_wanted))

        # Other-side families: per-plan comparison parameters gathered
        # through the candidate rows' owner ids.
        families: list[tuple[str, str]] = []
        family_ids: dict[tuple[str, str], int] = {}
        family_of_plan = np.empty(m, dtype=np.int64)
        other_lo = np.zeros(m, dtype=np.float64)
        other_hi = np.zeros(m, dtype=np.float64)
        other_closed = np.zeros(m, dtype=bool)
        set_lookups: dict[str, np.ndarray] = {}
        for j, (_, other) in enumerate(plans):
            if isinstance(other, RangeClause):
                key = ("range", other.attribute)
                other_lo[j] = other.lo
                other_hi[j] = other.hi
                other_closed[j] = other.include_hi
            else:
                key = ("set", other.attribute)
                lookup = set_lookups.get(other.attribute)
                if lookup is None:
                    lookup = np.zeros((m, self.n_codes(other.attribute)),
                                      dtype=bool)
                    set_lookups[other.attribute] = lookup
                lookup[j, self.translate(other.attribute, other.values)] = True
            fid = family_ids.setdefault(key, len(family_ids))
            if fid == len(families):
                families.append(key)
            family_of_plan[j] = fid

        for gi in range(lo_g, hi_g):
            start, stop = self._slices[gi]
            owner_chunks: list[np.ndarray] = []
            row_chunks: list[np.ndarray] = []
            for spec in probe_specs:
                if spec[0] == "range":
                    _, attribute, ids, los, his, closed = spec
                    group_index = self.ensure(attribute)[gi]
                    a, b = group_index.slice_bounds(los, his, closed)
                    owners, rows = expand_slices(group_index.order, a, b, ids)
                else:
                    _, attribute, bucket_owners, flat_wanted = spec
                    group_index = self.ensure_discrete(attribute)[gi]
                    owners, rows = expand_slices(
                        group_index.order,
                        group_index.offsets[flat_wanted],
                        group_index.offsets[flat_wanted + 1],
                        bucket_owners)
                if len(rows):
                    owner_chunks.append(owners)
                    row_chunks.append(rows)
            if not row_chunks:
                continue
            owners_all = np.concatenate(owner_chunks)
            rows_all = np.concatenate(row_chunks)
            global_rows = rows_all + start
            test = np.zeros(len(rows_all), dtype=bool)
            family_per_row = family_of_plan[owners_all]
            for fid, (kind, attribute) in enumerate(families):
                sel = family_per_row == fid
                if not sel.any():
                    continue
                sub_owners = owners_all[sel]
                if kind == "range":
                    values = self._values[attribute][global_rows[sel]]
                    below = np.where(other_closed[sub_owners],
                                     values <= other_hi[sub_owners],
                                     values < other_hi[sub_owners])
                    test[sel] = (values >= other_lo[sub_owners]) & below
                else:
                    codes = self._codes[attribute][global_rows[sel]]
                    test[sel] = set_lookups[attribute][sub_owners, codes]
            group_counts, group_removed = accumulate_owner_rows(
                owners_all[test], rows_all[test], m, stop - start,
                self._states[gi])
            counts[:, gi] = group_counts
            removed[:, gi, :] = group_removed
        return counts, removed
