"""Prefix-aggregate indexes: sorted per-attribute views of each labeled
group with precomputed aggregate state, so a single-clause range
predicate ``lo ≤ attr < hi`` is answered with two binary searches
instead of an O(n) mask row.

For every (group, attribute) pair the index sorts the group's rows by
the attribute's value once.  A range predicate then matches exactly one
contiguous slice ``[a, b)`` of that order (``np.searchsorted`` with the
clause's bound semantics), which yields the matched count as ``b − a``
and the summed removed state through one of two tiers:

**Prefix tier (O(1) per predicate).**  When every state column of the
group is *exactly summable* — integer-valued floats whose absolute sum
stays below 2**52 — every partial sum of every subset is an exact
integer below 2**53, hence exactly representable and independent of
summation order.  The per-state prefix sums along the sorted order are
then exact, and ``prefix[b] − prefix[a]`` reproduces the scalar path's
masked in-order sum bit for bit.  COUNT states always qualify; SUM/AVG
and the STDDEV/VARIANCE ``[sum, sum²]`` states qualify whenever the
aggregate column holds bounded integers (sensor ids, counts, cents).

**Gather tier (O(log n + k) per predicate).**  For general float data a
prefix difference is *not* bitwise equal to a direct sum (float addition
is not associative), so the slice's row positions ``order[a:b]`` are
gathered, re-sorted into ascending row order, and scatter-added with the
same in-input-order ``np.bincount`` kernel the batched mask path uses.
That reproduces the scalar path's masked sum exactly — same rows, same
ascending-row accumulation order, same elementwise adds — while still
skipping the O(n) mask row and its full-row scan; only the ``k`` matched
rows are touched.

Both tiers share the binary-search slice and therefore the matched *row
set* is identical to the comparison mask (``searchsorted`` side
selection mirrors the clause's ``>= lo`` / ``< hi`` / ``<= hi``
semantics, and NaN attribute values sort to the tail where no finite
bound reaches them).  See :mod:`repro.index.planner` for how predicates
are routed here.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

import numpy as np

from repro.errors import PredicateError

#: Per-column absolute-sum budget under which integer-valued state
#: columns sum exactly: every subset sum is an integer of magnitude
#: below 2**52 < 2**53, so each partial sum — in any order — is exactly
#: representable and prefix differences equal direct masked sums.
EXACT_SUM_BUDGET = float(2 ** 52)


def exactly_summable(columns: np.ndarray) -> bool:
    """Whether every column of the ``(n, k)`` state matrix sums exactly
    in any order (see :data:`EXACT_SUM_BUDGET`).  Empty matrices qualify
    trivially; anything non-finite (NaN/inf states) does not."""
    if columns.size == 0:
        return True
    if not np.isfinite(columns).all():
        return False
    if not (columns == np.floor(columns)).all():
        return False
    return bool(np.abs(columns).sum(axis=0).max() < EXACT_SUM_BUDGET)


class GroupAttributeIndex:
    """One group's rows sorted along one attribute.

    ``order`` maps sorted positions to the group's local row positions;
    ``prefix`` holds the (n+1, k) exact prefix states when the group is
    on the prefix tier, else None (gather tier).
    """

    __slots__ = ("order", "sorted_values", "prefix")

    def __init__(self, values: np.ndarray, tuple_states: np.ndarray | None,
                 exact: bool):
        order = np.argsort(values, kind="stable").astype(np.int64, copy=False)
        self.order = order
        self.sorted_values = values[order]
        self.prefix: np.ndarray | None = None
        if exact and tuple_states is not None:
            prefix = np.zeros((len(values) + 1, tuple_states.shape[1]),
                              dtype=np.float64)
            np.cumsum(tuple_states[order], axis=0, out=prefix[1:])
            self.prefix = prefix

    @classmethod
    def from_arrays(cls, order: np.ndarray, sorted_values: np.ndarray,
                    prefix: np.ndarray | None) -> "GroupAttributeIndex":
        """Adopt already-built views (no sort, no cumsum) — used by the
        parallel executor to install shared-memory copies of a parent
        process's build, which are byte-identical by construction."""
        self = cls.__new__(cls)
        self.order = order
        self.sorted_values = sorted_values
        self.prefix = prefix
        return self

    @property
    def uses_prefix(self) -> bool:
        return self.prefix is not None

    def slice_bounds(self, los: np.ndarray, his: np.ndarray,
                     closed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sorted-position bounds ``[a, b)`` of each range.

        Mirrors :meth:`RangeClause.mask_values` exactly: ``a`` is the
        first position with ``value >= lo``; ``b`` is one past the last
        position with ``value <= hi`` (closed) or ``value < hi`` (open).
        NaN values sort past every finite bound and are never included.
        """
        a = np.searchsorted(self.sorted_values, los, side="left")
        b = np.where(
            closed,
            np.searchsorted(self.sorted_values, his, side="right"),
            np.searchsorted(self.sorted_values, his, side="left"),
        )
        return a, b

    def removed_states(self, a: np.ndarray, b: np.ndarray,
                       tuple_states: np.ndarray) -> np.ndarray:
        """Summed removed state per slice, bit-for-bit equal to the
        scalar path's ``tuple_states[mask].sum(axis=0)``.

        Prefix tier: one O(1) subtraction per slice (exact by the
        integer-summability argument above).  Gather tier: the slices'
        row positions are concatenated, re-sorted to ascending row order
        within each slice, and accumulated with the same in-input-order
        ``bincount`` scatter-add as the batched mask kernel.
        """
        if self.prefix is not None:
            return self.prefix[b] - self.prefix[a]
        m = len(a)
        k = tuple_states.shape[1]
        out = np.zeros((m, k), dtype=np.float64)
        lengths = b - a
        total = int(lengths.sum())
        if total == 0:
            return out
        n = len(self.order)
        slice_ids = np.repeat(np.arange(m, dtype=np.int64), lengths)
        exclusive = np.cumsum(lengths) - lengths
        positions = (np.arange(total, dtype=np.int64)
                     + np.repeat(a - exclusive, lengths))
        rows = self.order[positions]
        # ``np.nonzero`` hands the mask kernel its set bits in ascending
        # row order; re-sorting each slice by row position reproduces
        # that exact accumulation order.  A single composite-key sort
        # (slice-major, row-minor) beats a two-key lexsort; the int64
        # key never overflows for any realistic (batch, group) shape,
        # and the lexsort fallback covers the rest.
        if m <= (2 ** 62) // max(n, 1):
            composite = np.sort(slice_ids * n + rows)
            slice_ids = composite // n
            rows = composite - slice_ids * n
        else:  # pragma: no cover - astronomically large batches only
            sorter = np.lexsort((rows, slice_ids))
            slice_ids = slice_ids[sorter]
            rows = rows[sorter]
        gathered = tuple_states[rows]
        for j in range(k):
            out[:, j] = np.bincount(slice_ids, weights=gathered[:, j],
                                    minlength=m)
        return out


class PrefixAggregateIndex:
    """Lazily built per-(group, attribute) sorted indexes over the
    labeled rows of one scorer/evaluator.

    Parameters
    ----------
    values_by_attr:
        Continuous attribute name → values over the *labeled* rows (all
        groups concatenated, outliers first) — the same arrays the
        labeled :class:`~repro.predicates.evaluator.ArrayMaskEvaluator`
        compares against, so slice membership equals mask membership.
    group_slices:
        ``(start, stop)`` column spans of each group inside the labeled
        concatenation, in context order.
    group_states:
        Each group's ``(size, state_size)`` per-tuple aggregate states
        (the incremental-removal cache); the removed-state queries
        require them for every group.
    """

    def __init__(self, values_by_attr: Mapping[str, np.ndarray],
                 group_slices: Sequence[tuple[int, int]],
                 group_states: Sequence[np.ndarray]):
        if len(group_slices) != len(group_states):
            raise PredicateError(
                f"{len(group_slices)} group slices vs {len(group_states)} "
                "state matrices")
        self._values = dict(values_by_attr)
        self._slices = [(int(start), int(stop)) for start, stop in group_slices]
        self._states = list(group_states)
        for (start, stop), states in zip(self._slices, self._states):
            if states is None or len(states) != stop - start:
                raise PredicateError(
                    f"group slice [{start}, {stop}) does not match its "
                    "state matrix")
        self._exact = [exactly_summable(states) for states in self._states]
        self._by_attr: dict[str, list[GroupAttributeIndex]] = {}
        #: Number of attributes indexed so far / seconds spent sorting
        #: and prefix-summing (surfaced through ``scorer_stats``).
        self.build_count = 0
        self.build_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self._slices)

    @property
    def state_size(self) -> int:
        return self._states[0].shape[1] if self._states else 0

    @property
    def attributes_built(self) -> tuple[str, ...]:
        return tuple(self._by_attr)

    @property
    def group_slices(self) -> tuple[tuple[int, int], ...]:
        """Each group's ``(start, stop)`` span inside the labeled
        concatenation — also each group's span inside any attribute's
        concatenated ``order`` / ``sorted_values`` arrays, since a
        group's sorted view has exactly the group's rows."""
        return tuple(self._slices)

    def install_attribute(self, attribute: str,
                          per_group: Sequence[GroupAttributeIndex]) -> None:
        """Adopt per-group indexes built elsewhere (a parent process's
        export; see :meth:`GroupAttributeIndex.from_arrays`).

        Does not touch ``build_count`` / ``build_seconds`` — installs
        are zero-cost adoptions, and counting them would double-count
        the one build the exporting process already recorded.
        """
        if not self.supports(attribute):
            raise PredicateError(
                f"no continuous attribute {attribute!r} in index")
        if len(per_group) != self.n_groups:
            raise PredicateError(
                f"{len(per_group)} group indexes for {self.n_groups} groups")
        self._by_attr[attribute] = list(per_group)

    def supports(self, attribute: str) -> bool:
        """Whether the attribute is continuous over the labeled rows."""
        return attribute in self._values

    def prefix_tier_groups(self, attribute: str) -> int:
        """How many of the attribute's group indexes answer in O(1)."""
        return sum(gi.uses_prefix for gi in self.ensure(attribute))

    # ------------------------------------------------------------------
    def ensure(self, attribute: str) -> list[GroupAttributeIndex]:
        """Build (once) and return the attribute's per-group indexes."""
        per_group = self._by_attr.get(attribute)
        if per_group is None:
            try:
                values = self._values[attribute]
            except KeyError:
                raise PredicateError(
                    f"no continuous attribute {attribute!r} in index"
                ) from None
            started = time.perf_counter()
            per_group = [
                GroupAttributeIndex(values[start:stop], states, exact)
                for (start, stop), states, exact
                in zip(self._slices, self._states, self._exact)
            ]
            self._by_attr[attribute] = per_group
            self.build_count += 1
            self.build_seconds += time.perf_counter() - started
        return per_group

    def range_group_stats(self, attribute: str, los: np.ndarray,
                          his: np.ndarray, closed: np.ndarray,
                          active_groups: int | None = None,
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Matched counts and removed states of ``m`` ranges per group.

        Returns ``(counts, removed)`` with shapes ``(m, n_groups)`` and
        ``(m, n_groups, state_size)``, aligned with the construction-time
        group order — exactly the quantities the scorer's batched
        influence arithmetic consumes.  ``active_groups`` restricts the
        work to the first N groups (the scorer's outlier-only scoring
        skips hold-out groups entirely); the remaining rows stay zero.
        """
        per_group = self.ensure(attribute)
        if active_groups is None:
            active_groups = self.n_groups
        m = len(los)
        counts = np.zeros((m, self.n_groups), dtype=np.int64)
        removed = np.zeros((m, self.n_groups, self.state_size),
                           dtype=np.float64)
        for gi, group_index in enumerate(per_group[:active_groups]):
            a, b = group_index.slice_bounds(los, his, closed)
            counts[:, gi] = b - a
            removed[:, gi, :] = group_index.removed_states(
                a, b, self._states[gi])
        return counts, removed
