"""The planner's cost model: price every candidate execution route and
route each predicate to the argmin.

Replaces the fixed routing heuristics (most notably the old
``PROBE_FRACTION_CAP``) with explicit per-route cost formulas, in
nanoseconds, built from per-tier unit constants.  With ``q`` clauses,
``n`` labeled rows, ``G`` groups, ``k`` matched rows and ``A`` the
amortization constant (:data:`CostModel.AMORTIZED_PREDS` — fixed
per-group batch costs are shared by roughly that many predicates per
kernel call):

* **mask kernel** — build the boolean row (a bound comparison per
  range clause, a lookup-table gather per set clause), scan it
  (``np.nonzero``), scatter-add the ``k`` set bits::

      mask(n, k, q_r, q_s) = (mask_row + mask_clause·q_r
                              + mask_set_clause·q_s)·n
                             + scatter_row·k + mask_pred

* **range tier** — two binary searches per group plus, on gather-tier
  (non-exactly-summable) groups, the ascending-row gather of the ``k``
  matched rows (prefix-tier groups answer in O(1))::

      range(G, k, exact) = (range_group + range_batch_group/A)·G
                           + [not exact]·gather_row·k + tier_pred

* **discrete-bucket tier** — per-group bucket lookups over the ``c``
  wanted codes, plus the same gather term off the bucket tier::

      set(G, c, k, exact) = (bucket_group + bucket_code·c
                             + bucket_batch_group/A)·G
                            + [not exact]·gather_row·k + tier_pred

* **conjunction tier** — probe the rarer clause's view (its searches
  are inside the per-group terms; a set probe adds its per-code bucket
  lookups), then mask-test and accumulate the ``k_probe`` candidates::

      conj(G, k_probe, c) = conj_row·k_probe
                            + (conj_group + conj_batch_group/A)·G
                            + [set probe]·bucket_code·c·G + tier_pred

The :class:`~repro.index.IndexPlanner` compares these using the exact
matched-count estimates it already computes (conjunctions) or the
worst-case ``k = n`` (single clauses, where the per-matched-row terms
largely cancel between the two sides), and picks the cheaper route —
results are identical either way, so a wrong constant can only cost
time, never correctness.

Calibration
-----------

The unit constants are measured once per process by
:func:`calibrate`: a microbenchmark on a small synthetic slice that
times the real kernels — the full mask pipeline through the real
:class:`~repro.predicates.evaluator.ArrayMaskEvaluator` (including its
scan and scatter-add) and the prefix / gather / bucket / conjunction
tiers of a throwaway :class:`~repro.index.PrefixAggregateIndex` — and
solves for the constants by differencing.  Each tier is timed at two
batch sizes so fixed per-group batch costs separate from per-predicate
costs (conflating them overprices index tiers at real chunk sizes).
The result is cached in a module-level singleton
(:meth:`CostModel.shared`), so every planner in the process — and,
with the default ``fork`` start method, every worker — routes from the
same constants; routing decisions are therefore identical across the
serial and parallel paths of one process by construction.  Calibrated
constants are clamped to a window around the defaults so a noisy timer
cannot produce pathological routing.

``SCORPION_COST_CALIBRATE=off`` (or ``0`` / ``false`` / ``no``) skips
the measurement and uses :data:`DEFAULT_CONSTANTS` — fully
deterministic, for tests and CI.  ``cost_calibrations`` in
``scorer_stats`` reports how many calibration passes the process ran
(0 or 1).
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import REGISTRY
from repro.obs.trace import span

__all__ = [
    "CostConstants",
    "CostModel",
    "DEFAULT_CONSTANTS",
    "calibrate",
    "calibration_count",
    "calibration_enabled",
    "force_index_model",
    "force_mask_model",
    "reset_shared",
]


@dataclass(frozen=True)
class CostConstants:
    """Per-tier unit costs in nanoseconds (see the module formulas)."""

    #: Per (predicate, labeled row): mask-pipeline overhead that scales
    #: with rows regardless of clauses (allocation, ``np.nonzero`` scan).
    mask_row: float
    #: Per (predicate, labeled row, range clause): one broadcast bound
    #: comparison.
    mask_clause: float
    #: Per (predicate, labeled row, set clause): one lookup-table
    #: gather — substantially pricier than a bound comparison, which is
    #: why set-clause pairs are the conjunction tier's biggest win.
    mask_set_clause: float
    #: Per matched row on the mask path: composite-key build + the
    #: count/state ``bincount`` scatter-adds.
    scatter_row: float
    #: Per predicate: fixed mask-path overhead (chunk bookkeeping).
    mask_pred: float
    #: Per (predicate, group): range-tier binary searches + prefix diff.
    range_group: float
    #: Per (group, kernel call): fixed range-tier batch cost, amortized
    #: over :data:`CostModel.AMORTIZED_PREDS` predicates.
    range_batch_group: float
    #: Per matched row gathered on a non-exact (gather-tier) group.
    gather_row: float
    #: Per (predicate, group): discrete-bucket-tier lookups and sums.
    bucket_group: float
    #: Per (predicate, group, wanted code): bucket boundary lookups.
    bucket_code: float
    #: Per (group, kernel call): fixed bucket-tier batch cost, amortized.
    bucket_batch_group: float
    #: Per probe-candidate row of the conjunction tier: slice expansion
    #: + other-clause mask test + survivor accumulation.
    conj_row: float
    #: Per (predicate, group): conjunction-tier bookkeeping, including
    #: the probe's binary searches.
    conj_group: float
    #: Per (group, kernel call): fixed conjunction-tier batch cost
    #: (family setup, candidate concatenation), amortized.
    conj_batch_group: float
    #: Per predicate: fixed index-tier overhead (routing bookkeeping).
    tier_pred: float


#: Measured on the reference container (see :func:`calibrate`); used
#: verbatim when ``SCORPION_COST_CALIBRATE=off``.
DEFAULT_CONSTANTS = CostConstants(
    mask_row=2.8,
    mask_clause=0.5,
    mask_set_clause=2.0,
    scatter_row=50.0,
    mask_pred=2000.0,
    range_group=40.0,
    range_batch_group=10000.0,
    gather_row=38.0,
    bucket_group=170.0,
    bucket_code=0.5,
    bucket_batch_group=7000.0,
    conj_row=51.0,
    conj_group=500.0,
    conj_batch_group=45000.0,
    tier_pred=500.0,
)

#: Calibrated constants are clamped to ``default / CLAMP .. default *
#: CLAMP`` — wide enough for any real machine, tight enough that timer
#: noise cannot invert every routing decision.
CLAMP = 32.0


def calibration_enabled() -> bool:
    """Whether :meth:`CostModel.shared` runs the microcalibration pass
    (``SCORPION_COST_CALIBRATE`` unset or truthy) instead of using
    :data:`DEFAULT_CONSTANTS`."""
    raw = os.environ.get("SCORPION_COST_CALIBRATE", "").strip().lower()
    return raw not in ("off", "0", "false", "no")


_SHARED: "CostModel | None" = None
_CALIBRATIONS = 0


def calibration_count() -> int:
    """Calibration passes run by this process so far (0 or 1; surfaces
    as the ``cost_calibrations`` scorer-stats counter)."""
    return _CALIBRATIONS


def reset_shared() -> None:
    """Drop the shared model (tests only: forces the next
    :meth:`CostModel.shared` to re-resolve the environment knob)."""
    global _SHARED
    _SHARED = None


def set_shared(model: "CostModel | None") -> None:
    """Replace the process-wide shared model (tests and benchmarks: pin
    routing decisions regardless of machine speed for code paths that
    build their own scorers).  ``None`` restores lazy resolution."""
    global _SHARED
    _SHARED = model


class CostModel:
    """Prices candidate routes; see the module docstring for formulas.

    Stateless given its constants — every method is pure arithmetic, so
    two models with equal constants make identical decisions (the
    routing-parity guarantee the differential oracle asserts).
    """

    #: Predicates assumed to share one kernel call's fixed per-group
    #: batch costs.  Real chunks run 8 (tests) to 256+ (benchmarks)
    #: predicates; 64 is the geometric middle and errs on neither side
    #: by more than the fixed costs themselves.
    AMORTIZED_PREDS = 64.0

    #: Estimated per-task dispatch overhead of the worker pool (pickle,
    #: queue, result IPC); group tiles smaller than a couple of these
    #: are not worth cutting.
    DISPATCH_NS = 200_000.0

    def __init__(self, constants: CostConstants | None = None):
        self.constants = constants if constants is not None else DEFAULT_CONSTANTS

    @classmethod
    def shared(cls) -> "CostModel":
        """The per-process model every planner routes from — calibrated
        once on first use, or :data:`DEFAULT_CONSTANTS` when
        ``SCORPION_COST_CALIBRATE=off``."""
        global _SHARED, _CALIBRATIONS
        if _SHARED is None:
            if calibration_enabled():
                with span("cost_calibration"):
                    _SHARED = cls(calibrate())
                _CALIBRATIONS += 1
                REGISTRY.counter(
                    "scorpion_cost_calibrations_total",
                    "Cost-model microcalibration passes run").inc()
            else:
                _SHARED = cls(DEFAULT_CONSTANTS)
        return _SHARED

    # ------------------------------------------------------------------
    # Route costs (nanoseconds per predicate)
    # ------------------------------------------------------------------
    def mask_cost(self, n_rows: int, k: float, n_range_clauses: int = 1,
                  n_set_clauses: int = 0) -> float:
        """Amortized mask-kernel cost of one predicate with the given
        clause mix over ``n_rows`` labeled rows matching ``k`` of them."""
        c = self.constants
        per_row = (c.mask_row + c.mask_clause * n_range_clauses
                   + c.mask_set_clause * n_set_clauses)
        return per_row * n_rows + c.scatter_row * k + c.mask_pred

    def range_cost(self, n_groups: int, k: float, exact: bool) -> float:
        """Range-tier cost of one single-range predicate matching ``k``
        rows (``exact``: every group on the O(1) prefix tier)."""
        c = self.constants
        per_group = c.range_group + c.range_batch_group / self.AMORTIZED_PREDS
        cost = per_group * n_groups + c.tier_pred
        if not exact:
            cost += c.gather_row * k
        return cost

    def set_cost(self, n_groups: int, n_codes: int, k: float,
                 exact: bool) -> float:
        """Discrete-bucket-tier cost of one single-set predicate with
        ``n_codes`` wanted codes matching ``k`` rows."""
        c = self.constants
        per_group = (c.bucket_group + c.bucket_code * n_codes
                     + c.bucket_batch_group / self.AMORTIZED_PREDS)
        cost = per_group * n_groups + c.tier_pred
        if not exact:
            cost += c.gather_row * k
        return cost

    def conjunction_cost(self, n_groups: int, k_probe: float,
                         probe_is_set: bool, n_probe_codes: int = 0) -> float:
        """Conjunction-tier cost: probe a clause matching ``k_probe``
        rows, mask-test and accumulate the candidates."""
        c = self.constants
        per_group = c.conj_group + c.conj_batch_group / self.AMORTIZED_PREDS
        if probe_is_set:
            per_group += c.bucket_code * n_probe_codes
        return c.conj_row * k_probe + per_group * n_groups + c.tier_pred

    # ------------------------------------------------------------------
    # Parallel tiling
    # ------------------------------------------------------------------
    def choose_tiling(self, n_predicates: int, n_groups: int, n_rows: int,
                      workers: int, batch_chunk: int) -> int | None:
        """Group-axis tile size (contexts per tile) for a parallel
        batch, or None for predicate-only sharding.

        Tiles the group axis only when the predicate axis alone cannot
        keep every worker busy (fewer than ``2 × workers`` predicate
        shards) *and* the estimated per-tile work clears the pool's
        dispatch overhead — cutting a microsecond of scoring into four
        IPC round-trips is a loss at any worker count.  Deterministic
        pure arithmetic, so serial/parallel runs of one process always
        agree on the tiling.
        """
        if n_predicates <= 0 or workers <= 1 or n_groups < 2:
            return None
        pred_shards = -(-n_predicates // batch_chunk)
        if pred_shards >= 2 * workers:
            return None  # the predicate axis alone saturates the pool
        tiles = min(n_groups, -(-(2 * workers) // pred_shards))
        if tiles < 2:
            return None
        rows_per_tile = max(1, n_rows // tiles)
        preds_per_shard = min(n_predicates, batch_chunk)
        tile_cost = preds_per_shard * self.mask_cost(
            rows_per_tile, rows_per_tile / 4)
        if tile_cost < 2.0 * self.DISPATCH_NS:
            return None
        return -(-n_groups // tiles)


def force_index_model() -> CostModel:
    """A model whose mask kernel is priced out of the market — every
    index-eligible predicate routes to an index tier regardless of
    shape.  For tests that pin tier-kernel behavior on fixtures too
    small for the real economics to pick the index."""
    return CostModel(dataclasses.replace(
        DEFAULT_CONSTANTS, mask_row=1e9, mask_pred=1e12))


def force_mask_model() -> CostModel:
    """The opposite of :func:`force_index_model`: index tiers priced out,
    everything cost-routes to the mask kernel."""
    return CostModel(dataclasses.replace(
        DEFAULT_CONSTANTS, range_group=1e9, bucket_group=1e9,
        conj_group=1e9, tier_pred=1e12))


# ----------------------------------------------------------------------
# Microcalibration
# ----------------------------------------------------------------------
def _best_of(fn, reps: int = 3) -> float:
    """Minimum wall-clock seconds of ``fn`` over ``reps`` runs (after
    one unmeasured warm-up)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _clamped(value: float, default: float) -> float:
    """Clamp a fitted constant into the sanity window around its
    default (and away from zero/negative timer-noise artifacts)."""
    lo, hi = default / CLAMP, default * CLAMP
    return float(min(max(value, lo), hi))


def calibrate() -> CostConstants:
    """Measure the per-tier unit constants on a synthetic slice.

    Times the actual kernels — the mask pipeline through the real
    :class:`~repro.predicates.evaluator.ArrayMaskEvaluator` (broadcast
    range compares, lookup-table set gathers, ``np.nonzero``, count and
    state scatter-adds) and the prefix / gather / bucket / conjunction
    tiers of a small :class:`~repro.index.PrefixAggregateIndex`.  Each
    index tier is timed at two batch sizes (m=8 and m=32) to separate
    fixed per-group batch costs from per-predicate costs, and at two
    selectivities to fit the per-matched-row slopes.  Runs in roughly
    100 ms; called at most once per process (see
    :meth:`CostModel.shared`).
    """
    from repro.index.prefix import PrefixAggregateIndex
    from repro.predicates.clause import RangeClause, SetClause
    from repro.predicates.evaluator import ArrayMaskEvaluator
    from repro.predicates.predicate import Predicate

    d = DEFAULT_CONSTANTS
    rng = np.random.default_rng(12345)
    n_groups, size, n_codes = 4, 1000, 16
    m_small, m_big = 8, 64
    n = n_groups * size
    giga = 1e9
    values = rng.uniform(0.0, 100.0, n)
    values2 = rng.uniform(0.0, 100.0, n)
    codes = rng.integers(0, n_codes, n).astype(np.int64)
    int_states = np.stack([rng.integers(1, 50, n).astype(np.float64),
                           np.ones(n)], axis=1)
    float_states = np.stack([rng.uniform(0.5, 50.0, n), np.ones(n)], axis=1)
    slices = [(g * size, (g + 1) * size) for g in range(n_groups)]
    ctx_ids = np.repeat(np.arange(n_groups, dtype=np.int64), size)
    code_table = {i: i for i in range(n_codes)}

    exact_index = PrefixAggregateIndex(
        {"a": values}, slices, [int_states[a:b] for a, b in slices],
        codes_by_attr={"d": codes}, code_tables={"d": code_table})
    float_index = PrefixAggregateIndex(
        {"a": values}, slices, [float_states[a:b] for a, b in slices])
    exact_index.ensure("a")
    exact_index.ensure_discrete("d")
    float_index.ensure("a")

    # --- mask pipeline: the real evaluator + nonzero + scatter-adds ---
    # Second clauses are a half-range / half-set mix, like the pair
    # workloads the conjunction decision prices against.  Timed at a
    # batch size whose matched-row working set leaves the cache, because
    # that is where the scatter-add actually operates at real chunk
    # sizes — an in-cache fit underprices the mask route 4-5×.
    m_mask = 128
    evaluator = ArrayMaskEvaluator.from_state(
        {"a": values, "a2": values2}, {"d": codes}, {"d": code_table})
    zero_clause = RangeClause("a", 200.0, 300.0)
    half_clause = RangeClause("a", 25.0, 75.0, include_hi=False)
    set_clause = SetClause("d", [0, 3, 5, 7, 9, 11])
    preds_zero_1 = [Predicate([zero_clause]) for _ in range(m_mask)]
    preds_zero_2r = [Predicate([zero_clause, RangeClause("a2", 25.0, 75.0)])
                     for _ in range(m_mask)]
    preds_zero_2s = [Predicate([zero_clause, set_clause])
                     for _ in range(m_mask)]
    preds_half_1 = [Predicate([half_clause]) for _ in range(m_mask)]

    def mask_pipeline(predicates):
        matrix = evaluator.evaluate_batch(predicates)
        rows, cols = np.nonzero(matrix)
        keys = rows * n_groups + ctx_ids[cols]
        np.bincount(keys, minlength=m_mask * n_groups)
        gathered = float_states[cols]
        for j in range(gathered.shape[1]):
            np.bincount(keys, weights=gathered[:, j],
                        minlength=m_mask * n_groups)

    t_zero_1 = _best_of(lambda: mask_pipeline(preds_zero_1))
    t_zero_2r = _best_of(lambda: mask_pipeline(preds_zero_2r))
    t_zero_2s = _best_of(lambda: mask_pipeline(preds_zero_2s))
    t_half_1 = _best_of(lambda: mask_pipeline(preds_half_1))
    k_half = float(((values >= 25.0) & (values < 75.0)).sum())
    mask_clause = (t_zero_2r - t_zero_1) * giga / (m_mask * n)
    mask_set_clause = (t_zero_2s - t_zero_1) * giga / (m_mask * n)
    mask_row = t_zero_1 * giga / (m_mask * n) - mask_clause
    scatter_row = (t_half_1 - t_zero_1) * giga / (m_mask * k_half)

    def two_point_fit(t_small: float, t_big: float) -> tuple[float, float]:
        """``(per_pred_group, per_batch_group)`` from one timing at
        ``m_small`` and one at ``m_big`` predicates (k-free workloads:
        both timings are ``fixed·G + per_pred·m·G``)."""
        per_pred = (t_big - t_small) * giga / ((m_big - m_small) * n_groups)
        fixed = t_small * giga / n_groups - m_small * per_pred
        return per_pred, fixed

    # --- range tier: prefix (per-group) and gather (per-row) ----------
    def range_stats(index, m, lo, hi):
        index.range_group_stats(
            "a", np.full(m, lo), np.full(m, hi), np.zeros(m, dtype=bool))

    t_range_small = _best_of(lambda: range_stats(exact_index, m_small,
                                                 0.0, 100.0))
    t_range_big = _best_of(lambda: range_stats(exact_index, m_big,
                                               0.0, 100.0))
    range_group, range_batch_group = two_point_fit(t_range_small, t_range_big)
    t_gather = _best_of(lambda: range_stats(float_index, m_big, 25.0, 75.0))
    t_gather_base = _best_of(lambda: range_stats(float_index, m_big,
                                                 200.0, 300.0))
    gather_row = (t_gather - t_gather_base) * giga / (m_big * k_half)

    # --- discrete-bucket tier -----------------------------------------
    def set_stats(wanted):
        exact_index.set_group_stats("d", wanted)

    def one_code_wanted(m):
        return [np.asarray([i % n_codes], dtype=np.int64) for i in range(m)]

    wanted_8 = [np.unique(np.arange(i % 8, i % 8 + 8) % n_codes)
                for i in range(m_big)]
    t_set_small = _best_of(lambda: set_stats(one_code_wanted(m_small)))
    t_set_big = _best_of(lambda: set_stats(one_code_wanted(m_big)))
    t_set_8 = _best_of(lambda: set_stats(wanted_8))
    bucket_group, bucket_batch_group = two_point_fit(t_set_small, t_set_big)
    bucket_code = (t_set_8 - t_set_big) * giga / (m_big * n_groups * 7)

    # --- conjunction tier ---------------------------------------------
    other = RangeClause("a", 0.0, 100.0)

    def conj_stats(m, width):
        plans = [(RangeClause("a", float(2 * i % 50),
                              float(2 * i % 50) + width), other)
                 for i in range(m)]
        exact_index.conjunction_group_stats(plans)

    t_conj_narrow = _best_of(lambda: conj_stats(m_big, 2.0))
    t_conj_narrow_small = _best_of(lambda: conj_stats(m_small, 2.0))
    t_conj_big = _best_of(lambda: conj_stats(m_big, 30.0))
    k_narrow, k_wide = 0.02 * n, 0.30 * n
    conj_row = (t_conj_big - t_conj_narrow) * giga / (m_big
                                                      * (k_wide - k_narrow))
    # Two-point fit of the per-group terms at the *narrow* width, where
    # the per-candidate component is a small correction — differencing
    # the wide timings would drown the group terms in row-cost noise.
    row_small = conj_row * m_small * k_narrow / giga
    row_big = conj_row * m_big * k_narrow / giga
    conj_group, conj_batch_group = two_point_fit(
        t_conj_narrow_small - row_small, t_conj_narrow - row_big)

    return CostConstants(
        mask_row=_clamped(mask_row, d.mask_row),
        mask_clause=_clamped(mask_clause, d.mask_clause),
        mask_set_clause=_clamped(mask_set_clause, d.mask_set_clause),
        scatter_row=_clamped(scatter_row, d.scatter_row),
        mask_pred=d.mask_pred,
        range_group=_clamped(range_group, d.range_group),
        range_batch_group=_clamped(range_batch_group, d.range_batch_group),
        gather_row=_clamped(gather_row, d.gather_row),
        bucket_group=_clamped(bucket_group, d.bucket_group),
        bucket_code=_clamped(bucket_code, d.bucket_code),
        bucket_batch_group=_clamped(bucket_batch_group, d.bucket_batch_group),
        conj_row=_clamped(conj_row, d.conj_row),
        conj_group=_clamped(conj_group, d.conj_group),
        conj_batch_group=_clamped(conj_batch_group, d.conj_batch_group),
        tier_pred=d.tier_pred,
    )
