"""Prefix-aggregate index subsystem: O(log n) influence scoring for
single-clause range predicates.

:class:`PrefixAggregateIndex` sorts each labeled group's rows once per
attribute and precomputes prefix-summed aggregate state along that
order; :class:`IndexPlanner` routes each predicate of a batch to the
index fast path or the mask-matrix kernel.  See the module docstrings
of :mod:`repro.index.prefix` and :mod:`repro.index.planner` for the
exact-equality argument and the routing rules.
"""

from repro.index.planner import IndexPlanner, IndexRoute
from repro.index.prefix import (
    EXACT_SUM_BUDGET,
    GroupAttributeIndex,
    PrefixAggregateIndex,
    exactly_summable,
)

__all__ = [
    "EXACT_SUM_BUDGET",
    "GroupAttributeIndex",
    "IndexPlanner",
    "IndexRoute",
    "PrefixAggregateIndex",
    "exactly_summable",
]
