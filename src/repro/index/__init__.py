"""Prefix-aggregate index subsystem: sub-O(n) influence scoring for the
predicate shapes Scorpion's search floods the scorer with.

:class:`PrefixAggregateIndex` precomputes, per labeled group: sorted
rows plus prefix-summed aggregate state per continuous attribute
(single range clauses → two binary searches), and code-bucketed rows
plus per-bucket aggregate state per discrete attribute (single set
clauses → O(|codes|) bucket lookups).  2-clause conjunctions probe the
rarer clause's view and mask-test only its rows.
:class:`IndexPlanner` routes each predicate of a batch to the
argmin-estimated-cost tier — index or mask kernel — using the shared
:class:`CostModel` (per-tier nanosecond constants, microcalibrated
once per process; see :mod:`repro.index.cost`).  See the module
docstrings of :mod:`repro.index.prefix`, :mod:`repro.index.discrete`,
:mod:`repro.index.cost`, and :mod:`repro.index.planner` for the
exact-equality arguments and the routing rules.
"""

from repro.index.cost import (
    DEFAULT_CONSTANTS,
    CostConstants,
    CostModel,
    calibration_count,
    force_index_model,
    force_mask_model,
)
from repro.index.discrete import GroupDiscreteIndex
from repro.index.planner import ConjunctionPlan, IndexPlanner, IndexRoute
from repro.index.prefix import (
    EXACT_SUM_BUDGET,
    GroupAttributeIndex,
    PrefixAggregateIndex,
    exactly_summable,
    gather_slice_states,
)

__all__ = [
    "DEFAULT_CONSTANTS",
    "EXACT_SUM_BUDGET",
    "ConjunctionPlan",
    "CostConstants",
    "CostModel",
    "GroupAttributeIndex",
    "GroupDiscreteIndex",
    "IndexPlanner",
    "IndexRoute",
    "PrefixAggregateIndex",
    "calibration_count",
    "exactly_summable",
    "force_index_model",
    "force_mask_model",
    "gather_slice_states",
]
