"""Routing predicates between the index fast paths and the mask kernel.

The :class:`IndexPlanner` decides, per predicate of a ``score_batch``
call, which execution tier answers it:

* **range tier** — exactly one :class:`~repro.predicates.clause.RangeClause`
  over a continuous labeled attribute: two binary searches per group
  (see :mod:`repro.index.prefix`);
* **discrete-bucket tier** — exactly one
  :class:`~repro.predicates.clause.SetClause` over a factorized discrete
  labeled attribute: O(|codes|) bucket lookups per group (see
  :mod:`repro.index.discrete`);
* **conjunction tier** — exactly two clauses, both over attributes the
  index holds raw arrays for: the planner estimates each side's matched
  row total (exact counts off the per-group views, which the probe needs
  anyway), probes the *rarer* side's sorted slice or code buckets, and
  mask-tests only those k rows against the other clause;
* **mask kernel** — everything else: 3+-clause conjunctions, 2-clause
  conjunctions the tier cannot or should not take (an attribute without
  a prepared index view, or even the rarer side too unselective for
  probing to pay — both counted in the route's
  ``conjunction_fallbacks``), black-box aggregates (the scorer builds
  no index at all then), and user predicates over non-``A_rest``
  attributes.

Everything the planner rejects flows to
:meth:`~repro.predicates.evaluator.ArrayMaskEvaluator.evaluate_batch`
unchanged, so routing is purely an execution-strategy choice — results
are identical on every path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.index.prefix import PrefixAggregateIndex
from repro.predicates.clause import Clause, RangeClause, SetClause
from repro.predicates.predicate import Predicate


@dataclass(frozen=True)
class ConjunctionPlan:
    """An executable 2-clause conjunction: probe the ``probe`` clause's
    index view, mask-test its rows against ``other``.  Picklable — the
    parent plans, workers only execute."""

    probe: Clause
    other: Clause
    #: The probe side's estimated (exact) matched-row total across
    #: groups at plan time — diagnostics only, never re-checked.
    probe_count: int = 0


@dataclass
class IndexRoute:
    """One chunk-sized routing decision: which predicates take which
    index tier (with their clauses / plans pre-extracted) and which fall
    back to the mask-matrix kernel."""

    ranges: list[tuple[Predicate, RangeClause]] = field(default_factory=list)
    sets: list[tuple[Predicate, SetClause]] = field(default_factory=list)
    conjunctions: list[tuple[Predicate, ConjunctionPlan]] = field(
        default_factory=list)
    masked: list[Predicate] = field(default_factory=list)
    #: 2-clause predicates the planner examined for the conjunction tier
    #: but sent to the mask kernel instead (missing index view, or even
    #: the rarer clause too unselective for probing to pay).
    conjunction_fallbacks: int = 0

    @property
    def indexed_total(self) -> int:
        """Predicates answered by any index tier."""
        return len(self.ranges) + len(self.sets) + len(self.conjunctions)


class IndexPlanner:
    """Chooses the scoring path for each predicate of a batch."""

    #: Fraction of the labeled rows beyond which probing the rarer
    #: clause of a conjunction stops paying: the probe tier's cost is
    #: O(k) in the probe side's matched rows, so once even the rarer
    #: side covers most of the table the mask kernel's amortized
    #: whole-batch comparisons win.  Such conjunctions fall back
    #: (counted in ``conjunction_fallbacks``); results are identical
    #: either way.
    PROBE_FRACTION_CAP = 0.5

    def __init__(self, index: PrefixAggregateIndex | None):
        self.index = index
        #: Memoized clause → matched-row totals (clauses are immutable
        #: and the labeled rows never change, so counts are stable; the
        #: search re-submits the same clauses constantly).
        self._count_cache: dict = {}

    def _clause_count(self, clause) -> int:
        count = self._count_cache.get(clause)
        if count is None:
            assert self.index is not None
            count = self.index.estimate_clause_count(clause)
            self._count_cache[clause] = count
        return count

    @property
    def enabled(self) -> bool:
        return self.index is not None

    def fast_clause(self, predicate: Predicate) -> RangeClause | None:
        """The predicate's range-tier clause, or None when that tier
        cannot answer it."""
        if self.index is None or predicate.num_clauses != 1:
            return None
        clause = predicate.clauses[0]
        if not isinstance(clause, RangeClause):
            return None
        if not self.index.supports(clause.attribute):
            return None
        return clause

    def fast_set_clause(self, predicate: Predicate) -> SetClause | None:
        """The predicate's discrete-bucket-tier clause, or None when
        that tier cannot answer it."""
        if self.index is None or predicate.num_clauses != 1:
            return None
        clause = predicate.clauses[0]
        if not isinstance(clause, SetClause):
            return None
        if not self.index.supports_discrete(clause.attribute):
            return None
        return clause

    def plan_conjunction(self, predicate: Predicate) -> ConjunctionPlan | None:
        """An executable plan for a 2-clause conjunction, or None when
        either clause lacks a prepared index view or even the rarer
        clause exceeds :attr:`PROBE_FRACTION_CAP` (the caller falls back
        to the mask kernel — never an error; see the fallback contract
        in the module docstring)."""
        if self.index is None or predicate.num_clauses != 2:
            return None
        first, second = predicate.clauses
        # Both sides must be backed by raw index arrays: the probe side
        # needs a sorted/bucketed view, the other side needs the value
        # or code array its membership test reads.
        if not (self.index.supports_clause(first)
                and self.index.supports_clause(second)):
            return None
        first_count = self._clause_count(first)
        second_count = self._clause_count(second)
        probe_count = min(first_count, second_count)
        if probe_count > self.PROBE_FRACTION_CAP * self.index.n_labeled_rows:
            return None
        if first_count <= second_count:
            return ConjunctionPlan(first, second, first_count)
        return ConjunctionPlan(second, first, second_count)

    def partition(self, predicates: Sequence[Predicate] | Iterable[Predicate],
                  ) -> IndexRoute:
        """Split a batch across the index tiers and the mask path,
        preserving relative order within each path."""
        route = IndexRoute()
        for predicate in predicates:
            clause = self.fast_clause(predicate)
            if clause is not None:
                route.ranges.append((predicate, clause))
                continue
            set_clause = self.fast_set_clause(predicate)
            if set_clause is not None:
                route.sets.append((predicate, set_clause))
                continue
            if self.index is not None and predicate.num_clauses == 2:
                plan = self.plan_conjunction(predicate)
                if plan is not None:
                    route.conjunctions.append((predicate, plan))
                    continue
                route.conjunction_fallbacks += 1
            route.masked.append(predicate)
        return route
