"""Routing predicates between the index fast path and the mask kernel.

The :class:`IndexPlanner` decides, per predicate of a ``score_batch``
call, whether the prefix-aggregate index can answer it:

* exactly one clause (conjunctions need cross-attribute mask
  intersection, which is the mask kernel's job);
* that clause is a :class:`~repro.predicates.clause.RangeClause`
  (discrete set clauses have no sorted-order contiguity);
* the attribute is a continuous column of the labeled rows (anything
  else — including user predicates over non-``A_rest`` attributes —
  keeps its existing fallback);
* the scorer is on the incrementally-removable path (black-box
  aggregates must recompute from raw matched values, so they need the
  mask rows regardless).

Everything the planner rejects flows to
:meth:`~repro.predicates.evaluator.ArrayMaskEvaluator.evaluate_batch`
unchanged, so routing is purely an execution-strategy choice — results
are identical on either path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.index.prefix import PrefixAggregateIndex
from repro.predicates.clause import RangeClause
from repro.predicates.predicate import Predicate


@dataclass
class IndexRoute:
    """One chunk-sized routing decision: which predicates take the index
    fast path (with their single range clause pre-extracted) and which
    fall back to the mask-matrix kernel."""

    indexed: list[tuple[Predicate, RangeClause]]
    masked: list[Predicate]


class IndexPlanner:
    """Chooses the scoring path for each predicate of a batch."""

    def __init__(self, index: PrefixAggregateIndex | None):
        self.index = index

    @property
    def enabled(self) -> bool:
        return self.index is not None

    def fast_clause(self, predicate: Predicate) -> RangeClause | None:
        """The predicate's index-answerable clause, or None when it must
        go through the mask kernel."""
        if self.index is None or predicate.num_clauses != 1:
            return None
        clause = predicate.clauses[0]
        if not isinstance(clause, RangeClause):
            return None
        if not self.index.supports(clause.attribute):
            return None
        return clause

    def partition(self, predicates: Sequence[Predicate] | Iterable[Predicate],
                  ) -> IndexRoute:
        """Split a batch into index-path and mask-path predicates,
        preserving relative order within each path."""
        route = IndexRoute(indexed=[], masked=[])
        for predicate in predicates:
            clause = self.fast_clause(predicate)
            if clause is None:
                route.masked.append(predicate)
            else:
                route.indexed.append((predicate, clause))
        return route
