"""Routing predicates between the index fast paths and the mask kernel.

The :class:`IndexPlanner` decides, per predicate of a ``score_batch``
call, which execution tier answers it:

* **range tier** — exactly one :class:`~repro.predicates.clause.RangeClause`
  over a continuous labeled attribute: two binary searches per group
  (see :mod:`repro.index.prefix`);
* **discrete-bucket tier** — exactly one
  :class:`~repro.predicates.clause.SetClause` over a factorized discrete
  labeled attribute: O(|codes|) bucket lookups per group (see
  :mod:`repro.index.discrete`);
* **conjunction tier** — exactly two clauses, both over attributes the
  index holds raw arrays for: the planner counts each side's matched
  rows exactly (one vectorized pass over the per-group views, which are
  built anyway for the probe itself), probes the *rarer* side's sorted
  slice or code buckets, and mask-tests only those k rows against the
  other clause;
* **mask kernel** — everything else: 3+-clause conjunctions, clauses
  over attributes without a prepared index view, black-box aggregates
  (the scorer builds no index at all then), user predicates over
  non-``A_rest`` attributes — and any *supported* shape whose index
  tier the cost model prices above the mask kernel.

Every eligible predicate is routed by **estimated cost**: the planner
prices the candidate tier and the mask alternative with the shared
:class:`~repro.index.cost.CostModel` (single clauses at the worst-case
``k = n``, where the per-matched-row terms largely cancel;
conjunctions at their exact probe counts) and picks the argmin.  The
old fixed ``PROBE_FRACTION_CAP`` heuristic is gone — unselective
probes now lose on price, not on a threshold.  Each decision is
tallied in the route's ``cost_routed_*`` counters, which surface as
``scorer_stats`` so the differential oracle can replay a partition and
assert serial/parallel routing parity.

Everything the planner rejects flows to
:meth:`~repro.predicates.evaluator.ArrayMaskEvaluator.evaluate_batch`
unchanged, so routing is purely an execution-strategy choice — results
are identical on every path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.index.cost import CostModel
from repro.index.prefix import PrefixAggregateIndex
from repro.predicates.clause import Clause, RangeClause, SetClause
from repro.predicates.predicate import Predicate


@dataclass(frozen=True)
class ConjunctionPlan:
    """An executable 2-clause conjunction: probe the ``probe`` clause's
    index view, mask-test its rows against ``other``.  Picklable — the
    parent plans, workers only execute."""

    probe: Clause
    other: Clause
    #: The probe side's estimated (exact) matched-row total across
    #: groups at plan time — diagnostics only, never re-checked.
    probe_count: int = 0


@dataclass
class IndexRoute:
    """One chunk-sized routing decision: which predicates take which
    index tier (with their clauses / plans pre-extracted) and which fall
    back to the mask-matrix kernel."""

    ranges: list[tuple[Predicate, RangeClause]] = field(default_factory=list)
    sets: list[tuple[Predicate, SetClause]] = field(default_factory=list)
    conjunctions: list[tuple[Predicate, ConjunctionPlan]] = field(
        default_factory=list)
    masked: list[Predicate] = field(default_factory=list)
    #: 2-clause predicates the planner examined for the conjunction tier
    #: but sent to the mask kernel instead (missing index view, or the
    #: cost model pricing the probe above the mask kernel).
    conjunction_fallbacks: int = 0
    #: Cost-model decisions, by winning route.  These count only
    #: predicates the planner actually priced (index-eligible shapes);
    #: structurally unsupported predicates go to the mask kernel without
    #: a decision and appear in none of them.
    cost_routed_mask: int = 0
    cost_routed_prefix: int = 0
    cost_routed_bucket: int = 0
    cost_routed_gather: int = 0
    cost_routed_conj: int = 0

    @property
    def indexed_total(self) -> int:
        """Predicates answered by any index tier."""
        return len(self.ranges) + len(self.sets) + len(self.conjunctions)


class IndexPlanner:
    """Chooses the scoring path for each predicate of a batch by
    estimated cost (see the module docstring).

    ``cost_model`` defaults to the process-wide
    :meth:`~repro.index.cost.CostModel.shared` singleton, resolved
    lazily on the first priced decision — worker processes adopt plans
    from the parent and never partition, so they never trigger a
    calibration pass, and serial/parallel runs of one process price
    from identical constants.
    """

    def __init__(self, index: PrefixAggregateIndex | None,
                 cost_model: CostModel | None = None):
        self.index = index
        self._cost_model = cost_model
        #: Memoized clause → matched-row totals (clauses are immutable
        #: and the labeled rows never change, so counts are stable; the
        #: search re-submits the same clauses constantly).
        self._count_cache: dict = {}
        #: Memoized single-clause decisions — pure functions of the
        #: index shape (and, for set clauses, the wanted-code count).
        self._range_choice: bool | None = None
        self._set_choices: dict[int, bool] = {}

    @property
    def cost_model(self) -> CostModel:
        """The model pricing this planner's decisions (shared singleton
        unless one was injected)."""
        if self._cost_model is None:
            self._cost_model = CostModel.shared()
        return self._cost_model

    def _clause_count(self, clause) -> int:
        count = self._count_cache.get(clause)
        if count is None:
            assert self.index is not None
            count = self.index.estimate_clause_count(clause)
            self._count_cache[clause] = count
        return count

    def prime_clause_counts(self, clauses: Iterable[Clause]) -> None:
        """Batch-count every not-yet-cached clause in one vectorized
        pass (see :meth:`PrefixAggregateIndex.estimate_clause_counts`).
        Per-clause Python counting loops used to dominate planning on
        large conjunction batches — the old ``conj/sum`` perf cliff."""
        assert self.index is not None
        fresh = [clause for clause in dict.fromkeys(clauses)
                 if clause not in self._count_cache]
        if not fresh:
            return
        counts = self.index.estimate_clause_counts(fresh)
        for clause, count in zip(fresh, counts):
            self._count_cache[clause] = int(count)

    @property
    def enabled(self) -> bool:
        return self.index is not None

    def fast_clause(self, predicate: Predicate) -> RangeClause | None:
        """The predicate's range-tier clause, or None when that tier
        cannot answer it."""
        if self.index is None or predicate.num_clauses != 1:
            return None
        clause = predicate.clauses[0]
        if not isinstance(clause, RangeClause):
            return None
        if not self.index.supports(clause.attribute):
            return None
        return clause

    def fast_set_clause(self, predicate: Predicate) -> SetClause | None:
        """The predicate's discrete-bucket-tier clause, or None when
        that tier cannot answer it."""
        if self.index is None or predicate.num_clauses != 1:
            return None
        clause = predicate.clauses[0]
        if not isinstance(clause, SetClause):
            return None
        if not self.index.supports_discrete(clause.attribute):
            return None
        return clause

    # ------------------------------------------------------------------
    # Cost decisions
    # ------------------------------------------------------------------
    def single_range_decision(self) -> bool:
        """Whether the range tier beats the mask kernel for single-range
        predicates on this index's shape.  Both sides are priced at the
        worst case ``k = n`` (counting first would cost as much as the
        exact tier's answer), where the per-matched-row terms largely
        cancel and the decision reduces to per-group search cost versus
        per-row comparison cost."""
        if self._range_choice is None:
            index = self.index
            n = index.n_labeled_rows
            model = self.cost_model
            tier = model.range_cost(index.n_groups, n, index.all_exact)
            mask = model.mask_cost(n, n, n_range_clauses=1)
            self._range_choice = tier <= mask
        return self._range_choice

    def single_set_decision(self, n_codes: int) -> bool:
        """Whether the bucket tier beats the mask kernel for a single
        set clause wanting ``n_codes`` codes (same worst-case ``k = n``
        pricing as :meth:`single_range_decision`)."""
        choice = self._set_choices.get(n_codes)
        if choice is None:
            index = self.index
            n = index.n_labeled_rows
            model = self.cost_model
            tier = model.set_cost(index.n_groups, n_codes, n,
                                  index.all_exact)
            mask = model.mask_cost(n, n, n_range_clauses=0, n_set_clauses=1)
            choice = tier <= mask
            self._set_choices[n_codes] = choice
        return choice

    def conjunction_decision(self, predicate: Predicate,
                             ) -> ConjunctionPlan | None:
        """Price the conjunction tier against the mask kernel for an
        index-eligible 2-clause predicate (both clauses already verified
        supported, counts already cached or cheaply countable).

        The probe is the rarer side; the tier's cost scales with its
        exact matched total ``k_probe``, the mask alternative with the
        full row count plus a scatter term at the expected intersection
        size ``k_probe / 2``.  Returns the plan when the tier wins, else
        None (the caller masks the predicate and counts a fallback).
        """
        first, second = predicate.clauses
        first_count = self._clause_count(first)
        second_count = self._clause_count(second)
        if first_count <= second_count:
            probe, other, k_probe = first, second, first_count
        else:
            probe, other, k_probe = second, first, second_count
        index = self.index
        model = self.cost_model
        probe_is_set = isinstance(probe, SetClause)
        n_probe_codes = 0
        if probe_is_set:
            n_probe_codes = min(len(probe.values),
                                index.n_codes(probe.attribute))
        tier = model.conjunction_cost(index.n_groups, k_probe,
                                      probe_is_set, n_probe_codes)
        n_set = sum(isinstance(c, SetClause) for c in (first, second))
        mask = model.mask_cost(index.n_labeled_rows, k_probe / 2,
                               n_range_clauses=2 - n_set,
                               n_set_clauses=n_set)
        if tier > mask:
            return None
        return ConjunctionPlan(probe, other, k_probe)

    def plan_conjunction(self, predicate: Predicate) -> ConjunctionPlan | None:
        """An executable plan for a 2-clause conjunction, or None when
        either clause lacks a prepared index view or the cost model
        prices the probe above the mask kernel (the caller falls back to
        the mask kernel — never an error; see the fallback contract in
        the module docstring)."""
        if self.index is None or predicate.num_clauses != 2:
            return None
        first, second = predicate.clauses
        # Both sides must be backed by raw index arrays: the probe side
        # needs a sorted/bucketed view, the other side needs the value
        # or code array its membership test reads.
        if not (self.index.supports_clause(first)
                and self.index.supports_clause(second)):
            return None
        return self.conjunction_decision(predicate)

    def partition(self, predicates: Sequence[Predicate] | Iterable[Predicate],
                  ) -> IndexRoute:
        """Split a batch across the index tiers and the mask path by
        estimated cost.

        Two passes: single clauses are decided inline (their decisions
        are memoized pure functions of the index shape), while
        index-eligible pairs are deferred, their clause counts primed in
        one vectorized batch, and then priced individually.  Relative
        order is preserved within each tier's list; cost-masked pairs
        join ``masked`` after the first pass's rejects (order across
        paths carries no meaning — the scorer reassembles by position).
        """
        route = IndexRoute()
        pending_pairs: list[Predicate] = []
        for predicate in predicates:
            clause = self.fast_clause(predicate)
            if clause is not None:
                if self.single_range_decision():
                    route.ranges.append((predicate, clause))
                    if self.index.all_exact:
                        route.cost_routed_prefix += 1
                    else:
                        route.cost_routed_gather += 1
                else:
                    route.cost_routed_mask += 1
                    route.masked.append(predicate)
                continue
            set_clause = self.fast_set_clause(predicate)
            if set_clause is not None:
                n_codes = min(len(set_clause.values),
                              self.index.n_codes(set_clause.attribute))
                if self.single_set_decision(n_codes):
                    route.sets.append((predicate, set_clause))
                    if self.index.all_exact:
                        route.cost_routed_bucket += 1
                    else:
                        route.cost_routed_gather += 1
                else:
                    route.cost_routed_mask += 1
                    route.masked.append(predicate)
                continue
            if self.index is not None and predicate.num_clauses == 2:
                first, second = predicate.clauses
                if (self.index.supports_clause(first)
                        and self.index.supports_clause(second)):
                    pending_pairs.append(predicate)
                    continue
                route.conjunction_fallbacks += 1
            route.masked.append(predicate)
        if pending_pairs:
            self.prime_clause_counts(
                clause for p in pending_pairs for clause in p.clauses)
            for predicate in pending_pairs:
                plan = self.conjunction_decision(predicate)
                if plan is not None:
                    route.conjunctions.append((predicate, plan))
                    route.cost_routed_conj += 1
                else:
                    route.conjunction_fallbacks += 1
                    route.cost_routed_mask += 1
                    route.masked.append(predicate)
        return route
