"""Discrete code-bucket indexes: per-(group, attribute) rows grouped by
factorized code with per-bucket aggregate state, so a set clause
``attr IN {...}`` is answered by O(|codes|) bucket lookups instead of an
O(n) mask row.

For every (group, discrete attribute) pair the index stable-sorts the
group's rows by the attribute's integer code once (the same factorized
codes the labeled :class:`~repro.predicates.evaluator.ArrayMaskEvaluator`
compares against, so bucket membership equals mask membership).  The
rows matching a set clause are then exactly the union of the wanted
codes' contiguous buckets in that order, which yields the matched count
as a sum of bucket lengths and the summed removed state through one of
two tiers:

**Bucket tier (O(|wanted codes|) per predicate).**  When every state
column of the group is *exactly summable* (see
:func:`repro.index.prefix.exactly_summable`), each bucket's summed state
is an exact integer, and so is any sum of bucket sums — every partial
sum stays below the 2**52 budget, hence exactly representable and
independent of summation order.  Summing the wanted buckets' precomputed
states therefore reproduces the scalar path's masked in-order sum bit
for bit.

**Gather tier (O(|wanted codes| + k) per predicate).**  For general
float states the wanted buckets' row positions are gathered, re-sorted
into ascending row order, and scatter-added with the same in-input-order
``np.bincount`` kernel the batched mask path uses — same rows, same
ascending-row accumulation order, same elementwise adds — while touching
only the ``k`` matched rows.

See :mod:`repro.index.planner` for how set clauses are routed here.
"""

from __future__ import annotations

import numpy as np


class GroupDiscreteIndex:
    """One group's rows bucketed by one discrete attribute's codes.

    ``order`` maps bucket positions to the group's local row positions
    (rows stable-sorted by code); ``offsets`` is the ``(n_codes + 1,)``
    bucket boundary array — code ``c``'s rows sit at
    ``order[offsets[c]:offsets[c + 1]]``; ``bucket_states`` holds the
    ``(n_codes, state_size)`` exact per-bucket summed states when the
    group is on the bucket tier, else None (gather tier).
    """

    __slots__ = ("order", "offsets", "bucket_states")

    def __init__(self, codes: np.ndarray, n_codes: int,
                 tuple_states: np.ndarray | None, exact: bool):
        order = np.argsort(codes, kind="stable").astype(np.int64, copy=False)
        self.order = order
        sorted_codes = codes[order]
        self.offsets = np.searchsorted(
            sorted_codes, np.arange(n_codes + 1, dtype=np.int64),
        ).astype(np.int64, copy=False)
        self.bucket_states: np.ndarray | None = None
        if exact and tuple_states is not None:
            # Per-bucket exact sums via prefix differences along the
            # code-sorted order (exact by the integer-summability
            # argument in the module docstring).
            prefix = np.zeros((len(codes) + 1, tuple_states.shape[1]),
                              dtype=np.float64)
            np.cumsum(tuple_states[order], axis=0, out=prefix[1:])
            self.bucket_states = prefix[self.offsets[1:]] - prefix[self.offsets[:-1]]

    @classmethod
    def from_arrays(cls, order: np.ndarray, offsets: np.ndarray,
                    bucket_states: np.ndarray | None) -> "GroupDiscreteIndex":
        """Adopt already-built views (no sort, no bucket sums) — used by
        the parallel executor to install shared-memory copies of a
        parent process's build, which are byte-identical by
        construction."""
        self = cls.__new__(cls)
        self.order = order
        self.offsets = offsets
        self.bucket_states = bucket_states
        return self

    @property
    def n_codes(self) -> int:
        return len(self.offsets) - 1

    def resident_bytes(self) -> int:
        """Bytes of view data this group's bucket index holds (the
        permutation, bucket offsets, and exact bucket sums when on the
        bucket tier)."""
        total = self.order.nbytes + self.offsets.nbytes
        if self.bucket_states is not None:
            total += self.bucket_states.nbytes
        return int(total)

    @property
    def uses_buckets(self) -> bool:
        """Whether removed states come from O(1) exact bucket sums."""
        return self.bucket_states is not None

    @property
    def bucket_counts(self) -> np.ndarray:
        """Rows per code bucket, ``(n_codes,)``."""
        return np.diff(self.offsets)

    def rows_for_codes(self, wanted: np.ndarray) -> np.ndarray:
        """Local row positions matching any wanted code (bucket order,
        not row order — callers that need ascending rows must sort)."""
        if not len(wanted):
            return np.empty(0, dtype=np.int64)
        return np.concatenate([
            self.order[self.offsets[c]:self.offsets[c + 1]] for c in wanted
        ])
