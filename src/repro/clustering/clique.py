"""The classic CLIQUE subspace-clustering algorithm [Agrawal et al.].

Bottom-up search for dense subspaces: start from 1-dimensional grid
units, keep those whose density clears the threshold, join surviving
pairs that share all but one attribute (Apriori-style — density is
anti-monotone, so a dense unit's projections must all be dense), and
repeat until no dense units remain.  Finally, adjacent dense units of
the same subspace are merged into clusters.

This is the algorithm the MC partitioner (Section 6.2) adapts from
density to influence; it also serves as the density-only baseline in
``benchmarks/bench_ablation_clique.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clustering.units import GridUnit, grid_units, unit_predicate
from repro.errors import PartitionerError
from repro.predicates.predicate import Predicate
from repro.table.table import Table


@dataclass(frozen=True)
class CliqueCluster:
    """A maximal set of adjacent dense units in one subspace."""

    units: tuple[GridUnit, ...]
    predicate: Predicate

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.units[0].attributes

    @property
    def support(self) -> frozenset:
        out: frozenset = frozenset()
        for unit in self.units:
            out = out | unit.support
        return out


class Clique:
    """Dense-subspace search over a table.

    Parameters
    ----------
    density_threshold:
        Minimum fraction of rows a unit must contain to be dense.
    n_bins:
        Equi-width bins per continuous attribute.
    max_dimensionality:
        Stop after subspaces of this many attributes.
    """

    def __init__(self, density_threshold: float = 0.05, n_bins: int = 10,
                 max_dimensionality: int | None = None):
        if not 0 < density_threshold <= 1:
            raise PartitionerError("density_threshold must be in (0, 1]")
        self.density_threshold = density_threshold
        self.n_bins = n_bins
        self.max_dimensionality = max_dimensionality

    def fit(self, table: Table, attributes: list[str]) -> list[CliqueCluster]:
        """All clusters of dense units, across every dense subspace."""
        total = len(table)
        units, discretizers = grid_units(table, attributes, self.n_bins)
        dense = [u for u in units if u.density(total) >= self.density_threshold]
        clusters: list[CliqueCluster] = []
        max_dim = self.max_dimensionality or len(attributes)
        dimension = 1
        while dense and dimension <= max_dim:
            clusters.extend(self._merge_adjacent(dense, table, discretizers))
            if dimension == max_dim:
                break
            dense = self._join_level(dense, total)
            dimension += 1
        return clusters

    def _join_level(self, dense: list[GridUnit], total: int) -> list[GridUnit]:
        by_subspace: dict[tuple[str, ...], list[GridUnit]] = {}
        for unit in dense:
            by_subspace.setdefault(unit.attributes, []).append(unit)
        produced: dict[tuple, GridUnit] = {}
        subspaces = list(by_subspace)
        for i, space_a in enumerate(subspaces):
            for space_b in subspaces[i:]:
                combined = set(space_a) | set(space_b)
                if len(combined) != len(space_a) + 1:
                    continue
                for unit_a in by_subspace[space_a]:
                    for unit_b in by_subspace[space_b]:
                        joined = unit_a.join(unit_b)
                        if joined is None:
                            continue
                        if joined.density(total) < self.density_threshold:
                            continue
                        produced.setdefault(joined.keys, joined)
        return list(produced.values())

    def _merge_adjacent(self, dense: list[GridUnit], table: Table,
                        discretizers) -> list[CliqueCluster]:
        """Greedy connected components over unit adjacency."""
        remaining = list(dense)
        clusters = []
        while remaining:
            component = [remaining.pop()]
            changed = True
            while changed:
                changed = False
                still_out = []
                for unit in remaining:
                    if any(unit.is_adjacent_to(member) for member in component):
                        component.append(unit)
                        changed = True
                    else:
                        still_out.append(unit)
                remaining = still_out
            predicate = unit_predicate(component[0], table, discretizers)
            for unit in component[1:]:
                predicate = predicate.merge(
                    unit_predicate(unit, table, discretizers))
            clusters.append(CliqueCluster(tuple(component), predicate))
        return clusters
