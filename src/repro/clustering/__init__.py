"""CLIQUE-style subspace clustering substrate (paper Section 6.2 cites
Agrawal et al. [1]).

The MC partitioner adapts this algorithm from density to influence; the
classic density-driven version lives here as an independently usable
(and independently tested) substrate, and as the baseline for the MC
ablation benchmark: grid the space, find dense units bottom-up with the
Apriori-style join, and merge adjacent dense units into clusters.
"""

from repro.clustering.clique import Clique, CliqueCluster
from repro.clustering.units import GridUnit, grid_units

__all__ = [
    "Clique",
    "CliqueCluster",
    "GridUnit",
    "grid_units",
]
