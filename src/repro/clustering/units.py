"""Grid units: the cells CLIQUE counts support in.

A :class:`GridUnit` is an axis-aligned cell over a subset of attributes,
identified by per-attribute unit keys (bin index for continuous
attributes, the value itself for discrete ones).  Units carry their
support — the row positions they contain — so joins are set
intersections, exactly as in the MC partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionerError
from repro.predicates.clause import SetClause
from repro.predicates.discretizer import EquiWidthDiscretizer
from repro.predicates.predicate import Predicate
from repro.table.table import Table


@dataclass(frozen=True)
class GridUnit:
    """A cell of the (sub)grid with its supporting rows."""

    #: ``(attribute, unit key)`` pairs, sorted by attribute.
    keys: tuple[tuple[str, object], ...]
    support: frozenset

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(attr for attr, _ in self.keys)

    @property
    def dimensionality(self) -> int:
        return len(self.keys)

    def density(self, total_rows: int) -> float:
        if total_rows <= 0:
            return 0.0
        return len(self.support) / total_rows

    def join(self, other: "GridUnit") -> "GridUnit | None":
        """The (k+1)-dimensional unit combining two k-dimensional units
        that agree on their shared attributes, or None."""
        merged = dict(self.keys)
        for attr, key in other.keys:
            if attr in merged:
                if merged[attr] != key:
                    return None
            else:
                merged[attr] = key
        if len(merged) != self.dimensionality + 1:
            return None
        support = self.support & other.support
        if not support:
            return None
        return GridUnit(tuple(sorted(merged.items())), support)

    def is_adjacent_to(self, other: "GridUnit") -> bool:
        """Same attributes, identical on all but one, and differing by
        exactly one bin step on that one (discrete keys never count as
        adjacent — there is no order to step along)."""
        if self.attributes != other.attributes:
            return False
        differing = [
            (mine, theirs)
            for (_, mine), (_, theirs) in zip(self.keys, other.keys)
            if mine != theirs
        ]
        if len(differing) != 1:
            return False
        mine, theirs = differing[0]
        if isinstance(mine, (int, np.integer)) and isinstance(theirs, (int, np.integer)):
            return abs(int(mine) - int(theirs)) == 1
        return False


def grid_units(table: Table, attributes: list[str], n_bins: int = 10,
               ) -> tuple[list[GridUnit], dict[str, EquiWidthDiscretizer]]:
    """The 1-dimensional units of every attribute, plus the discretizers
    used for the continuous ones."""
    if not attributes:
        raise PartitionerError("grid_units needs at least one attribute")
    units: list[GridUnit] = []
    discretizers: dict[str, EquiWidthDiscretizer] = {}
    for name in attributes:
        spec = table.schema[name]
        values = table.values(name)
        positions: dict[object, list[int]] = {}
        if spec.is_continuous:
            column = table.column(name)
            grid = EquiWidthDiscretizer(name, column.min(), column.max(), n_bins)
            discretizers[name] = grid
            for i, value in enumerate(values):
                positions.setdefault(grid.bin_index(float(value)), []).append(i)
        else:
            for i, value in enumerate(values):
                positions.setdefault(value, []).append(i)
        for key in sorted(positions, key=repr):
            units.append(GridUnit(((name, key),), frozenset(positions[key])))
    return units, discretizers


def unit_predicate(unit: GridUnit, table: Table,
                   discretizers: dict[str, EquiWidthDiscretizer]) -> Predicate:
    """Materialize a unit as a Scorpion predicate."""
    clauses = []
    for attr, key in unit.keys:
        if attr in discretizers:
            clauses.append(discretizers[attr].cell(int(key)))
        else:
            clauses.append(SetClause(attr, [key]))
    return Predicate(clauses)
