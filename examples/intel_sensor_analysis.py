"""The paper's INTEL workloads: explaining sensor failures (Section 8.4).

Two failure scenarios on a simulated Intel Lab deployment, both analyzed
through ``SELECT stddev(temp) FROM readings GROUP BY hour``:

* workload 1 — sensor 15 dies and floods the trace with >100°C readings
  at a characteristic voltage band;
* workload 2 — sensor 18 loses battery power; readings peak when its
  light sensor reads 283–354 lux.

For each workload we sweep the Section 7 knob ``c`` and print the
predicate Scorpion returns, plus its accuracy against the known failure
rows.  Expect ``sensorid = 15`` / ``sensorid = 18`` (possibly refined by
voltage/light clauses at high ``c``), mirroring the paper's findings.

Run:  python examples/intel_sensor_analysis.py
"""

from repro import Scorpion
from repro.datasets import make_intel
from repro.eval import format_table, score_predicate


def analyze(workload: int, c_values=(1.0, 0.5, 0.1)) -> None:
    dataset = make_intel(workload, readings_per_sensor_hour=5)
    print(f"\n=== INTEL workload {workload}: failing sensor "
          f"{dataset.config.failing_sensor} ===")
    print(f"rows: {len(dataset.table):,}; outlier hours: "
          f"{len(dataset.outlier_keys)}; hold-out hours: "
          f"{len(dataset.holdout_keys)}")

    scorpion = Scorpion(algorithm="dt", use_cache=True)
    rows = []
    for c in c_values:
        problem = dataset.scorpion_query(c=c)
        result = scorpion.explain(problem)
        best = result.best
        stats = score_predicate(best.predicate, dataset.table,
                                dataset.failure_mask,
                                dataset.outlier_row_indices())
        rows.append([c, str(best.predicate), round(stats.f_score, 3),
                     round(result.elapsed, 2)])
    print(format_table(f"workload {workload} explanations by c",
                       ["c", "predicate", "F-score", "seconds"], rows))


def main() -> None:
    analyze(1)
    analyze(2)
    print("\nBoth workloads isolate the failing sensor; the paper reports")
    print("the same predicates on the real trace (Section 8.4).")


if __name__ == "__main__":
    main()
