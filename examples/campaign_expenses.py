"""The paper's EXPENSE workload: where did the Obama campaign's money go?
(Section 8.4.)

The daily-total query shows seven days above $10M against a typical
baseline.  The aggregate is SUM over non-negative amounts — independent
*and* anti-monotone — so Scorpion's auto-selection runs the bottom-up MC
partitioner.  Sweeping ``c`` reproduces the paper's finding: high ``c``
isolates the expensive GMMB INC. media-buy filing (file_num 800316,
average ≈ $2.7M per buy); low ``c`` relaxes to all GMMB payments.

Run:  python examples/campaign_expenses.py
"""

from repro import Scorpion
from repro.datasets import ExpensesConfig, generate_expenses
from repro.eval import format_table, score_predicate


def main() -> None:
    dataset = generate_expenses(ExpensesConfig(seed=0))
    effective = dataset.effective_table()
    print(f"expense rows: {len(dataset.table):,} "
          f"({len(effective):,} for the Obama campaign)")

    results = dataset.query().execute(dataset.table)
    print("\nTop five spending days:")
    top_days = sorted(results, key=lambda r: r.value, reverse=True)[:5]
    print(format_table("daily totals", ["date", "total ($)"],
                       [[r.key_string(), f"{r.value:,.0f}"] for r in top_days]))

    rows = []
    for c in (1.0, 0.5, 0.2, 0.05, 0.0):
        problem = dataset.scorpion_query(c=c)
        result = Scorpion().explain(problem)
        best = result.best
        stats = score_predicate(best.predicate, effective,
                                dataset.effective_truth_mask(),
                                dataset.outlier_row_indices())
        rows.append([c, result.algorithm, str(best.predicate),
                     round(stats.precision, 3), round(stats.recall, 3),
                     round(stats.f_score, 3)])
    print()
    print(format_table(
        "explanations by c (ground truth: tuples over $1.5M)",
        ["c", "algorithm", "predicate", "precision", "recall", "F"], rows))

    print("\nHigh c pins the 800316 media-buy filing; low c widens to all")
    print("GMMB INC. payments — the paper's Section 8.4 progression.")


if __name__ == "__main__":
    main()
