"""Comparing NAIVE, DT and MC on the paper's SYNTH workload.

Generates SYNTH-2D-Hard (µ = 30: outlier values barely above normal),
flags the five outlier groups, and runs all three partitioning
algorithms, scoring each against the outer-cube ground truth — a compact
version of the Section 8.3.2 experiments.  DT and MC should land within
a few F-score points of the exhaustive NAIVE baseline while running
orders of magnitude faster at NAIVE's full budget.

Also renders the paper's Figure 8: the outlier groups' tuples (normal
`.`, medium `o`, high `#`) with the recovered predicate box overlaid.

Run:  python examples/synthetic_comparison.py
"""

from repro.datasets import make_synth
from repro.eval import ascii_scatter, format_table, overlay_box
from repro.eval.runner import run_algorithm


def show_figure8(dataset, predicate) -> None:
    rows = dataset.outlier_row_indices()
    plot = ascii_scatter(
        dataset.table.values("a1")[rows],
        dataset.table.values("a2")[rows],
        labels=dataset.labels[rows],
        width=64, height=20,
        x_range=(0, 100), y_range=(0, 100),
        label_chars=".o#",
    )
    print("\nOutlier-group tuples (normal '.', medium 'o', high '#') with")
    print("the recovered predicate box ('='/'I'):")
    print(overlay_box(plot, predicate, "a1", "a2", (0, 100), (0, 100)))


def main() -> None:
    dataset = make_synth(2, "hard", tuples_per_group=1000, seed=0)
    print(f"SYNTH-2D-Hard: {len(dataset.table):,} rows, "
          f"outer cube {[(round(lo, 1), round(hi, 1)) for lo, hi in dataset.outer_cube]}")

    problem = dataset.scorpion_query(c=0.1)
    rows = []
    best_record = None
    for name, kwargs in (
        ("naive", {"time_budget": 20.0}),
        ("dt", {}),
        ("mc", {}),
    ):
        record = run_algorithm(
            name, problem,
            table=dataset.table,
            truth_mask=dataset.truth_outer(),
            outlier_rows=dataset.outlier_row_indices(),
            **kwargs,
        )
        if best_record is None or record.f_score > best_record.f_score:
            best_record = record
        rows.append([name, str(record.predicate),
                     round(record.precision, 3), round(record.recall, 3),
                     round(record.f_score, 3), round(record.runtime, 2)])
    print()
    print(format_table("algorithm comparison (c = 0.1, outer ground truth)",
                       ["algorithm", "predicate", "precision", "recall",
                        "F", "seconds"], rows))
    show_figure8(dataset, best_record.predicate)
    print("\nDT/MC quality is comparable to the exhaustive baseline —")
    print("the paper's Figure 12/13 takeaway.")


if __name__ == "__main__":
    main()
