"""Plugging a user-defined aggregate into Scorpion (paper Section 5).

Scorpion works with arbitrary aggregates, but declaring the Section 5
properties unlocks the fast algorithms.  This example defines a
``sum_of_squares`` aggregate (an "energy" metric over a signal column)
three ways:

1. black box — only ``compute``; Scorpion falls back to NAIVE;
2. + incrementally removable (``state/update/remove/recover``) — the
   Scorer stops re-reading group data;
3. + independent and anti-monotone (``check`` on non-negative squares is
   always true) — the MC partitioner becomes applicable.

Run:  python examples/custom_aggregate.py
"""

import numpy as np

from repro import (
    AggregateFunction,
    ColumnKind,
    ColumnSpec,
    GroupByQuery,
    Schema,
    Scorpion,
    ScorpionQuery,
    Table,
)
from repro.aggregates import LinearStateAggregate
from repro.errors import AggregateError


class SumOfSquaresBlackBox(AggregateFunction):
    """Level 1: just a formula.  Scorpion can only run NAIVE against it."""

    name = "sum_sq_blackbox"

    def compute(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        return float(np.sum(values * values))


class SumOfSquares(LinearStateAggregate):
    """Levels 2+3: state [Σv², count] is additive, tuples contribute
    independently, and Δ is anti-monotone (squares are non-negative)."""

    name = "sum_sq"
    is_independent = True
    state_size = 2
    empty_value = 0.0

    def tuple_states(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return np.column_stack([values * values, np.ones_like(values)])

    def recover(self, state: np.ndarray) -> float:
        return float(state[0])

    def recover_batch(self, states: np.ndarray) -> np.ndarray:
        return np.asarray(states, dtype=np.float64)[:, 0].copy()

    def check(self, values: np.ndarray) -> bool:
        return True  # v² ≥ 0 always


def build_problem(aggregate) -> ScorpionQuery:
    """Vibration energy per machine; machines m0/m1 have a resonance when
    rpm ∈ [4000, 5000] on the 'worn' bearing batch."""
    rng = np.random.default_rng(2)
    n_machines, per_machine = 6, 250
    n = n_machines * per_machine
    machine = np.repeat([f"m{i}" for i in range(n_machines)], per_machine)
    rpm = rng.uniform(1000, 8000, n)
    batch = rng.choice(["fresh", "worn"], n)
    amplitude = rng.normal(1.0, 0.1, n)
    resonant = (np.isin(machine, ["m0", "m1"]) & (rpm >= 4000)
                & (rpm <= 5000) & (batch == "worn"))
    amplitude[resonant] = rng.uniform(6.0, 9.0, int(resonant.sum()))
    table = Table.from_columns(
        Schema([ColumnSpec("machine", ColumnKind.DISCRETE),
                ColumnSpec("rpm", ColumnKind.CONTINUOUS),
                ColumnSpec("batch", ColumnKind.DISCRETE),
                ColumnSpec("amplitude", ColumnKind.CONTINUOUS)]),
        {"machine": machine, "rpm": rpm, "batch": batch, "amplitude": amplitude})
    return ScorpionQuery(
        table=table,
        query=GroupByQuery("machine", aggregate, "amplitude"),
        outliers=["m0", "m1"],
        holdouts=["m2", "m3", "m4", "m5"],
        error_vectors=+1.0,
        c=0.3,
    )


def main() -> None:
    # Black box: a NAIVE search under a small budget still works.
    from repro.core.naive import NaivePartitioner
    problem = build_problem(SumOfSquaresBlackBox())
    result = Scorpion(partitioner=NaivePartitioner(time_budget=8.0,
                                                   n_bins=8)).explain(problem)
    print(f"black box via {result.algorithm}: {result.best.predicate}")

    # Full properties: auto-selection goes straight to MC.
    problem = build_problem(SumOfSquares())
    result = Scorpion().explain(problem)
    print(f"with properties via {result.algorithm}: {result.best.predicate}")
    print(f"  influence {result.best.influence:.1f}, "
          f"scorer stats {result.scorer_stats}")

    # The protocol contract, verified on the spot:
    agg = SumOfSquares()
    data = np.asarray([1.0, 2.0, 3.0])
    removed = agg.remove(agg.state(data), agg.state(data[:1]))
    assert agg.recover(removed) == agg.compute(data[1:])
    try:
        agg.remove(agg.state(data[:1]), agg.state(data))
    except AggregateError as exc:
        print(f"over-removal rejected as expected: {exc}")


if __name__ == "__main__":
    main()
