"""Quickstart: the paper's running example (Tables 1 and 2).

An analyst runs ``SELECT avg(temp) FROM sensors GROUP BY time`` over nine
sensor readings, sees that the 12PM and 1PM averages are unexpectedly
high, flags them as too-high outliers with 11AM as the hold-out, and asks
Scorpion why.  The answer the paper motivates: sensor 3, whose voltage
dropped, started reporting bogus temperatures.

Run:  python examples/quickstart.py
"""

from repro import (
    ColumnKind,
    ColumnSpec,
    Schema,
    Scorpion,
    ScorpionQuery,
    Table,
    parse_query,
)

# --- Table 1 of the paper -------------------------------------------------
schema = Schema([
    ColumnSpec("time", ColumnKind.DISCRETE),
    ColumnSpec("sensorid", ColumnKind.DISCRETE),
    ColumnSpec("voltage", ColumnKind.CONTINUOUS),
    ColumnSpec("humidity", ColumnKind.CONTINUOUS),
    ColumnSpec("temp", ColumnKind.CONTINUOUS),
])
sensors = Table.from_rows(schema, [
    ("11AM", 1, 2.64, 0.4, 34.0),
    ("11AM", 2, 2.65, 0.5, 35.0),
    ("11AM", 3, 2.63, 0.4, 35.0),
    ("12PM", 1, 2.70, 0.3, 35.0),
    ("12PM", 2, 2.70, 0.5, 35.0),
    ("12PM", 3, 2.30, 0.4, 100.0),
    ("1PM", 1, 2.70, 0.3, 35.0),
    ("1PM", 2, 2.70, 0.5, 35.0),
    ("1PM", 3, 2.30, 0.5, 80.0),
])


def main() -> None:
    print("Input relation (paper Table 1):")
    print(sensors.to_string())

    # --- The query Q1 -----------------------------------------------------
    query = parse_query("SELECT avg(temp) FROM sensors GROUP BY time").to_query()
    results = query.execute(sensors)
    print("\nQuery results (paper Table 2):")
    print(results.to_string())

    # --- The user's annotations -------------------------------------------
    # 12PM and 1PM look too high (error vector +1); 11AM is normal.
    problem = ScorpionQuery(
        table=sensors,
        query=query,
        outliers=["12PM", "1PM"],
        holdouts=["11AM"],
        error_vectors=+1.0,
        c=0.5,
    )

    # --- Ask Scorpion ------------------------------------------------------
    scorpion = Scorpion(partitioner=None, algorithm="naive", top_k=3)
    result = scorpion.explain(problem)
    print(f"\nScorpion ({result.algorithm}) explanations:")
    for rank, explanation in enumerate(result.explanations, start=1):
        print(f"  {rank}. {explanation.predicate}"
              f"   (influence {explanation.influence:.3f},"
              f" matches {explanation.n_matched} rows)")

    best = result.best
    print("\nAggregates after deleting the top explanation's tuples:")
    for key, value in sorted(best.updated_outliers.items()):
        print(f"  outlier  {key[0]:>5}: {value:.2f}  (was "
              f"{problem.results.by_key(key).value:.2f})")
    for key, value in sorted(best.updated_holdouts.items()):
        print(f"  hold-out {key[0]:>5}: {value:.2f}  (was "
              f"{problem.results.by_key(key).value:.2f})")
    print("\nThe outliers return to ~35°C while the hold-out barely moves —")
    print("the low-voltage sensor-3 readings explain the anomaly.")


if __name__ == "__main__":
    main()
