"""Unit tests for the CLIQUE subspace-clustering substrate."""

import numpy as np
import pytest

from repro.clustering.clique import Clique
from repro.clustering.units import GridUnit, grid_units, unit_predicate
from repro.errors import PartitionerError
from repro.table import ColumnKind, ColumnSpec, Schema, Table


def clustered_table(seed=0, n=400):
    """Points with a dense blob at x ∈ [20, 30], y ∈ [60, 70]."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 100, n)
    y = rng.uniform(0, 100, n)
    x[: n // 3] = rng.uniform(20, 30, n // 3)
    y[: n // 3] = rng.uniform(60, 70, n // 3)
    s = np.where(np.arange(n) < n // 3, "in", "out")
    return Table.from_columns(
        Schema([ColumnSpec("x", ColumnKind.CONTINUOUS),
                ColumnSpec("y", ColumnKind.CONTINUOUS),
                ColumnSpec("s", ColumnKind.DISCRETE)]),
        {"x": x, "y": y, "s": s})


class TestGridUnits:
    def test_units_cover_all_rows(self):
        table = clustered_table(n=100)
        units, _ = grid_units(table, ["x"], n_bins=10)
        covered = sorted(p for unit in units for p in unit.support)
        assert covered == list(range(100))

    def test_discrete_units_by_value(self):
        table = clustered_table(n=90)
        units, _ = grid_units(table, ["s"])
        assert {u.keys[0][1] for u in units} == {"in", "out"}

    def test_join_shares_all_but_one(self):
        a = GridUnit((("x", 1),), frozenset({0, 1, 2}))
        b = GridUnit((("y", 4),), frozenset({1, 2, 3}))
        joined = a.join(b)
        assert joined.keys == (("x", 1), ("y", 4))
        assert joined.support == frozenset({1, 2})

    def test_join_conflicting_keys_is_none(self):
        a = GridUnit((("x", 1),), frozenset({0}))
        b = GridUnit((("x", 2),), frozenset({0}))
        assert a.join(b) is None

    def test_join_empty_support_is_none(self):
        a = GridUnit((("x", 1),), frozenset({0}))
        b = GridUnit((("y", 2),), frozenset({1}))
        assert a.join(b) is None

    def test_adjacency_one_step(self):
        a = GridUnit((("x", 1), ("y", 5)), frozenset({0}))
        b = GridUnit((("x", 2), ("y", 5)), frozenset({1}))
        c = GridUnit((("x", 2), ("y", 6)), frozenset({2}))
        assert a.is_adjacent_to(b)
        assert not a.is_adjacent_to(c)  # two steps away

    def test_discrete_keys_not_adjacent(self):
        a = GridUnit((("s", "in"),), frozenset({0}))
        b = GridUnit((("s", "out"),), frozenset({1}))
        assert not a.is_adjacent_to(b)

    def test_unit_predicate_materialization(self):
        table = clustered_table(n=60)
        units, grids = grid_units(table, ["x", "s"], n_bins=4)
        for unit in units:
            predicate = unit_predicate(unit, table, grids)
            mask = predicate.mask(table)
            assert set(np.flatnonzero(mask)) == set(unit.support)

    def test_empty_attributes_rejected(self):
        with pytest.raises(PartitionerError):
            grid_units(clustered_table(n=10), [])


class TestClique:
    def test_finds_dense_blob(self):
        table = clustered_table()
        clusters = Clique(density_threshold=0.08, n_bins=10).fit(table, ["x", "y"])
        two_d = [c for c in clusters if len(c.attributes) == 2]
        assert two_d, "expected a dense 2-d subspace"
        best = max(two_d, key=lambda c: len(c.support))
        x_clause = best.predicate.clause_for("x")
        y_clause = best.predicate.clause_for("y")
        assert x_clause.lo <= 25 <= x_clause.hi
        assert y_clause.lo <= 65 <= y_clause.hi

    def test_density_anti_monotone(self):
        table = clustered_table()
        clique = Clique(density_threshold=0.08, n_bins=10)
        clusters = clique.fit(table, ["x", "y"])
        total = len(table)
        for cluster in clusters:
            for unit in cluster.units:
                assert unit.density(total) >= clique.density_threshold

    def test_high_threshold_prunes_everything_above_1d(self):
        table = clustered_table()
        clusters = Clique(density_threshold=0.5, n_bins=10).fit(table, ["x", "y"])
        assert all(len(c.attributes) == 1 for c in clusters)

    def test_max_dimensionality(self):
        table = clustered_table()
        clusters = Clique(density_threshold=0.02, n_bins=5,
                          max_dimensionality=1).fit(table, ["x", "y", "s"])
        assert all(len(c.attributes) == 1 for c in clusters)

    def test_clusters_are_connected_components(self):
        table = clustered_table()
        clusters = Clique(density_threshold=0.05, n_bins=10).fit(table, ["x"])
        # Units inside one cluster must form a connected chain.
        for cluster in clusters:
            if len(cluster.units) < 2:
                continue
            for unit in cluster.units:
                assert any(unit.is_adjacent_to(other)
                           for other in cluster.units if other is not unit)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(PartitionerError):
            Clique(density_threshold=0.0)
