"""Run the doctests embedded in public docstrings so the examples shown
to users stay correct."""

import doctest

import pytest

import repro.predicates.clause
import repro.predicates.discretizer
import repro.predicates.predicate
import repro.query.sql
import repro.table.column
import repro.table.schema
import repro.table.table

MODULES = [
    repro.table.schema,
    repro.table.column,
    repro.table.table,
    repro.predicates.clause,
    repro.predicates.predicate,
    repro.predicates.discretizer,
    repro.query.sql,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
