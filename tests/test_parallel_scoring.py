"""Parallel-vs-serial equivalence for the sharded scoring executor.

The contract (see :mod:`repro.parallel`): ``score_batch`` with
``workers=N`` returns bit-for-bit the influences of ``workers=1`` on
every aggregate/predicate shape, merged stats counters match a serial
run's, pool failures (crash or timeout) fall back to serial scoring
with a warning instead of hanging, and the pool's shared-memory
segments are unlinked on close.
"""

import os
import signal
import warnings

import numpy as np
import pytest

from repro.aggregates import Avg, Median, StdDev, Sum, Variance
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.errors import ParallelError
from repro.obs.metrics import REGISTRY
from repro.parallel import (
    ParallelRecovery,
    ShardedScoringExecutor,
    assert_no_segment_leaks,
    live_segments,
    resolve_workers,
)
from repro.parallel.executor import _resolve_timeout
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery

from tests.conftest import assert_scoring_paths_agree, planted_sum_table

#: Integer counters that must be identical between a serial and a
#: parallel run of the same batches (timing counters and the
#: parallel-only shard counters are excluded by design).
COMPARED_COUNTERS = (
    "predicate_scores", "mask_scores", "incremental_deltas",
    "full_recomputes", "cache_hits", "batch_calls", "batch_predicates",
    "largest_batch", "indexed_predicates", "indexed_ranges",
    "indexed_sets", "indexed_conjunctions", "conjunction_fallbacks",
    "masked_predicates", "index_builds",
)


def make_problem(aggregate, c: float = 0.5, **kwargs) -> ScorpionQuery:
    table, outliers, holdouts = planted_sum_table()
    return ScorpionQuery(table, GroupByQuery("g", aggregate, "value"),
                         outliers=outliers, holdouts=holdouts,
                         error_vectors=+1.0, c=c, **kwargs)


def routed_batch(n: int = 24) -> list[Predicate]:
    """Single continuous ranges — the range-tier shape."""
    return [Predicate([RangeClause("a1", 4.0 * i, 4.0 * i + 22.0,
                                   include_hi=bool(i % 2))])
            for i in range(n)]


def set_batch() -> list[Predicate]:
    """Single set clauses — the discrete-bucket-tier shape, including a
    value the table never takes (empty buckets everywhere)."""
    return [
        Predicate([SetClause("state", ["TX"])]),
        Predicate([SetClause("state", ["CA", "NY"])]),
        Predicate([SetClause("state", ["CA", "TX", "WA"])]),
        Predicate([SetClause("state", ["ZZ"])]),  # matches nothing
    ]


def conj_batch(n: int = 12) -> list[Predicate]:
    """2-clause conjunctions — the probe tier shape, with widths swept
    so either side can be the rarer one."""
    batch = [Predicate([RangeClause("a1", 8.0 * i, 8.0 * i + 30.0),
                        SetClause("state", ["TX", "CA"])])
             for i in range(n)]
    batch.append(Predicate([RangeClause("a1", 49.0, 51.0),
                            SetClause("state", ["TX"])]))
    batch.append(Predicate([RangeClause("a1", 0.0, 100.0),
                            SetClause("state", ["ZZ"])]))  # empty probe
    return batch


def masked_batch() -> list[Predicate]:
    """Mask-kernel shapes: TRUE deletes whole groups and has no clause
    for any tier to route."""
    return [Predicate.true()]


def mixed_batch() -> list[Predicate]:
    batch = routed_batch() + set_batch() + conj_batch() + masked_batch()
    batch.append(batch[0])  # duplicate submission
    return batch


def assert_parallel_equals_serial(problem, batch, workers: int,
                                  batch_chunk: int = 8,
                                  ignore_holdouts: bool = False,
                                  **scorer_kwargs) -> None:
    """All four oracle legs, with the parallel leg required to actually
    use the worker pool."""
    assert_scoring_paths_agree(problem, batch, workers=workers,
                               batch_chunk=batch_chunk,
                               ignore_holdouts=ignore_holdouts,
                               expect_pool=True, **scorer_kwargs)


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("aggregate", [Sum, Avg, StdDev, Variance])
    def test_aggregates_mixed_shapes(self, aggregate, workers):
        assert_parallel_equals_serial(make_problem(aggregate()),
                                      mixed_batch(), workers)

    @pytest.mark.parametrize("aggregate", [Sum, StdDev])
    def test_mask_kernel_only(self, aggregate):
        # use_index=False forces every shard through the mask kernel.
        assert_parallel_equals_serial(make_problem(aggregate()),
                                      mixed_batch(), workers=2,
                                      use_index=False)

    def test_ignore_holdouts(self):
        assert_parallel_equals_serial(make_problem(Sum()), mixed_batch(),
                                      workers=2, ignore_holdouts=True)

    def test_mean_perturbation(self):
        assert_parallel_equals_serial(make_problem(Avg(), perturbation="mean"),
                                      mixed_batch(), workers=2)

    def test_black_box_aggregate(self):
        # Median has no incremental removal: no index exists, every
        # shape takes mask shards that recompute per predicate from the
        # shared agg-value views.
        assert_parallel_equals_serial(make_problem(Median()),
                                      masked_batch() + set_batch()
                                      + conj_batch(6) + routed_batch(8),
                                      workers=2)

    def test_fractional_c(self):
        assert_parallel_equals_serial(make_problem(Sum(), c=0.3),
                                      mixed_batch(), workers=2)

    def test_counters_match_serial_exactly(self):
        problem = make_problem(Sum())
        batch = mixed_batch()
        serial = InfluenceScorer(problem, cache_scores=False, workers=1)
        parallel = InfluenceScorer(problem, cache_scores=False, workers=2,
                                   batch_chunk=8)
        try:
            serial.score_batch(batch)
            serial.score_batch(batch[:10])
            parallel.score_batch(batch)
            parallel.score_batch(batch[:10])
            for name in COMPARED_COUNTERS:
                assert getattr(parallel.stats, name) == \
                    getattr(serial.stats, name), name
            assert parallel.stats.parallel_batches >= 1
            assert serial.stats.parallel_batches == 0
        finally:
            parallel.close()

    def test_rebind_reaches_warm_pool_workers(self):
        # The pool initializer bakes (c, c_holdout, lam) into worker
        # scorers; a resident scorer rebound between batches must ship
        # the live scalars with each shard or warm workers keep scoring
        # at the stale values.
        problem = make_problem(Sum(), c=0.5)
        batch = mixed_batch()
        scorer = InfluenceScorer(problem, cache_scores=False, workers=2,
                                 batch_chunk=8)
        try:
            scorer.score_batch(batch)  # pool is warm at c=0.5
            for c, lam in ((0.1, 0.5), (0.1, 0.9), (0.8, 0.2)):
                rebound = problem.with_params(c=c, lam=lam)
                scorer.rebind(rebound)
                warm = scorer.score_batch(batch)
                cold = InfluenceScorer(rebound, cache_scores=False,
                                       workers=1).score_batch(batch)
                assert np.array_equal(np.asarray(warm), np.asarray(cold)), \
                    (c, lam)
            assert scorer.stats.parallel_batches >= 1
        finally:
            scorer.close()

    def test_shared_cache_coherence(self):
        # Batch results must populate the same memo cache score() reads.
        problem = make_problem(Sum())
        scorer = InfluenceScorer(problem, workers=2, batch_chunk=8)
        try:
            batch = mixed_batch()
            values = scorer.score_batch(batch)
            before = scorer.stats.cache_hits
            assert scorer.score(batch[0]) == values[0]
            assert scorer.stats.cache_hits == before + 1
        finally:
            scorer.close()


class TestEndToEnd:
    @pytest.mark.parametrize("algorithm", ["dt", "mc"])
    def test_scorpion_explanations_identical(self, algorithm):
        problem = make_problem(Sum())
        serial = Scorpion(algorithm=algorithm, batch_chunk=16,
                          workers=1).explain(problem)
        parallel = Scorpion(algorithm=algorithm, batch_chunk=16,
                            workers=2).explain(problem)
        assert [e.predicate for e in parallel.explanations] == \
            [e.predicate for e in serial.explanations]
        assert [e.influence for e in parallel.explanations] == \
            [e.influence for e in serial.explanations]
        for name in COMPARED_COUNTERS:
            assert parallel.scorer_stats[name] == serial.scorer_stats[name], name


def _counter(name: str) -> float:
    metric = REGISTRY.get(name)
    return metric.value if metric is not None else 0.0


class TestSelfHealing:
    """Pool failures retry, restart, and degrade per batch — never
    permanently (the pre-ISSUE-9 `_disable_parallel` is gone)."""

    def test_worker_crash_retries_and_recovers(self):
        problem = make_problem(Sum())
        batch = mixed_batch()
        expected = InfluenceScorer(problem, cache_scores=False,
                                   workers=1).score_batch(batch)
        scorer = InfluenceScorer(problem, cache_scores=False, workers=2,
                                 batch_chunk=8)
        scorer._recovery = ParallelRecovery(retries=2, restarts=10,
                                            backoff_base=0.0)
        np.testing.assert_array_equal(scorer.score_batch(batch), expected)
        retries0 = _counter("scorpion_pool_retries_total")
        restarts0 = _counter("scorpion_pool_restarts_total")
        pool = scorer._executor._pool
        for process in list(pool._processes.values()):
            os.kill(process.pid, signal.SIGKILL)
        # The crash is absorbed by a transparent pool restart: no
        # warning, bit-for-bit results, and the batch still ran parallel.
        shards_before = scorer.stats.parallel_shards
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            got = scorer.score_batch(batch)
        np.testing.assert_array_equal(got, expected)
        assert scorer.uses_parallel
        assert scorer.stats.parallel_shards > shards_before
        assert _counter("scorpion_pool_retries_total") >= retries0 + 1
        assert _counter("scorpion_pool_restarts_total") >= restarts0 + 1
        scorer.close()

    def test_persistent_failure_opens_circuit_then_reprobes(
            self, monkeypatch):
        problem = make_problem(Sum())
        batch = mixed_batch()
        expected = InfluenceScorer(problem, cache_scores=False,
                                   workers=1).score_batch(batch)
        scorer = InfluenceScorer(problem, cache_scores=False, workers=2,
                                 batch_chunk=8)
        clock = [0.0]
        scorer._recovery = ParallelRecovery(
            retries=1, restarts=2, window=1000.0, cooldown=5.0,
            backoff_base=0.0, clock=lambda: clock[0],
            sleep=lambda s: None)
        real_run = ShardedScoringExecutor.run
        monkeypatch.setattr(
            ShardedScoringExecutor, "run",
            lambda self, tasks: (_ for _ in ()).throw(
                ParallelError("injected shard failure")))
        # Batch 1: retry budget (2 attempts) exhausted → serial result.
        degraded0 = _counter("scorpion_degraded_batches_total")
        with pytest.warns(RuntimeWarning, match="scoring serial"):
            np.testing.assert_array_equal(scorer.score_batch(batch),
                                          expected)
        assert scorer.stats.parallel_shards == 0
        assert _counter("scorpion_degraded_batches_total") == degraded0 + 1
        # Batch 2: first failure blows the restart budget → circuit opens.
        with pytest.warns(RuntimeWarning, match="circuit open"):
            np.testing.assert_array_equal(scorer.score_batch(batch),
                                          expected)
        assert scorer._recovery.degraded
        assert not scorer.uses_parallel
        # Batch 3 (inside cooldown): serial, silently, pool untouched.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            np.testing.assert_array_equal(scorer.score_batch(batch),
                                          expected)
        assert scorer._executor is None
        # Cooldown elapses and the executor heals: the half-open probe
        # succeeds, the circuit closes, and scoring is parallel again.
        monkeypatch.setattr(ShardedScoringExecutor, "run", real_run)
        clock[0] += 6.0
        assert scorer.uses_parallel  # half-open: willing to probe
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            np.testing.assert_array_equal(scorer.score_batch(batch),
                                          expected)
        assert not scorer._recovery.degraded
        assert scorer.stats.parallel_shards > 0
        assert scorer.parallel_health()["state"] == "parallel"
        scorer.close()

    def test_keyboard_interrupt_propagates_with_clean_teardown(
            self, monkeypatch):
        problem = make_problem(Sum())
        batch = mixed_batch()
        baseline = live_segments()
        scorer = InfluenceScorer(problem, cache_scores=False, workers=2,
                                 batch_chunk=8)
        monkeypatch.setattr(
            ShardedScoringExecutor, "run",
            lambda self, tasks: (_ for _ in ()).throw(KeyboardInterrupt()))
        with pytest.raises(KeyboardInterrupt):
            scorer.score_batch(batch)
        # The interrupt was not swallowed into a serial fallback, and
        # the pool + segments were torn down on the way out.
        assert scorer._executor is None
        assert_no_segment_leaks("KeyboardInterrupt during score_batch",
                                baseline=baseline)
        scorer.close()


class TestLifecycle:
    def test_serial_scorer_never_starts_a_pool(self):
        scorer = InfluenceScorer(make_problem(Sum()), cache_scores=False,
                                 workers=1)
        scorer.score_batch(mixed_batch())
        assert scorer.workers == 1
        assert scorer._executor is None
        assert scorer.stats.parallel_shards == 0

    def test_single_shard_batches_skip_the_pool(self):
        scorer = InfluenceScorer(make_problem(Sum()), cache_scores=False,
                                 workers=2, batch_chunk=4096)
        try:
            scorer.score_batch(routed_batch(6))
            assert scorer._executor is None
            assert scorer.stats.parallel_shards == 0
        finally:
            scorer.close()

    def test_close_unlinks_shared_memory(self):
        from multiprocessing import shared_memory

        scorer = InfluenceScorer(make_problem(Sum()), cache_scores=False,
                                 workers=2, batch_chunk=8)
        scorer.score_batch(mixed_batch())
        name = scorer._executor._segments[0].name
        scorer.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        # close() is idempotent and the scorer still scores (serially or
        # by restarting the pool).
        scorer.close()
        assert len(scorer.score_batch(routed_batch(4))) == 4
        scorer.close()


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("SCORPION_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("SCORPION_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("SCORPION_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ParallelError):
            resolve_workers(-1)

    def test_scorer_reads_env(self, monkeypatch):
        monkeypatch.setenv("SCORPION_WORKERS", "2")
        scorer = InfluenceScorer(make_problem(Sum()))
        assert scorer.workers == 2
        assert scorer.uses_parallel
        scorer.close()


class TestResolveTimeout:
    def test_legacy_env_alias_warns(self, monkeypatch):
        monkeypatch.delenv("SCORPION_TASK_TIMEOUT", raising=False)
        monkeypatch.setenv("SCORPION_WORKER_TIMEOUT", "12")
        with pytest.warns(DeprecationWarning,
                          match="SCORPION_WORKER_TIMEOUT is deprecated"):
            assert _resolve_timeout(None) == 12.0

    def test_current_env_does_not_warn(self, monkeypatch):
        monkeypatch.setenv("SCORPION_TASK_TIMEOUT", "34")
        monkeypatch.setenv("SCORPION_WORKER_TIMEOUT", "12")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _resolve_timeout(None) == 34.0

    def test_explicit_timeout_does_not_warn(self, monkeypatch):
        monkeypatch.setenv("SCORPION_WORKER_TIMEOUT", "12")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _resolve_timeout(7.5) == 7.5


class TestStatsConsistency:
    """The scorer_stats double-reset hazard (monotonic index-build
    accounting): resets start a fresh window and can never resurrect or
    clobber already-counted work."""

    def test_reset_does_not_resurrect_index_builds(self):
        scorer = InfluenceScorer(make_problem(Sum()), cache_scores=False)
        scorer.score_batch(routed_batch(4))
        assert scorer.stats.index_builds == 1
        scorer.reset_stats()
        # Same attribute again: already built, nothing new to count.
        scorer.score_batch(routed_batch(4))
        assert scorer.stats.index_builds == 0
        assert scorer.stats.index_build_seconds == 0.0
        # Re-declaring the built attribute must not re-count it either.
        scorer.prepare_index(["a1"])
        assert scorer.stats.index_builds == 0

    def test_new_builds_count_after_reset(self):
        scorer = InfluenceScorer(make_problem(Sum()), cache_scores=False)
        scorer.prepare_index(["a1"])
        assert scorer.stats.index_builds == 1
        scorer.reset_stats()
        scorer.prepare_index()  # builds the remaining attributes
        assert scorer.stats.index_builds == len(
            scorer._index.attributes_built) - 1

    def test_reset_clears_parallel_counters(self):
        scorer = InfluenceScorer(make_problem(Sum()), cache_scores=False,
                                 workers=2, batch_chunk=8)
        try:
            scorer.score_batch(mixed_batch())
            assert scorer.stats.parallel_shards > 0
            scorer.reset_stats()
            assert scorer.stats.parallel_batches == 0
            assert scorer.stats.parallel_shards == 0
        finally:
            scorer.close()

    def test_worker_counter_merge_arithmetic(self):
        from repro.core.influence import ScorerStats

        stats = ScorerStats()
        stats.incremental_deltas = 5
        window = ScorerStats()
        window.incremental_deltas = 3
        window.full_recomputes = 2
        stats.merge_worker_counters(window.worker_counters())
        assert stats.incremental_deltas == 8
        assert stats.full_recomputes == 2
        assert set(window.worker_counters()) == set(ScorerStats.WORKER_MERGED)
