"""Tests for the observability layer: span tracer, metrics registry,
structured logs — and the load-bearing contract that tracing is
bit-for-bit invisible to explain results.

The invisibility oracle mirrors ``tests/test_service.py``'s
warm-equals-cold check: a traced run must match an untraced run on
explanations AND every scorer counter (timing keys exempt).  Span-tree
shape must also be execution-mode independent — a serial run and a
``workers=2`` run record the same non-shard span-name sequence.
"""

import io
import json

import pytest

from repro.core.scorpion import Scorpion
from repro.obs import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    JsonLogger,
    MetricsRegistry,
    Tracer,
    current_tracer,
    new_trace_id,
    phase_totals,
    render_profile,
    span,
    tracing_enabled,
)
from repro.service import ExplainService

from tests.test_service import (
    assert_warm_equals_cold,
    explanation_image,
    make_sum_problem,
)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_without_tracer_is_falsy_noop(self):
        assert current_tracer() is None
        with span("anything") as sp:
            assert not sp
            sp.annotate(ignored=1)  # must not raise

    def test_nesting_and_export(self):
        tracer = Tracer().activate()
        try:
            with span("outer") as outer:
                outer.annotate(kind="test")
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        finally:
            tracer.deactivate()
        spans = tracer.export()
        assert [sp["name"] for sp in spans] == ["outer", "inner", "inner"]
        root = spans[0]
        assert root["parent"] is None
        assert root["attrs"] == {"kind": "test"}
        for child in spans[1:]:
            assert child["parent"] == root["id"]
            assert child["start_ns"] >= root["start_ns"]
            assert child["dur_ns"] >= 0
        # The root wraps its children.
        assert root["dur_ns"] >= max(
            c["start_ns"] + c["dur_ns"] for c in spans[1:]) - root["start_ns"]

    def test_deactivate_restores_previous(self):
        outer = Tracer().activate()
        inner = Tracer().activate()
        assert current_tracer() is inner
        inner.deactivate()
        assert current_tracer() is outer
        outer.deactivate()
        assert current_tracer() is None

    def test_add_span_attaches_external_stamps(self):
        import time

        tracer = Tracer()
        t0 = time.perf_counter()
        t1 = t0 + 0.25
        with tracer.begin("parent"):
            tracer.add_span("shard", t0, t1, {"items": 3})
        spans = tracer.export()
        shard = spans[1]
        assert shard["name"] == "shard"
        assert shard["parent"] == spans[0]["id"]
        assert shard["attrs"] == {"items": 3}
        assert shard["dur_ns"] == pytest.approx(0.25e9, rel=1e-3)
        # Stamps earlier than the trace origin clamp to zero rather
        # than exporting negative offsets.
        early = tracer.add_span("early", t0 - 1e6, t0 - 1e6 + 0.1)
        assert early.start_ns == 0

    def test_render_profile_and_phase_totals(self):
        spans = [
            {"id": 0, "parent": None, "name": "explain", "start_ns": 0,
             "dur_ns": 3_000_000},
            {"id": 1, "parent": 0, "name": "score_batch", "start_ns": 100,
             "dur_ns": 1_000_000, "attrs": {"predicates": 4}},
            {"id": 2, "parent": 0, "name": "score_batch", "start_ns": 2000,
             "dur_ns": 500_000},
        ]
        text = render_profile(spans)
        lines = text.splitlines()
        assert lines[0].startswith("explain")
        assert lines[1].startswith("  score_batch")
        assert "predicates=4" in lines[1]
        totals = phase_totals(spans)
        assert totals["explain"] == pytest.approx(3e-3)
        assert totals["score_batch"] == pytest.approx(1.5e-3)

    def test_tracing_enabled_env(self, monkeypatch):
        monkeypatch.delenv("SCORPION_TRACE", raising=False)
        assert not tracing_enabled()
        for raw in ("1", "true", "ON", " yes "):
            monkeypatch.setenv("SCORPION_TRACE", raw)
            assert tracing_enabled(), raw
        for raw in ("0", "off", "", "no"):
            monkeypatch.setenv("SCORPION_TRACE", raw)
            assert not tracing_enabled(), raw


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("g")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8.0

    def test_histogram_buckets_cumulative(self):
        h = Histogram("h_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)
        assert snap["buckets"] == {"0.1": 1, "1": 3, "+Inf": 4}
        # JSON-clean: the snapshot must round-trip through json.dumps.
        json.dumps(snap)
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 0.1))

    def test_registry_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "first help")
        b = reg.counter("x_total", "second help")
        assert a is b
        assert a.help == "first help"
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("bad name")
        assert reg.get("x_total") is a
        assert reg.get("missing") is None
        reg.reset()
        assert reg.get("x_total") is None

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests").inc(3)
        reg.gauge("entries").set(2)
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.5, 1.0))
        h.observe(0.25)
        h.observe(2.0)
        text = reg.render_prometheus()
        assert "# HELP req_total Requests" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert "# TYPE entries gauge" in text
        assert "entries 2" in text
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 2.25" in text
        assert "lat_seconds_count 2" in text
        assert text.endswith("\n")


# ----------------------------------------------------------------------
# Structured logs
# ----------------------------------------------------------------------
class TestJsonLogger:
    def test_one_json_object_per_line(self, monkeypatch):
        monkeypatch.delenv("SCORPION_SLOW_MS", raising=False)
        out = io.StringIO()
        logger = JsonLogger(stream=out)
        logger.log("request_start", trace_id="t-1", op="explain")
        logger.log("request_finish", trace_id="t-1", elapsed_ms=12.5)
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        start = json.loads(lines[0])
        assert start["event"] == "request_start"
        assert start["trace_id"] == "t-1"
        assert start["op"] == "explain"
        assert "ts" in start

    def test_slow_flag(self):
        out = io.StringIO()
        logger = JsonLogger(stream=out, slow_ms=100.0)
        logger.log("request_finish", elapsed_ms=250.0)
        logger.log("request_finish", elapsed_ms=50.0)
        logger.log("request_start", elapsed_ms=250.0)  # wrong event: no flag
        slow, fast, start = map(json.loads, out.getvalue().splitlines())
        assert slow.get("slow") is True
        assert "slow" not in fast
        assert "slow" not in start

    def test_slow_threshold_from_env(self, monkeypatch):
        monkeypatch.setenv("SCORPION_SLOW_MS", "20")
        out = io.StringIO()
        JsonLogger(stream=out).log("request_finish", elapsed_ms=25.0)
        assert json.loads(out.getvalue())["slow"] is True
        monkeypatch.setenv("SCORPION_SLOW_MS", "not-a-number")
        assert JsonLogger(stream=out).slow_ms is None

    def test_trace_ids_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100


# ----------------------------------------------------------------------
# Tracing invisibility + span-tree shape
# ----------------------------------------------------------------------
class TestTracedExplain:
    @pytest.mark.parametrize("kwargs", [
        {"algorithm": "mc"},
        {"algorithm": "dt", "use_cache": False},
        {"algorithm": "naive"},
    ], ids=["mc", "dt-nocache", "naive"])
    def test_traced_run_is_bit_for_bit_untraced(self, kwargs):
        problem = make_sum_problem()
        plain = Scorpion(trace=False, **kwargs).explain(problem)
        traced = Scorpion(trace=True, **kwargs).explain(problem)
        assert plain.trace is None
        assert traced.trace
        assert_warm_equals_cold(traced, plain)

    def test_trace_spans_cover_the_pipeline(self):
        result = Scorpion(algorithm="dt", use_cache=False,
                          trace=True).explain(make_sum_problem())
        names = {sp["name"] for sp in result.trace}
        assert {"explain", "build", "partition", "merge",
                "score_batch"} <= names
        root = result.trace[0]
        assert root["name"] == "explain"
        assert root["parent"] is None
        # Every other span descends from the explain root.
        ids = {sp["id"] for sp in result.trace}
        for sp in result.trace[1:]:
            assert sp["parent"] in ids
        batches = [sp for sp in result.trace if sp["name"] == "score_batch"]
        assert all("predicates" in sp["attrs"] for sp in batches)
        assert all("groups" in sp["attrs"] for sp in batches)

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv("SCORPION_TRACE", "1")
        result = Scorpion(algorithm="mc").explain(make_sum_problem())
        assert result.trace
        monkeypatch.delenv("SCORPION_TRACE")
        assert Scorpion(algorithm="mc").explain(make_sum_problem()).trace \
            is None

    def test_serial_and_parallel_trace_same_phases(self):
        problem = make_sum_problem()
        # Pre-warm the process-wide cost model so neither run records a
        # first-call ``cost_calibration`` span the other lacks.
        from repro.index.cost import CostModel
        CostModel.shared()
        serial = Scorpion(algorithm="mc", trace=True).explain(problem)
        # One-shot explain builds and closes its own scorer (and pool).
        parallel = Scorpion(algorithm="mc", trace=True,
                            workers=2).explain(problem)
        assert explanation_image(parallel) == explanation_image(serial)
        # Shard spans exist only on the parallel side; every other
        # span-name sequence is execution-mode independent.
        def phases(result):
            return [sp["name"] for sp in result.trace
                    if sp["name"] != "shard"]
        assert phases(parallel) == phases(serial)
        shards = [sp for sp in parallel.trace if sp["name"] == "shard"]
        if parallel.scorer_stats.get("parallel_shards", 0) > 0:
            assert shards
            for sp in shards:
                assert sp["attrs"]["kind"] in (
                    "masked", "indexed", "indexed_set", "indexed_conj")
                assert sp["attrs"]["items"] > 0
                assert sp["attrs"]["queue_wait_ms"] >= 0
                assert sp["dur_ns"] > 0


# ----------------------------------------------------------------------
# Service metrics + stats snapshots
# ----------------------------------------------------------------------
class TestServiceMetrics:
    def test_stats_counters_monotonic_and_reconciled(self):
        problem = make_sum_problem()
        registry = MetricsRegistry()
        with ExplainService(algorithm="mc", registry=registry) as service:
            service.explain(problem)
            first = service.stats()
            service.explain(problem)
            second = service.stats()
        assert first["service_requests"] == 1
        assert second["service_requests"] == 2
        assert second["service_hits"] == 1
        assert second["service_misses"] == 1
        # Latency histogram count reconciles with started requests.
        hist = second["service_request_seconds"]
        assert hist["count"] == second["service_hits"] + \
            second["service_misses"]
        assert hist["sum"] > 0
        assert second["service_request_errors"] == 0
        # Registry totals mirror the service's own counters.
        snap = registry.snapshot()
        assert snap["scorpion_cache_hits_total"] == 1
        assert snap["scorpion_cache_misses_total"] == 1
        assert snap["scorpion_requests_total"] == 2
        assert snap["scorpion_cache_entries"] == 1
        assert snap["scorpion_cache_resident_bytes"] > 0

    def test_gauges_track_eviction(self):
        problem = make_sum_problem()
        registry = MetricsRegistry()
        with ExplainService(cache_bytes=0, algorithm="mc",
                            registry=registry) as service:
            service.explain(problem)
        snap = registry.snapshot()
        assert snap["scorpion_cache_evictions_total"] == 1
        assert snap["scorpion_cache_entries"] == 0
        assert snap["scorpion_cache_resident_bytes"] == 0

    def test_scorer_counters_publish_as_deltas(self):
        problem = make_sum_problem()
        registry = MetricsRegistry()
        with ExplainService(algorithm="mc", registry=registry) as service:
            first = service.explain(problem)
            service.explain(problem)
        snap = registry.snapshot()
        # Two requests with identical per-request counters: the
        # published total must be the sum of per-request deltas, not
        # the last request's cumulative value.
        per_request = first.scorer_stats.get("masked_predicates", 0) \
            + first.scorer_stats.get("indexed_predicates", 0)
        assert per_request > 0
        published = snap.get("scorpion_masked_predicates_total", 0) \
            + snap.get("scorpion_indexed_predicates_total", 0)
        assert published == 2 * per_request

    def test_traced_service_attaches_trace_and_stays_bit_for_bit(self):
        problem = make_sum_problem()
        cold = Scorpion(algorithm="mc").explain(problem)
        with ExplainService(algorithm="mc", trace=True) as service:
            miss = service.explain(problem)
            hit = service.explain(problem)
        for result in (miss, hit):
            assert result.trace
            assert_warm_equals_cold(result, cold)
        names_miss = {sp["name"] for sp in miss.trace}
        assert "checkout" in names_miss
        assert "explain" in names_miss
        # The warm path skips the build but still records the checkout.
        checkout = next(sp for sp in hit.trace if sp["name"] == "checkout")
        assert checkout["attrs"]["hit"] is True

    def test_failed_request_counts_as_error(self, monkeypatch):
        registry = MetricsRegistry()
        with ExplainService(algorithm="mc", registry=registry) as service:
            def boom(*args, **kwargs):
                raise RuntimeError("scoring failed")
            monkeypatch.setattr(service, "_run", boom)
            with pytest.raises(RuntimeError):
                service.explain(make_sum_problem())
            stats = service.stats()
        assert stats["service_request_errors"] == 1
        # The request started (a miss) but never completed.
        assert stats["service_requests"] == 0
        assert stats["service_misses"] == 1
        assert registry.snapshot()["scorpion_request_errors_total"] == 1

    def test_pool_metrics_reach_global_registry(self):
        before = REGISTRY.get("scorpion_pool_starts_total")
        before_value = before.value if before is not None else 0
        result = Scorpion(algorithm="mc",
                          workers=2).explain(make_sum_problem())
        after = REGISTRY.get("scorpion_pool_starts_total")
        if result.scorer_stats.get("parallel_shards", 0) > 0:
            assert after is not None
            assert after.value >= before_value + 1
