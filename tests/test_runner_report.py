"""Unit tests for the experiment runner and report formatting."""

import numpy as np
import pytest

from repro.errors import PartitionerError
from repro.eval.report import format_series, format_table
from repro.eval.runner import best_f_by_c, make_partitioner, run_algorithm, sweep_c

from tests.conftest import planted_sum_table


class TestMakePartitioner:
    def test_known_names(self):
        from repro.core.dt import DTPartitioner
        from repro.core.mc import MCPartitioner
        from repro.core.naive import NaivePartitioner
        assert isinstance(make_partitioner("dt"), DTPartitioner)
        assert isinstance(make_partitioner("MC"), MCPartitioner)
        assert isinstance(make_partitioner("naive", time_budget=1.0),
                          NaivePartitioner)

    def test_unknown_rejected(self):
        with pytest.raises(PartitionerError):
            make_partitioner("zz")

    def test_kwargs_forwarded(self):
        partitioner = make_partitioner("dt", min_leaf_size=5)
        assert partitioner.params.min_leaf_size == 5


class TestRunAlgorithm:
    def test_records_accuracy(self, sum_problem):
        table = sum_problem.table
        truth = table.values("value") > 10.0
        record = run_algorithm("mc", sum_problem, table=table, truth_mask=truth)
        assert record.algorithm == "mc"
        assert record.predicate is not None
        assert 0.0 <= record.f_score <= 1.0
        assert record.runtime > 0

    def test_without_truth_no_stats(self, sum_problem):
        record = run_algorithm("mc", sum_problem)
        assert record.stats is None
        assert record.f_score == 0.0

    def test_outlier_row_restriction(self, sum_problem):
        table = sum_problem.table
        truth = table.values("value") > 10.0
        outlier_rows = np.flatnonzero(
            table.column("g").membership_mask(["g0", "g1"]))
        restricted = run_algorithm("mc", sum_problem, table=table,
                                   truth_mask=truth, outlier_rows=outlier_rows)
        assert restricted.stats is not None
        # All planted tuples live in outlier groups: recall is unaffected
        # by the restriction, and precision can only improve.
        unrestricted = run_algorithm("mc", sum_problem, table=table,
                                     truth_mask=truth)
        assert restricted.precision >= unrestricted.precision - 1e-9


class TestSweep:
    def test_sweep_c_runs_each_value(self, sum_problem):
        records = sweep_c("mc", sum_problem, [1.0, 0.5])
        assert [r.c for r in records] == [1.0, 0.5]

    def test_best_f_by_c(self, sum_problem):
        table = sum_problem.table
        truth = table.values("value") > 10.0
        records = sweep_c("mc", sum_problem, [1.0, 0.0], table=table,
                          truth_mask=truth)
        mapping = best_f_by_c(records)
        assert set(mapping) == {1.0, 0.0}

    def test_shared_cache_sweep(self):
        table, outliers, holdouts = planted_sum_table(n_per_group=80)
        from repro.aggregates import Avg
        from repro.core.problem import ScorpionQuery
        from repro.query.groupby import GroupByQuery
        problem = ScorpionQuery(table, GroupByQuery("g", Avg(), "value"),
                                outliers=outliers, holdouts=holdouts, c=0.5)
        records = sweep_c("dt", problem, [0.5, 0.1], share_cache=True)
        assert all(r.predicate is not None for r in records)


class TestReport:
    def test_format_table_aligned(self):
        rendered = format_table("Title", ["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = rendered.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len({len(line) for line in lines[2:]}) == 1

    def test_format_table_number_rendering(self):
        rendered = format_table("t", ["v"], [[1234.5678], [0.0001], [float("nan")]])
        assert "1.23e+03" in rendered
        assert "0.0001" in rendered
        assert "nan" in rendered

    def test_format_series(self):
        rendered = format_series("fig", {"dt": {0.1: 0.9}, "mc": {0.1: 0.8, 0.5: 0.7}},
                                 x_label="c")
        assert "c" in rendered.splitlines()[2]
        assert "dt" in rendered and "mc" in rendered
        # dt has no value at c = 0.5 → NaN cell.
        assert "nan" in rendered
