"""Unit tests for attribute domains and the NAIVE enumerator."""

import itertools

import pytest

from repro.errors import PredicateError
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.predicates.space import AttributeDomain, Domain, PredicateEnumerator
from repro.table import ColumnKind, ColumnSpec, Schema, Table

TABLE = Table.from_columns(
    Schema([ColumnSpec("x", ColumnKind.CONTINUOUS),
            ColumnSpec("s", ColumnKind.DISCRETE),
            ColumnSpec("t", ColumnKind.DISCRETE)]),
    {
        "x": [0.0, 25.0, 50.0, 100.0],
        "s": ["a", "b", "c", "a"],
        "t": ["u", "u", "v", "v"],
    },
)


def domain() -> Domain:
    return Domain.from_table(TABLE, ["x", "s", "t"])


class TestDomain:
    def test_from_table_bounds(self):
        d = domain()
        assert d["x"].lo == 0.0 and d["x"].hi == 100.0
        assert set(d["s"].values) == {"a", "b", "c"}

    def test_unknown_attribute_rejected(self):
        with pytest.raises(PredicateError):
            domain()["zz"]

    def test_volume_fraction_range(self):
        p = Predicate([RangeClause("x", 0.0, 50.0)])
        assert domain().volume_fraction(p) == pytest.approx(0.5)

    def test_volume_fraction_set(self):
        p = Predicate([SetClause("s", ["a"])])
        assert domain().volume_fraction(p) == pytest.approx(1 / 3)

    def test_volume_fraction_product(self):
        p = Predicate([RangeClause("x", 0.0, 50.0), SetClause("s", ["a"])])
        assert domain().volume_fraction(p) == pytest.approx(0.5 / 3)

    def test_volume_fraction_true_is_one(self):
        assert domain().volume_fraction(Predicate.true()) == 1.0

    def test_full_predicate_matches_all(self):
        assert domain().full_predicate().mask(TABLE).all()

    def test_simplify_drops_full_span_clauses(self):
        p = Predicate([RangeClause("x", 0.0, 100.0),
                       SetClause("s", ["a"])])
        simplified = domain().simplify(p)
        assert simplified.attributes == ("s",)

    def test_simplify_keeps_partial_clauses(self):
        p = Predicate([RangeClause("x", 0.0, 99.0)])
        assert domain().simplify(p) == p

    def test_simplify_keeps_foreign_attributes(self):
        p = Predicate([RangeClause("other", 0, 1)])
        assert domain().simplify(p) == p

    def test_degenerate_width_fraction(self):
        d = AttributeDomain("w", ColumnKind.CONTINUOUS, lo=5.0, hi=5.0)
        assert d.clause_fraction(RangeClause("w", 5.0, 5.0)) == 1.0


class TestEnumerator:
    def test_single_attribute_counts(self):
        enum = PredicateEnumerator(Domain.from_table(TABLE, ["x"]), n_bins=4)
        predicates = list(enum.enumerate())
        assert len(predicates) == 4 * 5 // 2

    def test_discrete_counts_all_subsets(self):
        enum = PredicateEnumerator(Domain.from_table(TABLE, ["s"]))
        predicates = list(enum.enumerate())
        # Non-empty subsets of a 3-value attribute: 2^3 − 1.
        assert len(predicates) == 7

    def test_no_duplicates(self):
        enum = PredicateEnumerator(domain(), n_bins=3)
        predicates = list(enum.enumerate())
        assert len(predicates) == len(set(predicates))

    def test_complexity_ordering(self):
        enum = PredicateEnumerator(domain(), n_bins=3)
        clause_counts = [p.num_clauses for p in enum.enumerate()]
        assert clause_counts == sorted(clause_counts)

    def test_max_clauses_cap(self):
        enum = PredicateEnumerator(domain(), n_bins=3, max_clauses=1)
        assert all(p.num_clauses == 1 for p in enum.enumerate())

    def test_max_discrete_set_size_cap(self):
        enum = PredicateEnumerator(Domain.from_table(TABLE, ["s"]),
                                   max_discrete_set_size=1)
        predicates = list(enum.enumerate())
        assert len(predicates) == 3

    def test_covers_cartesian_combinations(self):
        enum = PredicateEnumerator(Domain.from_table(TABLE, ["s", "t"]),
                                   max_discrete_set_size=1)
        two_dim = [p for p in enum.enumerate() if p.num_clauses == 2]
        assert len(two_dim) == 3 * 2

    def test_unit_clauses_continuous(self):
        enum = PredicateEnumerator(domain(), n_bins=5)
        units = enum.unit_clauses("x")
        assert len(units) == 5

    def test_unit_clauses_discrete(self):
        enum = PredicateEnumerator(domain())
        units = enum.unit_clauses("s")
        assert {tuple(u.values)[0] for u in units} == {"a", "b", "c"}

    def test_discrete_clauses_exact_size(self):
        enum = PredicateEnumerator(domain())
        pairs = list(enum.discrete_clauses("s", 2))
        assert len(pairs) == 3
        assert all(len(c.values) == 2 for c in pairs)

    def test_discretizer_for_discrete_rejected(self):
        with pytest.raises(PredicateError):
            PredicateEnumerator(domain()).discretizer("s")

    def test_enumeration_is_lazy(self):
        enum = PredicateEnumerator(domain(), n_bins=15)
        first_five = list(itertools.islice(enum.enumerate(), 5))
        assert len(first_five) == 5
