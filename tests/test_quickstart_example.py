"""End-to-end checks of the paper's running example (Tables 1–2) and of
the shipped example scripts' importability."""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro import Scorpion, ScorpionQuery, parse_query
from repro.core.dt import DTPartitioner

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


class TestRunningExample:
    def test_table2_values(self, sensors_table):
        query = parse_query("SELECT avg(temp) FROM sensors GROUP BY time").to_query()
        results = query.execute(sensors_table)
        assert results.by_key("11AM").value == pytest.approx(34.667, abs=1e-3)
        assert results.by_key("12PM").value == pytest.approx(56.667, abs=1e-3)
        assert results.by_key("1PM").value == pytest.approx(50.0)

    def test_explanation_restores_normal_averages(self, paper_problem):
        result = Scorpion(partitioner=DTPartitioner(min_leaf_size=2)).explain(
            paper_problem)
        best = result.best
        assert best.updated_outliers[("12PM",)] == pytest.approx(35.0)
        assert best.updated_outliers[("1PM",)] == pytest.approx(35.0)
        # Hold-out barely moves.
        assert best.updated_holdouts[("11AM",)] == pytest.approx(34.667, abs=0.5)

    def test_naive_and_dt_agree_on_outlier_rows(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM", "1PM"],
                                holdouts=["11AM"], error_vectors=+1.0, c=0.5)
        naive = Scorpion(algorithm="naive").explain(problem)
        dt = Scorpion(partitioner=DTPartitioner(min_leaf_size=2)).explain(problem)
        table = problem.table
        naive_mask = naive.best.predicate.mask(table)
        dt_mask = dt.best.predicate.mask(table)
        # Both must remove the two anomalous sensor-3 readings.
        assert naive_mask[5] and naive_mask[8]
        assert dt_mask[5] and dt_mask[8]
        # Either may also match normal sensor-3 rows in the hold-out group
        # (so does the paper's `sensorid = 15`), but the hold-out's average
        # must stay essentially unchanged.
        for result in (naive, dt):
            assert result.best.updated_holdouts[("11AM",)] == pytest.approx(
                34.667, abs=0.5)


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    """Import each example and run the cheap ones end to end."""

    @pytest.mark.parametrize("name", [
        "quickstart", "intel_sensor_analysis", "campaign_expenses",
        "synthetic_comparison", "custom_aggregate",
    ])
    def test_example_importable(self, name):
        module = _load_example(name)
        assert hasattr(module, "main")

    def test_quickstart_runs(self, capsys):
        module = _load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "influence" in out

    def test_custom_aggregate_runs(self, capsys):
        module = _load_example("custom_aggregate")
        module.main()
        out = capsys.readouterr().out
        assert "via mc" in out
        assert "over-removal rejected" in out
