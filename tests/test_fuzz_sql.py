"""Property-based fuzzing of the mini SQL parser.

Generates structurally valid queries from random identifiers/literals
and checks the parser recovers every component exactly; also checks that
random junk never crashes with anything but QueryError.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.sql import parse_query

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z_0-9]{0,10}", fullmatch=True).filter(
    # Keywords would terminate clauses early; real schemas avoid them too.
    lambda s: s.upper() not in {"SELECT", "FROM", "WHERE", "GROUP", "BY", "AND"}
)
numbers = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
              allow_infinity=False).map(lambda f: round(f, 3)),
)
string_literals = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                           whitelist_characters=" .-_"),
    max_size=12,
)
operators = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def conditions(draw):
    column = draw(identifiers)
    op = draw(operators)
    if draw(st.booleans()):
        literal = draw(numbers)
        rendered = f"{column} {op} {literal}"
        value = float(literal)
    else:
        text = draw(string_literals)
        rendered = f"{column} {op} '{text.replace(chr(39), chr(39) * 2)}'"
        value = text
    return rendered, (column, op, value)


@st.composite
def queries(draw):
    agg = draw(st.sampled_from(["sum", "avg", "count", "stddev", "min"]))
    agg_column = draw(identifiers)
    table = draw(identifiers)
    group_columns = draw(st.lists(identifiers, min_size=1, max_size=3,
                                  unique=True))
    condition_list = draw(st.lists(conditions(), max_size=3))
    sql = f"SELECT {agg}({agg_column}) FROM {table}"
    if condition_list:
        sql += " WHERE " + " AND ".join(c[0] for c in condition_list)
    sql += " GROUP BY " + ", ".join(group_columns)
    return sql, agg, agg_column, table, tuple(group_columns), condition_list


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(query=queries())
    def test_components_recovered(self, query):
        sql, agg, agg_column, table, group_columns, condition_list = query
        parsed = parse_query(sql)
        assert parsed.aggregate_name == agg
        assert parsed.agg_column == agg_column
        assert parsed.table_name == table
        assert parsed.group_by == group_columns
        assert len(parsed.conditions) == len(condition_list)
        for got, (_, (column, op, value)) in zip(parsed.conditions,
                                                 condition_list):
            assert got.column == column
            assert got.op == op
            if isinstance(value, float):
                assert got.literal == pytest.approx(value)
            else:
                assert got.literal == value


class TestJunkNeverCrashes:
    @settings(max_examples=200, deadline=None)
    @given(junk=st.text(max_size=60))
    def test_arbitrary_text(self, junk):
        try:
            parse_query(junk)
        except QueryError:
            pass  # the only acceptable failure mode

    @settings(max_examples=100, deadline=None)
    @given(query=queries(), cut=st.integers(min_value=0, max_value=100))
    def test_truncated_valid_queries(self, query, cut):
        sql = query[0]
        prefix = sql[: min(cut, len(sql))]
        try:
            parse_query(prefix)
        except QueryError:
            pass
