"""Tests for the paper's explicitly deferred features we implemented:
mean-imputation influence (Section 3.2 footnote 3) and DT early pruning
(Section 8.3.2's future work)."""

import numpy as np
import pytest

from repro.aggregates import Avg, StdDev, Sum
from repro.core.dt import DTPartitioner
from repro.core.influence import INVALID_INFLUENCE, InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.errors import PartitionerError
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery

from tests.conftest import SENSOR_ROWS, SENSOR_SCHEMA, planted_sum_table
from repro.table.table import Table


def sensor_problem(perturbation: str, **kwargs) -> ScorpionQuery:
    table = Table.from_rows(SENSOR_SCHEMA, SENSOR_ROWS)
    return ScorpionQuery(
        table, GroupByQuery("time", Avg(), "temp"),
        outliers=["12PM", "1PM"], holdouts=["11AM"],
        error_vectors=+1.0, perturbation=perturbation, **kwargs)


class TestMeanPerturbationSemantics:
    def test_unknown_mode_rejected(self):
        with pytest.raises(PartitionerError):
            sensor_problem("zap")

    def test_mean_delta_avg_formula(self):
        # 12PM group: (35, 35, 100), mean 56.67.  Imputing T6 to the mean
        # gives avg (35 + 35 + 56.67)/3 = 42.22 → Δ = 14.44.
        problem = sensor_problem("mean")
        scorer = InfluenceScorer(problem)
        ctx = next(c for c in scorer.outlier_contexts if c.key == ("12PM",))
        delta = scorer.delta(ctx, np.asarray([False, False, True]))
        assert delta == pytest.approx(56.667 - 42.222, abs=1e-3)

    def test_mean_mode_full_coverage_is_valid(self):
        # Deleting a whole AVG group is invalid; imputing it is fine
        # (every value becomes the mean; the average is unchanged).
        problem = sensor_problem("mean")
        scorer = InfluenceScorer(problem)
        ctx = scorer.outlier_contexts[0]
        delta = scorer.delta(ctx, np.ones(3, dtype=bool))
        assert delta == pytest.approx(0.0, abs=1e-9)

    def test_delete_mode_full_coverage_still_invalid(self):
        problem = sensor_problem("delete")
        scorer = InfluenceScorer(problem)
        assert scorer.score(Predicate.true()) == INVALID_INFLUENCE

    def test_mean_mode_stddev_full_coverage_zeroes_spread(self):
        table = Table.from_rows(SENSOR_SCHEMA, SENSOR_ROWS)
        problem = ScorpionQuery(
            table, GroupByQuery("time", StdDev(), "temp"),
            outliers=["12PM"], error_vectors=+1.0, perturbation="mean")
        scorer = InfluenceScorer(problem)
        ctx = scorer.outlier_contexts[0]
        delta = scorer.delta(ctx, np.ones(3, dtype=bool))
        # All values imputed to the mean → stddev 0 → Δ = original stddev.
        assert delta == pytest.approx(ctx.total_value)

    @pytest.mark.parametrize("aggregate", [Sum(), Avg(), StdDev()])
    def test_incremental_matches_recompute_in_mean_mode(self, aggregate):
        table = Table.from_rows(SENSOR_SCHEMA, SENSOR_ROWS)
        problem = ScorpionQuery(
            table, GroupByQuery("time", aggregate, "temp"),
            outliers=["12PM", "1PM"], holdouts=["11AM"],
            error_vectors=+1.0, perturbation="mean")
        fast = InfluenceScorer(problem, use_incremental=True)
        slow = InfluenceScorer(problem, use_incremental=False)
        p = Predicate([SetClause("sensorid", [2, 3])])
        assert fast.score(p) == pytest.approx(slow.score(p), rel=1e-9)

    def test_tuple_deltas_mean_mode(self):
        problem = sensor_problem("mean")
        scorer = InfluenceScorer(problem)
        ctx = next(c for c in scorer.outlier_contexts if c.key == ("12PM",))
        deltas = scorer.tuple_deltas(ctx)
        # Imputing T4 (35 → 56.67) raises the average: Δ negative.
        assert deltas[0] == pytest.approx(56.667 - 63.889, abs=1e-2)
        # Imputing T6 (100 → 56.67) lowers it by 14.44.
        assert deltas[2] == pytest.approx(14.444, abs=1e-2)

    def test_with_c_preserves_mode(self):
        problem = sensor_problem("mean")
        assert problem.with_c(0.2).perturbation == "mean"


class TestMeanPerturbationEndToEnd:
    def test_scorpion_explains_in_mean_mode(self):
        problem = sensor_problem("mean", c=0.5)
        result = Scorpion(partitioner=DTPartitioner(min_leaf_size=2)).explain(problem)
        best = result.best
        mask = best.predicate.mask(problem.table)
        assert mask[5] and mask[8]
        # The updated outputs reflect imputation, not deletion.
        assert best.updated_outliers[("12PM",)] == pytest.approx(42.222, abs=1e-2)

    def test_mc_supports_mean_mode(self):
        table, outliers, holdouts = planted_sum_table(n_per_group=120)
        problem = ScorpionQuery(table, GroupByQuery("g", Sum(), "value"),
                                outliers=outliers, holdouts=holdouts,
                                error_vectors=+1.0, c=1.0,
                                perturbation="mean")
        result = Scorpion(algorithm="mc").explain(problem)
        assert result.best is not None
        clause = result.best.predicate.clause_for("state")
        assert clause is not None and "TX" in clause.values


class TestEarlyPruning:
    def _problem(self, seed=0):
        rng = np.random.default_rng(seed)
        n_groups, per_group = 4, 600
        n = n_groups * per_group
        groups = np.repeat([f"g{i}" for i in range(n_groups)], per_group)
        x = rng.uniform(0, 100, n)
        y = rng.uniform(0, 100, n)
        # High-variance but uninfluential background noise + a hot corner.
        value = rng.normal(10, 4, n)
        hot = np.isin(groups, ["g0", "g1"]) & (x > 80) & (y > 80)
        value[hot] += 60
        from repro.table import ColumnKind, ColumnSpec, Schema
        table = Table.from_columns(
            Schema([ColumnSpec("g", ColumnKind.DISCRETE),
                    ColumnSpec("x", ColumnKind.CONTINUOUS),
                    ColumnSpec("y", ColumnKind.CONTINUOUS),
                    ColumnSpec("v", ColumnKind.CONTINUOUS)]),
            {"g": groups, "x": x, "y": y, "v": value})
        return ScorpionQuery(table, GroupByQuery("g", Avg(), "v"),
                             outliers=["g0", "g1"], holdouts=["g2", "g3"],
                             error_vectors=+1.0, c=0.3)

    def test_prunable_rule_directly(self):
        # A node whose best sampled influence sits below the fraction of
        # the group's max (in every group) is prunable; a node holding a
        # near-max tuple is not.
        from repro.core.dt import _GroupData, _NodeGroup
        influences = np.asarray([0.0, 1.0, 2.0, 10.0])
        group = _GroupData(context=None, values={}, influences=influences)
        group.inf_lo, group.inf_hi = 0.0, 10.0
        dt = DTPartitioner(early_prune_fraction=0.5)
        cold = [_NodeGroup(rows=np.asarray([0, 1, 2]),
                           sample=np.asarray([0, 1, 2]))]
        hot = [_NodeGroup(rows=np.asarray([2, 3]), sample=np.asarray([2, 3]))]
        assert dt._early_prunable(cold, [group])
        assert not dt._early_prunable(hot, [group])

    def test_pruning_never_grows_the_partitioning(self):
        problem = self._problem()
        plain = DTPartitioner(seed=0).run(problem)
        pruned = DTPartitioner(seed=0, early_prune_fraction=0.5).run(problem)
        assert len(pruned.candidates) <= len(plain.candidates)

    def test_hot_region_survives_early_pruning(self):
        problem = self._problem()
        result = Scorpion(partitioner=DTPartitioner(
            seed=0, early_prune_fraction=0.3)).explain(problem)
        x_clause = result.best.predicate.clause_for("x")
        y_clause = result.best.predicate.clause_for("y")
        assert x_clause is not None and x_clause.lo >= 60
        assert y_clause is not None and y_clause.lo >= 60

    def test_disabled_by_default(self):
        assert DTPartitioner().params.early_prune_fraction == 0.0
