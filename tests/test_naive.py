"""Unit tests for the NAIVE exhaustive partitioner."""

import pytest

from repro.core.influence import InfluenceScorer
from repro.core.naive import NaivePartitioner
from repro.errors import PartitionerError
from repro.predicates.clause import SetClause
from repro.predicates.predicate import Predicate


class TestSearch:
    def test_finds_paper_explanation(self, paper_problem):
        result = NaivePartitioner(n_bins=5, time_budget=20.0).run(paper_problem)
        best = result.best
        assert best is not None
        # The anomaly lives on sensor 3 / low voltage; either description
        # (or their conjunction) nails all and only the outlier readings.
        mask = best.predicate.mask(paper_problem.table)
        assert mask.tolist() == [False, False, False,
                                 False, False, True,
                                 False, False, True]

    def test_finds_planted_subspace(self, sum_problem):
        result = NaivePartitioner(n_bins=10, time_budget=20.0).run(sum_problem)
        best = result.best
        clause = best.predicate.clause_for("state")
        assert clause is not None and "TX" in clause.values

    def test_ranked_sorted_descending(self, paper_problem):
        result = NaivePartitioner(n_bins=4, time_budget=20.0, top_k=5).run(paper_problem)
        influences = [sp.influence for sp in result.ranked]
        assert influences == sorted(influences, reverse=True)
        assert len(result.ranked) <= 5

    def test_convergence_log_monotone(self, sum_problem):
        result = NaivePartitioner(n_bins=8, time_budget=20.0).run(sum_problem)
        points = result.convergence
        assert points, "expected at least one improvement"
        influences = [p.influence for p in points]
        assert influences == sorted(influences)
        elapsed = [p.elapsed for p in points]
        assert elapsed == sorted(elapsed)

    def test_shared_scorer_reused(self, paper_problem):
        scorer = InfluenceScorer(paper_problem)
        NaivePartitioner(n_bins=3, time_budget=20.0).run(paper_problem, scorer)
        assert scorer.stats.predicate_scores > 0


class TestBudgets:
    def test_evaluation_budget_truncates(self, paper_problem):
        result = NaivePartitioner(n_bins=15, time_budget=None,
                                  max_evaluations=10).run(paper_problem)
        assert result.n_evaluated == 10
        assert result.truncated

    def test_time_budget_truncates(self, sum_problem):
        result = NaivePartitioner(n_bins=15, time_budget=0.0).run(sum_problem)
        assert result.truncated
        assert result.n_evaluated <= 1

    def test_full_enumeration_not_truncated(self, paper_problem):
        result = NaivePartitioner(n_bins=2, time_budget=60.0).run(paper_problem)
        assert not result.truncated

    def test_no_budget_rejected(self):
        with pytest.raises(PartitionerError):
            NaivePartitioner(time_budget=None, max_evaluations=None)

    def test_bad_top_k_rejected(self):
        with pytest.raises(PartitionerError):
            NaivePartitioner(top_k=0)


class TestSpaceControls:
    def test_max_clauses_limits_space(self, paper_problem):
        result = NaivePartitioner(n_bins=3, time_budget=None, max_clauses=1,
                                  max_evaluations=10_000).run(paper_problem)
        assert all(sp.predicate.num_clauses == 1 for sp in result.ranked)

    def test_max_discrete_set_size(self, paper_problem):
        result = NaivePartitioner(n_bins=2, time_budget=None,
                                  max_discrete_set_size=1,
                                  max_evaluations=10_000).run(paper_problem)
        for scored in result.ranked:
            clause = scored.predicate.clause_for("sensorid")
            if isinstance(clause, SetClause):
                assert len(clause.values) == 1

    def test_invalid_predicates_never_ranked(self, paper_problem):
        result = NaivePartitioner(n_bins=3, time_budget=20.0).run(paper_problem)
        for scored in result.ranked:
            assert scored.influence != float("-inf")
            assert scored.predicate != Predicate.true()
