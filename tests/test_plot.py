"""Unit tests for ASCII plotting."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.eval.plot import ascii_scatter, overlay_box
from repro.predicates.clause import RangeClause
from repro.predicates.predicate import Predicate


class TestScatter:
    def test_density_mode_shape(self):
        rng = np.random.default_rng(0)
        plot = ascii_scatter(rng.uniform(0, 1, 200), rng.uniform(0, 1, 200),
                             width=30, height=10)
        lines = plot.splitlines()
        assert len(lines) == 12  # borders + 10 rows
        assert all(line.startswith(("|", "+")) for line in lines)

    def test_dense_region_darker(self):
        x = np.concatenate([np.full(500, 0.25), np.asarray([0.9])])
        y = np.concatenate([np.full(500, 0.25), np.asarray([0.9])])
        plot = ascii_scatter(x, y, width=20, height=10,
                             x_range=(0, 1), y_range=(0, 1))
        assert "@" in plot  # the packed cell reaches the ramp's top

    def test_label_mode_highest_label_wins(self):
        x = np.asarray([0.5, 0.5])
        y = np.asarray([0.5, 0.5])
        plot = ascii_scatter(x, y, labels=np.asarray([0, 2]),
                             width=10, height=6,
                             x_range=(0, 1), y_range=(0, 1),
                             label_chars=".o#")
        assert "#" in plot
        assert "o" not in plot

    def test_ranges_clamp_outside_points(self):
        plot = ascii_scatter(np.asarray([-5.0, 50.0]), np.asarray([200.0, 1.0]),
                             width=10, height=5, x_range=(0, 10), y_range=(0, 10))
        assert plot.count("|") >= 10  # rendered without error

    def test_axis_annotations(self):
        plot = ascii_scatter(np.asarray([0.0, 1.0]), np.asarray([2.0, 3.0]),
                             width=8, height=4)
        assert "x in [0, 1]" in plot
        assert "y in [2, 3]" in plot

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            ascii_scatter(np.asarray([]), np.asarray([]))

    def test_mismatched_rejected(self):
        with pytest.raises(DatasetError):
            ascii_scatter(np.zeros(3), np.zeros(4))

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            ascii_scatter(np.zeros(1), np.zeros(1), width=1, height=1)

    def test_label_out_of_chars_rejected(self):
        with pytest.raises(DatasetError):
            ascii_scatter(np.zeros(1), np.zeros(1),
                          labels=np.asarray([7]), label_chars=".o")


class TestOverlay:
    def test_box_edges_drawn(self):
        rng = np.random.default_rng(1)
        plot = ascii_scatter(rng.uniform(0, 100, 50), rng.uniform(0, 100, 50),
                             width=40, height=16, x_range=(0, 100),
                             y_range=(0, 100))
        box = Predicate([RangeClause("x", 20, 60), RangeClause("y", 30, 70)])
        overlaid = overlay_box(plot, box, "x", "y", (0, 100), (0, 100))
        assert "=" in overlaid or "I" in overlaid
        # Same geometry: line count and widths unchanged.
        assert len(overlaid.splitlines()) == len(plot.splitlines())
        for old, new in zip(plot.splitlines(), overlaid.splitlines()):
            assert len(old) == len(new)

    def test_missing_clause_spans_axis(self):
        plot = ascii_scatter(np.asarray([50.0]), np.asarray([50.0]),
                             width=20, height=8, x_range=(0, 100),
                             y_range=(0, 100))
        box = Predicate([RangeClause("x", 40, 60)])  # y unconstrained
        overlaid = overlay_box(plot, box, "x", "y", (0, 100), (0, 100))
        assert "I" in overlaid
