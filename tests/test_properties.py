"""Cross-module property-based tests (hypothesis).

These check the invariants that hold the system together regardless of
data: influence consistency across evaluation paths, predicate-algebra /
evaluation agreement, DT partition disjointness, and metric bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import Avg, StdDev, Sum
from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.eval.metrics import confusion_counts
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery
from repro.table import ColumnKind, ColumnSpec, Schema, Table

SCHEMA = Schema([
    ColumnSpec("g", ColumnKind.DISCRETE),
    ColumnSpec("x", ColumnKind.CONTINUOUS),
    ColumnSpec("s", ColumnKind.DISCRETE),
    ColumnSpec("v", ColumnKind.CONTINUOUS),
])


def random_problem(seed: int, aggregate, c: float, lam: float = 0.5,
                   n_per_group: int = 40) -> ScorpionQuery:
    rng = np.random.default_rng(seed)
    n_groups = 4
    n = n_groups * n_per_group
    table = Table.from_columns(SCHEMA, {
        "g": np.repeat([f"g{i}" for i in range(n_groups)], n_per_group),
        "x": rng.uniform(0, 100, n),
        "s": rng.choice(["a", "b", "c"], n),
        "v": rng.uniform(0.5, 20.0, n),
    })
    return ScorpionQuery(
        table, GroupByQuery("g", aggregate, "v"),
        outliers=["g0", "g1"], holdouts=["g2", "g3"],
        error_vectors=+1.0, lam=lam, c=c)


predicates = st.builds(
    lambda lo, width, values: Predicate(
        ([RangeClause("x", lo, lo + width)] if width > 0 else [])
        + ([SetClause("s", values)] if values else [])
    ) if (width > 0 or values) else Predicate([RangeClause("x", lo, lo + 1)]),
    st.floats(min_value=0, max_value=90, allow_nan=False),
    st.floats(min_value=0, max_value=60, allow_nan=False),
    st.sets(st.sampled_from("abc"), max_size=3),
)


class TestInfluenceConsistency:
    @settings(max_examples=40, deadline=None)
    @given(predicate=predicates, seed=st.integers(0, 20),
           c=st.sampled_from([0.0, 0.5, 1.0]))
    @pytest.mark.parametrize("aggregate", [Sum(), Avg(), StdDev()])
    def test_incremental_equals_recompute(self, aggregate, predicate, seed, c):
        problem = random_problem(seed, aggregate, c)
        fast = InfluenceScorer(problem, use_incremental=True, cache_scores=False)
        slow = InfluenceScorer(problem, use_incremental=False, cache_scores=False)
        assert fast.score(predicate) == pytest.approx(
            slow.score(predicate), rel=1e-8, abs=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(predicate=predicates, seed=st.integers(0, 20))
    def test_score_equals_score_mask(self, predicate, seed):
        problem = random_problem(seed, Avg(), 0.5)
        scorer = InfluenceScorer(problem, cache_scores=False)
        via_mask = scorer.score_mask(predicate.mask(problem.table))
        assert scorer.score(predicate) == pytest.approx(via_mask, rel=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(predicate=predicates, seed=st.integers(0, 10))
    def test_refinement_bound_dominates(self, predicate, seed):
        problem = random_problem(seed, Sum(), 0.5)
        scorer = InfluenceScorer(problem, cache_scores=False)
        outlier_only = scorer.outlier_only_score(predicate)
        bound = scorer.refinement_bound(predicate)
        if np.isfinite(outlier_only) and outlier_only > 0:
            assert bound >= outlier_only - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(predicate=predicates, seed=st.integers(0, 10))
    def test_holdouts_never_raise_score(self, predicate, seed):
        problem = random_problem(seed, Avg(), 0.5)
        scorer = InfluenceScorer(problem, cache_scores=False)
        full = scorer.score(predicate)
        without = scorer.outlier_only_score(predicate)
        if np.isfinite(full) and np.isfinite(without):
            assert full <= without + 1e-12


class TestSimplifyInvariance:
    @settings(max_examples=40, deadline=None)
    @given(predicate=predicates, seed=st.integers(0, 10))
    def test_simplified_matches_same_rows(self, predicate, seed):
        problem = random_problem(seed, Avg(), 0.5)
        simplified = problem.domain.simplify(predicate)
        np.testing.assert_array_equal(
            simplified.mask(problem.table), predicate.mask(problem.table))


class TestDTPartitionInvariants:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_outlier_partitions_tile_each_group(self, seed):
        problem = random_problem(seed, Avg(), 0.5, n_per_group=60)
        scorer = InfluenceScorer(problem)
        dt = DTPartitioner(seed=0, min_leaf_size=8)
        dt._query = problem
        dt._scorer = scorer
        dt._rng = np.random.default_rng(0)
        groups = [dt._prepare_group(scorer, ctx)
                  for ctx in scorer.outlier_contexts]
        partitions = dt._partition(groups)
        for g_index, group in enumerate(groups):
            covered = np.concatenate([
                partition.node_groups[g_index].rows
                for partition in partitions])
            assert sorted(covered.tolist()) == list(range(group.size))


class TestMetricBounds:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_precision_recall_within_unit_interval(self, data):
        n = data.draw(st.integers(min_value=1, max_value=50))
        selected = np.asarray(data.draw(
            st.lists(st.booleans(), min_size=n, max_size=n)))
        truth = np.asarray(data.draw(
            st.lists(st.booleans(), min_size=n, max_size=n)))
        stats = confusion_counts(selected, truth)
        assert 0.0 <= stats.precision <= 1.0
        assert 0.0 <= stats.recall <= 1.0
        assert 0.0 <= stats.f_score <= 1.0 + 1e-12
        if stats.precision and stats.recall:
            # Harmonic mean lies between min and max (float-rounding slack).
            assert stats.f_score <= max(stats.precision, stats.recall) + 1e-12
            assert stats.f_score >= min(stats.precision, stats.recall) - 1e-12
