"""Unit tests for cross-c caching (paper Section 8.3.3)."""

import pytest

from repro.core.cache import DEFAULT_MAX_ENTRIES, DTCache, query_signature
from repro.errors import PartitionerError
from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.core.partition import ScoredPredicate
from repro.core.scorpion import Scorpion
from repro.predicates.clause import SetClause
from repro.predicates.predicate import Predicate

from tests.test_dt import avg_problem


class TestSignature:
    def test_signature_ignores_c(self):
        problem = avg_problem(n_per_group=60)
        assert query_signature(problem) == query_signature(problem.with_c(0.1))

    def test_signature_sees_lambda(self):
        problem = avg_problem(n_per_group=60)
        other = avg_problem(n_per_group=60)
        other.lam = 0.9
        assert query_signature(problem) != query_signature(other)


class TestDTCache:
    def test_partitions_computed_once(self):
        problem = avg_problem(n_per_group=120)
        cache = DTCache()
        partitioner = DTPartitioner(seed=0)
        scorer = InfluenceScorer(problem)
        first, cold_elapsed = cache.candidates(problem, partitioner, scorer)
        second, warm_elapsed = cache.candidates(
            problem.with_c(0.1), partitioner,
            InfluenceScorer(problem.with_c(0.1)))
        assert cache.partition_misses == 1
        assert cache.partition_hits == 1
        assert [c.predicate for c in first] == [c.predicate for c in second]
        assert cold_elapsed > 0.0
        assert warm_elapsed == 0.0

    def test_merger_seeds_use_nearest_higher_c(self):
        problem = avg_problem(n_per_group=60, c=1.0)
        cache = DTCache()
        cache.candidates(problem, DTPartitioner(seed=0), InfluenceScorer(problem))
        p_high = Predicate([SetClause("g", ["g0"])])
        p_mid = Predicate([SetClause("g", ["g1"])])
        cache.store_merged(problem.with_c(1.0), [ScoredPredicate(p_high, 1.0)])
        cache.store_merged(problem.with_c(0.5), [ScoredPredicate(p_mid, 2.0)])
        seeds = cache.merger_seeds(problem.with_c(0.2))
        assert seeds == [p_mid]

    def test_no_seeds_for_higher_c(self):
        problem = avg_problem(n_per_group=60, c=0.2)
        cache = DTCache()
        cache.candidates(problem, DTPartitioner(seed=0), InfluenceScorer(problem))
        cache.store_merged(problem, [])
        assert cache.merger_seeds(problem.with_c(0.5)) is None

    def test_unknown_query_has_no_seeds(self):
        cache = DTCache()
        assert cache.merger_seeds(avg_problem(n_per_group=60)) is None

    def test_clear(self):
        problem = avg_problem(n_per_group=60)
        cache = DTCache()
        cache.candidates(problem, DTPartitioner(seed=0), InfluenceScorer(problem))
        cache.clear()
        assert cache.partition_misses == 0
        cache.candidates(problem, DTPartitioner(seed=0), InfluenceScorer(problem))
        assert cache.partition_misses == 1


class TestDTCacheBounds:
    """The cache is LRU-bounded on signatures and per-entry on stored
    ``c`` results (a resident service would otherwise grow it forever)."""

    def _fill(self, cache, n):
        """Insert ``n`` distinct-signature entries (distinct tables →
        distinct ``id(raw_table)``), returning the problems."""
        problems = [avg_problem(n_per_group=60) for _ in range(n)]
        for problem in problems:
            cache.candidates(problem, DTPartitioner(seed=0),
                             InfluenceScorer(problem))
        return problems

    def test_entry_lru_eviction(self):
        cache = DTCache(max_entries=2)
        first, second, third = self._fill(cache, 3)
        assert len(cache) == 2
        assert cache.entry_evictions == 1
        # The oldest signature was dropped; re-inserting it misses.
        cache.candidates(first, DTPartitioner(seed=0),
                         InfluenceScorer(first))
        assert cache.partition_misses == 4
        # The newer two survived.
        cache.candidates(third, DTPartitioner(seed=0),
                         InfluenceScorer(third))
        assert cache.partition_hits == 1

    def test_hit_refreshes_lru_position(self):
        cache = DTCache(max_entries=2)
        first, second = self._fill(cache, 2)
        cache.candidates(first, DTPartitioner(seed=0),
                         InfluenceScorer(first))  # first is now MRU
        self._fill(cache, 1)  # evicts second, not first
        cache.candidates(first, DTPartitioner(seed=0),
                         InfluenceScorer(first))
        assert cache.partition_hits == 2
        cache.candidates(second, DTPartitioner(seed=0),
                         InfluenceScorer(second))
        assert cache.partition_misses == 4

    def test_per_entry_c_results_bounded(self):
        problem = avg_problem(n_per_group=60, c=1.0)
        cache = DTCache(max_c_results=2)
        cache.candidates(problem, DTPartitioner(seed=0),
                         InfluenceScorer(problem))
        p = Predicate([SetClause("g", ["g0"])])
        for c in (1.0, 0.8, 0.6):
            cache.store_merged(problem.with_c(c),
                               [ScoredPredicate(p, c)])
        assert cache.c_evictions == 1
        # c=1.0 (oldest stored) was dropped: nothing higher than 0.9
        # remains except 1.0, so a 0.9 query falls back to nothing...
        assert cache.merger_seeds(problem.with_c(0.9)) is None
        # ...while 0.5 still seeds from the surviving 0.6 result.
        assert cache.merger_seeds(problem.with_c(0.5)) == [p]

    def test_env_override_and_validation(self, monkeypatch):
        monkeypatch.setenv("SCORPION_DTCACHE_ENTRIES", "3")
        assert DTCache().max_entries == 3
        monkeypatch.delenv("SCORPION_DTCACHE_ENTRIES")
        assert DTCache().max_entries == DEFAULT_MAX_ENTRIES
        with pytest.raises(PartitionerError):
            DTCache(max_entries=0)
        with pytest.raises(PartitionerError):
            DTCache(max_c_results=0)

    def test_window_stats_report_deltas(self):
        cache = DTCache(max_entries=1)
        snapshot = cache.counter_snapshot()
        first, second = self._fill(cache, 2)
        window = cache.window_stats(snapshot)
        assert window["dtcache_partition_misses"] == 2
        assert window["dtcache_partition_hits"] == 0
        assert window["dtcache_entry_evictions"] == 1
        assert window["dtcache_entries"] == 1
        # A later window starts from a fresh snapshot.
        snapshot = cache.counter_snapshot()
        cache.candidates(second, DTPartitioner(seed=0),
                         InfluenceScorer(second))
        window = cache.window_stats(snapshot)
        assert window["dtcache_partition_hits"] == 1
        assert window["dtcache_partition_misses"] == 0


class TestScorpionCaching:
    def test_c_sweep_with_cache_matches_without(self):
        problem = avg_problem(n_per_group=200)
        cached = Scorpion(algorithm="dt", use_cache=True)
        uncached = Scorpion(algorithm="dt", use_cache=False)
        for c in (0.5, 0.2, 0.0):
            with_cache = cached.explain(problem.with_c(c))
            without = uncached.explain(problem.with_c(c))
            assert with_cache.best is not None and without.best is not None
            # The warm-started search must be at least as good.
            assert with_cache.best.influence >= without.best.influence - 1e-9

    def test_cached_sweep_reuses_partitions(self):
        problem = avg_problem(n_per_group=120)
        scorpion = Scorpion(algorithm="dt", use_cache=True)
        scorpion.explain(problem.with_c(0.5))
        scorpion.explain(problem.with_c(0.1))
        assert scorpion.cache.partition_hits == 1
        assert scorpion.cache.partition_misses == 1
