"""Unit tests for cross-c caching (paper Section 8.3.3)."""

import pytest

from repro.core.cache import DTCache, query_signature
from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.core.partition import ScoredPredicate
from repro.core.scorpion import Scorpion
from repro.predicates.clause import SetClause
from repro.predicates.predicate import Predicate

from tests.test_dt import avg_problem


class TestSignature:
    def test_signature_ignores_c(self):
        problem = avg_problem(n_per_group=60)
        assert query_signature(problem) == query_signature(problem.with_c(0.1))

    def test_signature_sees_lambda(self):
        problem = avg_problem(n_per_group=60)
        other = avg_problem(n_per_group=60)
        other.lam = 0.9
        assert query_signature(problem) != query_signature(other)


class TestDTCache:
    def test_partitions_computed_once(self):
        problem = avg_problem(n_per_group=120)
        cache = DTCache()
        partitioner = DTPartitioner(seed=0)
        scorer = InfluenceScorer(problem)
        first, cold_elapsed = cache.candidates(problem, partitioner, scorer)
        second, warm_elapsed = cache.candidates(
            problem.with_c(0.1), partitioner,
            InfluenceScorer(problem.with_c(0.1)))
        assert cache.partition_misses == 1
        assert cache.partition_hits == 1
        assert [c.predicate for c in first] == [c.predicate for c in second]
        assert cold_elapsed > 0.0
        assert warm_elapsed == 0.0

    def test_merger_seeds_use_nearest_higher_c(self):
        problem = avg_problem(n_per_group=60, c=1.0)
        cache = DTCache()
        cache.candidates(problem, DTPartitioner(seed=0), InfluenceScorer(problem))
        p_high = Predicate([SetClause("g", ["g0"])])
        p_mid = Predicate([SetClause("g", ["g1"])])
        cache.store_merged(problem.with_c(1.0), [ScoredPredicate(p_high, 1.0)])
        cache.store_merged(problem.with_c(0.5), [ScoredPredicate(p_mid, 2.0)])
        seeds = cache.merger_seeds(problem.with_c(0.2))
        assert seeds == [p_mid]

    def test_no_seeds_for_higher_c(self):
        problem = avg_problem(n_per_group=60, c=0.2)
        cache = DTCache()
        cache.candidates(problem, DTPartitioner(seed=0), InfluenceScorer(problem))
        cache.store_merged(problem, [])
        assert cache.merger_seeds(problem.with_c(0.5)) is None

    def test_unknown_query_has_no_seeds(self):
        cache = DTCache()
        assert cache.merger_seeds(avg_problem(n_per_group=60)) is None

    def test_clear(self):
        problem = avg_problem(n_per_group=60)
        cache = DTCache()
        cache.candidates(problem, DTPartitioner(seed=0), InfluenceScorer(problem))
        cache.clear()
        assert cache.partition_misses == 0
        cache.candidates(problem, DTPartitioner(seed=0), InfluenceScorer(problem))
        assert cache.partition_misses == 1


class TestScorpionCaching:
    def test_c_sweep_with_cache_matches_without(self):
        problem = avg_problem(n_per_group=200)
        cached = Scorpion(algorithm="dt", use_cache=True)
        uncached = Scorpion(algorithm="dt", use_cache=False)
        for c in (0.5, 0.2, 0.0):
            with_cache = cached.explain(problem.with_c(c))
            without = uncached.explain(problem.with_c(c))
            assert with_cache.best is not None and without.best is not None
            # The warm-started search must be at least as good.
            assert with_cache.best.influence >= without.best.influence - 1e-9

    def test_cached_sweep_reuses_partitions(self):
        problem = avg_problem(n_per_group=120)
        scorpion = Scorpion(algorithm="dt", use_cache=True)
        scorpion.explain(problem.with_c(0.5))
        scorpion.explain(problem.with_c(0.1))
        assert scorpion.cache.partition_hits == 1
        assert scorpion.cache.partition_misses == 1
