"""Unit + property tests for range and set clauses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PredicateError
from repro.predicates.clause import RangeClause, SetClause
from repro.table import ColumnKind, ColumnSpec, Schema, Table

TABLE = Table.from_columns(
    Schema([ColumnSpec("x", ColumnKind.CONTINUOUS),
            ColumnSpec("s", ColumnKind.DISCRETE)]),
    {"x": [0.0, 1.0, 2.0, 3.0], "s": ["a", "b", "a", "c"]},
)


class TestRangeClause:
    def test_mask_closed(self):
        clause = RangeClause("x", 1.0, 2.0)
        assert clause.mask(TABLE).tolist() == [False, True, True, False]

    def test_mask_half_open(self):
        clause = RangeClause("x", 1.0, 2.0, include_hi=False)
        assert clause.mask(TABLE).tolist() == [False, True, False, False]

    def test_mask_values_matches_mask(self):
        clause = RangeClause("x", 0.5, 2.5)
        np.testing.assert_array_equal(
            clause.mask_values(TABLE.values("x")), clause.mask(TABLE))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(PredicateError):
            RangeClause("x", 2.0, 1.0)
        with pytest.raises(PredicateError):
            RangeClause("x", float("nan"), 1.0)
        with pytest.raises(PredicateError):
            RangeClause("x", 1.0, 1.0, include_hi=False)

    def test_point_range_allowed_when_closed(self):
        clause = RangeClause("x", 2.0, 2.0)
        assert clause.mask(TABLE).tolist() == [False, False, True, False]

    def test_contains(self):
        outer = RangeClause("x", 0.0, 10.0)
        inner = RangeClause("x", 2.0, 5.0)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_respects_open_top(self):
        closed = RangeClause("x", 0.0, 5.0)
        open_top = RangeClause("x", 0.0, 5.0, include_hi=False)
        assert closed.contains(open_top)
        assert not open_top.contains(closed)

    def test_contains_other_attribute_false(self):
        assert not RangeClause("x", 0, 10).contains(RangeClause("y", 1, 2))

    def test_intersect(self):
        a = RangeClause("x", 0.0, 5.0)
        b = RangeClause("x", 3.0, 8.0)
        got = a.intersect(b)
        assert (got.lo, got.hi) == (3.0, 5.0)

    def test_intersect_disjoint_is_none(self):
        # Closed ranges touching at 1 intersect in the point [1, 1].
        touch = RangeClause("x", 0, 1).intersect(RangeClause("x", 1, 2))
        assert (touch.lo, touch.hi) == (1.0, 1.0)
        assert RangeClause("x", 0.0, 0.5).intersect(
            RangeClause("x", 0.6, 1.0)) is None

    def test_intersect_open_boundary_is_none(self):
        a = RangeClause("x", 0.0, 1.0, include_hi=False)
        b = RangeClause("x", 1.0, 2.0)
        got = a.intersect(b)
        # [0,1) ∩ [1,2] is empty.
        assert got is None

    def test_intersect_mismatched_raises(self):
        with pytest.raises(PredicateError):
            RangeClause("x", 0, 1).intersect(SetClause("x", ["a"]))

    def test_merge_is_bounding_range(self):
        a = RangeClause("x", 0.0, 1.0, include_hi=False)
        b = RangeClause("x", 3.0, 4.0)
        merged = a.merge(b)
        assert (merged.lo, merged.hi, merged.include_hi) == (0.0, 4.0, True)

    def test_touches(self):
        assert RangeClause("x", 0, 1).touches(RangeClause("x", 1, 2))
        assert not RangeClause("x", 0, 1).touches(RangeClause("x", 1.1, 2))

    def test_width(self):
        assert RangeClause("x", 1.0, 3.5).width == 2.5

    def test_equality_hash(self):
        assert RangeClause("x", 0, 1) == RangeClause("x", 0, 1)
        assert hash(RangeClause("x", 0, 1)) == hash(RangeClause("x", 0, 1))
        assert RangeClause("x", 0, 1) != RangeClause("x", 0, 1, include_hi=False)

    def test_str(self):
        assert str(RangeClause("x", 0, 1, include_hi=False)) == "x in [0, 1)"


class TestSetClause:
    def test_mask(self):
        clause = SetClause("s", ["a"])
        assert clause.mask(TABLE).tolist() == [True, False, True, False]

    def test_mask_values_matches_mask(self):
        clause = SetClause("s", ["a", "c"])
        np.testing.assert_array_equal(
            clause.mask_values(TABLE.values("s")), clause.mask(TABLE))

    def test_empty_set_rejected(self):
        with pytest.raises(PredicateError):
            SetClause("s", [])

    def test_contains(self):
        assert SetClause("s", ["a", "b"]).contains(SetClause("s", ["a"]))
        assert not SetClause("s", ["a"]).contains(SetClause("s", ["a", "b"]))

    def test_intersect(self):
        got = SetClause("s", ["a", "b"]).intersect(SetClause("s", ["b", "c"]))
        assert got.values == frozenset(["b"])

    def test_intersect_disjoint_is_none(self):
        assert SetClause("s", ["a"]).intersect(SetClause("s", ["b"])) is None

    def test_merge_is_union(self):
        got = SetClause("s", ["a"]).merge(SetClause("s", ["b"]))
        assert got.values == frozenset(["a", "b"])

    def test_difference(self):
        got = SetClause("s", ["a", "b"]).difference(SetClause("s", ["b"]))
        assert got.values == frozenset(["a"])
        assert SetClause("s", ["b"]).difference(SetClause("s", ["b"])) is None

    def test_touches_same_attribute_always(self):
        assert SetClause("s", ["a"]).touches(SetClause("s", ["z"]))
        assert not SetClause("s", ["a"]).touches(SetClause("t", ["a"]))

    def test_str_single_and_multi(self):
        assert str(SetClause("s", ["a"])) == "s = a"
        assert "in (" in str(SetClause("s", ["a", "b"]))

    def test_kind_mismatch_raises(self):
        with pytest.raises(PredicateError):
            SetClause("s", ["a"]).merge(RangeClause("s", 0, 1))


bounds = st.tuples(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
).map(lambda pair: (min(pair), max(pair)))


class TestRangeAlgebraProperties:
    @settings(max_examples=100, deadline=None)
    @given(a=bounds, b=bounds)
    def test_intersect_symmetric_and_contained(self, a, b):
        ca = RangeClause("x", *a)
        cb = RangeClause("x", *b)
        ab = ca.intersect(cb)
        ba = cb.intersect(ca)
        assert (ab is None) == (ba is None)
        if ab is not None:
            assert ab == ba
            assert ca.contains(ab) and cb.contains(ab)

    @settings(max_examples=100, deadline=None)
    @given(a=bounds, b=bounds)
    def test_merge_contains_both(self, a, b):
        ca = RangeClause("x", *a)
        cb = RangeClause("x", *b)
        merged = ca.merge(cb)
        assert merged.contains(ca) and merged.contains(cb)

    @settings(max_examples=100, deadline=None)
    @given(a=bounds, b=bounds,
           values=st.lists(st.floats(min_value=-100, max_value=100,
                                     allow_nan=False), max_size=30))
    def test_intersection_mask_is_conjunction(self, a, b, values):
        ca = RangeClause("x", *a)
        cb = RangeClause("x", *b)
        array = np.asarray(values, dtype=np.float64)
        both = ca.mask_values(array) & cb.mask_values(array)
        inter = ca.intersect(cb)
        if inter is None:
            assert not both.any()
        else:
            np.testing.assert_array_equal(inter.mask_values(array), both)


class TestSetAlgebraProperties:
    values_sets = st.sets(st.sampled_from("abcdefgh"), min_size=1)

    @settings(max_examples=100, deadline=None)
    @given(a=values_sets, b=values_sets)
    def test_merge_and_intersect_consistent(self, a, b):
        ca = SetClause("s", a)
        cb = SetClause("s", b)
        merged = ca.merge(cb)
        assert merged.values == a | b
        inter = ca.intersect(cb)
        if a & b:
            assert inter.values == a & b
        else:
            assert inter is None
