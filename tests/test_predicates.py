"""Unit + property tests for conjunctive predicates and box algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PredicateError
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.table import ColumnKind, ColumnSpec, Schema, Table

TABLE = Table.from_columns(
    Schema([ColumnSpec("x", ColumnKind.CONTINUOUS),
            ColumnSpec("y", ColumnKind.CONTINUOUS),
            ColumnSpec("s", ColumnKind.DISCRETE)]),
    {
        "x": [0.0, 1.0, 2.0, 3.0, 4.0],
        "y": [0.0, 10.0, 20.0, 30.0, 40.0],
        "s": ["a", "b", "a", "b", "c"],
    },
)


def box(x_lo, x_hi, y_lo, y_hi, include_hi=False) -> Predicate:
    return Predicate([
        RangeClause("x", x_lo, x_hi, include_hi=include_hi),
        RangeClause("y", y_lo, y_hi, include_hi=include_hi),
    ])


class TestConstruction:
    def test_true_predicate_matches_everything(self):
        assert Predicate.true().mask(TABLE).all()
        assert Predicate.true().is_true()

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(PredicateError):
            Predicate([RangeClause("x", 0, 1), RangeClause("x", 2, 3)])

    def test_clauses_sorted_by_attribute(self):
        p = Predicate([RangeClause("y", 0, 1), RangeClause("x", 0, 1)])
        assert p.attributes == ("x", "y")

    def test_equality_independent_of_order(self):
        a = Predicate([RangeClause("y", 0, 1), RangeClause("x", 0, 1)])
        b = Predicate([RangeClause("x", 0, 1), RangeClause("y", 0, 1)])
        assert a == b and hash(a) == hash(b)

    def test_str(self):
        p = Predicate([SetClause("s", ["a"]), RangeClause("x", 0, 1)])
        assert str(p) == "s = a & x in [0, 1]"


class TestEvaluation:
    def test_mask_is_conjunction(self):
        p = Predicate([RangeClause("x", 1.0, 3.0), SetClause("s", ["b"])])
        assert p.mask(TABLE).tolist() == [False, True, False, True, False]

    def test_filter(self):
        p = Predicate([SetClause("s", ["c"])])
        assert len(p.filter(TABLE)) == 1

    def test_selectivity(self):
        p = Predicate([SetClause("s", ["a"])])
        assert p.selectivity(TABLE) == pytest.approx(0.4)

    def test_selectivity_empty_table(self):
        empty = TABLE.filter(np.zeros(len(TABLE), dtype=bool))
        assert Predicate.true().selectivity(empty) == 0.0

    def test_mask_arrays_matches_mask(self):
        p = Predicate([RangeClause("x", 1.0, 3.0), SetClause("s", ["a", "b"])])
        values = {"x": TABLE.values("x"), "s": TABLE.values("s")}
        np.testing.assert_array_equal(
            p.mask_arrays(values, len(TABLE)), p.mask(TABLE))


class TestContainment:
    def test_syntactic_containment(self):
        outer = Predicate([RangeClause("x", 0, 10)])
        inner = Predicate([RangeClause("x", 2, 3), SetClause("s", ["a"])])
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_true_contains_all(self):
        assert Predicate.true().contains(box(0, 1, 0, 1))

    def test_containment_requires_all_clauses(self):
        p1 = Predicate([RangeClause("x", 0, 10), RangeClause("y", 0, 10)])
        p2 = Predicate([RangeClause("x", 2, 3)])  # unconstrained y
        assert not p1.contains(p2)

    def test_data_dependent_containment(self):
        smaller = Predicate([RangeClause("x", 0.0, 1.0)])
        bigger = Predicate([RangeClause("x", 0.0, 3.0)])
        assert smaller.contained_in_wrt(bigger, TABLE)
        assert not bigger.contained_in_wrt(smaller, TABLE)

    def test_data_dependent_containment_is_strict(self):
        a = Predicate([RangeClause("x", 0.0, 1.0)])
        same_rows = Predicate([RangeClause("x", 0.0, 1.5)])  # same 2 rows
        assert not a.contained_in_wrt(same_rows, TABLE)


class TestIntersect:
    def test_intersect_overlapping_boxes(self):
        got = box(0, 10, 0, 25).intersect(box(5, 20, 10, 50))
        assert got == box(5, 10, 10, 25)

    def test_intersect_disjoint_is_none(self):
        assert box(0, 1, 0, 1).intersect(box(5, 6, 5, 6)) is None

    def test_intersect_adds_new_attributes(self):
        p = Predicate([RangeClause("x", 0, 1)])
        q = Predicate([SetClause("s", ["a"])])
        got = p.intersect(q)
        assert set(got.attributes) == {"x", "s"}


class TestMergeAndAdjacency:
    def test_merge_bounding_box(self):
        got = box(0, 1, 0, 10).merge(box(2, 3, 5, 20))
        assert got == Predicate([RangeClause("x", 0, 3, include_hi=False),
                                 RangeClause("y", 0, 20, include_hi=False)])

    def test_merge_drops_one_sided_attributes(self):
        p = Predicate([RangeClause("x", 0, 1), SetClause("s", ["a"])])
        q = Predicate([RangeClause("x", 2, 3)])
        assert q.merge(p).attributes == ("x",)

    def test_adjacent_touching_boxes(self):
        assert box(0, 1, 0, 10).is_adjacent_to(box(1, 2, 0, 10))

    def test_adjacent_requires_same_attributes(self):
        p = Predicate([RangeClause("x", 0, 1)])
        assert not p.is_adjacent_to(box(0, 1, 0, 1))

    def test_gap_not_adjacent(self):
        assert not box(0, 1, 0, 10).is_adjacent_to(box(1.5, 2, 0, 10))

    def test_continuous_differences_allowed(self):
        # Both ranges differ but touch: still adjacent (hierarchical
        # partitions rarely share exact faces).
        assert box(0, 2, 0, 10).is_adjacent_to(box(1, 3, 5, 20))

    def test_discrete_union_needs_matching_rest(self):
        p1 = Predicate([RangeClause("x", 0, 1), SetClause("s", ["a"])])
        p2_same = Predicate([RangeClause("x", 0, 1), SetClause("s", ["b"])])
        p2_diff = Predicate([RangeClause("x", 1, 2), SetClause("s", ["b"])])
        assert p1.is_adjacent_to(p2_same)
        assert not p1.is_adjacent_to(p2_diff)  # diagonal discrete merge

    def test_two_discrete_differences_not_adjacent(self):
        p1 = Predicate([SetClause("s", ["a"]), SetClause("t", ["x"])])
        p2 = Predicate([SetClause("s", ["b"]), SetClause("t", ["y"])])
        assert not p1.is_adjacent_to(p2)


class TestSubtract:
    def test_subtract_disjoint_returns_self(self):
        p = box(0, 1, 0, 1)
        assert p.subtract(box(5, 6, 5, 6)) == [p]

    def test_subtract_covering_returns_empty(self):
        assert box(2, 3, 2, 3).subtract(box(0, 10, 0, 10)) == []

    def test_subtract_middle_splits_range(self):
        p = Predicate([RangeClause("x", 0, 10)])
        cutter = Predicate([RangeClause("x", 4, 6, include_hi=False)])
        pieces = p.subtract(cutter)
        assert len(pieces) == 2
        piece_strs = sorted(str(piece) for piece in pieces)
        assert piece_strs == ["x in [0, 4)", "x in [6, 10]"]

    def test_subtract_corner_produces_l_shape(self):
        p = box(0, 10, 0, 10)
        cutter = box(5, 10, 5, 10)
        pieces = p.subtract(cutter)
        # Two pieces: x ∈ [0,5) strip, plus x ∈ [5,10) with y ∈ [0,5).
        assert len(pieces) == 2

    def test_subtract_discrete(self):
        p = Predicate([SetClause("s", ["a", "b", "c"])])
        cutter = Predicate([SetClause("s", ["b"])])
        pieces = p.subtract(cutter)
        assert len(pieces) == 1
        assert pieces[0].clause_for("s").values == frozenset(["a", "c"])

    def test_subtract_pieces_disjoint_and_cover(self):
        p = box(0, 10, 0, 10)
        cutter = box(2, 5, 3, 8)
        pieces = p.subtract(cutter)
        full = p.mask(TABLE)
        cut = cutter.mask(TABLE)
        union = np.zeros(len(TABLE), dtype=bool)
        for piece in pieces:
            piece_mask = piece.mask(TABLE)
            assert not (piece_mask & union).any(), "pieces overlap"
            union |= piece_mask
        np.testing.assert_array_equal(union, full & ~cut)


boxes = st.builds(
    lambda x1, x2, y1, y2: box(min(x1, x2), max(x1, x2) + 0.5,
                               min(y1, y2), max(y1, y2) + 0.5),
    st.floats(min_value=0, max_value=50, allow_nan=False),
    st.floats(min_value=0, max_value=50, allow_nan=False),
    st.floats(min_value=0, max_value=50, allow_nan=False),
    st.floats(min_value=0, max_value=50, allow_nan=False),
)
points = st.lists(
    st.tuples(st.floats(min_value=-10, max_value=60, allow_nan=False),
              st.floats(min_value=-10, max_value=60, allow_nan=False)),
    min_size=1, max_size=40,
)


def table_of(point_list) -> Table:
    return Table.from_columns(
        Schema([ColumnSpec("x", ColumnKind.CONTINUOUS),
                ColumnSpec("y", ColumnKind.CONTINUOUS),
                ColumnSpec("s", ColumnKind.DISCRETE)]),
        {
            "x": [p[0] for p in point_list],
            "y": [p[1] for p in point_list],
            "s": ["k"] * len(point_list),
        },
    )


class TestBoxAlgebraProperties:
    @settings(max_examples=80, deadline=None)
    @given(a=boxes, b=boxes, pts=points)
    def test_intersection_semantics(self, a, b, pts):
        table = table_of(pts)
        inter = a.intersect(b)
        expected = a.mask(table) & b.mask(table)
        if inter is None:
            assert not expected.any()
        else:
            np.testing.assert_array_equal(inter.mask(table), expected)

    @settings(max_examples=80, deadline=None)
    @given(a=boxes, b=boxes, pts=points)
    def test_merge_covers_union(self, a, b, pts):
        table = table_of(pts)
        merged = a.merge(b)
        union = a.mask(table) | b.mask(table)
        assert (merged.mask(table) | ~union).all()

    @settings(max_examples=80, deadline=None)
    @given(a=boxes, b=boxes, pts=points)
    def test_subtract_partitions_difference(self, a, b, pts):
        table = table_of(pts)
        pieces = a.subtract(b)
        expected = a.mask(table) & ~b.mask(table)
        union = np.zeros(len(table), dtype=bool)
        for piece in pieces:
            mask = piece.mask(table)
            assert not (mask & union).any()
            union |= mask
        np.testing.assert_array_equal(union, expected)
