"""Unit tests for the mini SQL parser."""

import pytest

from repro.errors import QueryError
from repro.query.sql import parse_query


class TestParsing:
    def test_q1(self):
        q = parse_query("SELECT avg(temp) FROM sensors GROUP BY time")
        assert q.aggregate_name == "avg"
        assert q.agg_column == "temp"
        assert q.group_by == ("time",)
        assert q.table_name == "sensors"
        assert q.conditions == ()

    def test_keywords_case_insensitive(self):
        q = parse_query("select SUM(v) from t group by g")
        assert q.aggregate_name == "SUM"
        assert q.group_by == ("g",)

    def test_expenses_query(self):
        q = parse_query(
            "SELECT sum(disb_amt) FROM expenses "
            "WHERE candidate = 'Obama' GROUP BY date")
        assert q.conditions[0].column == "candidate"
        assert q.conditions[0].literal == "Obama"

    def test_numeric_conditions_and_conjunction(self):
        q = parse_query(
            "SELECT stddev(temp) FROM readings "
            "WHERE time >= 10 AND time <= 20 GROUP BY hour")
        assert len(q.conditions) == 2
        assert q.conditions[0].op == ">="
        assert q.conditions[1].literal == 20.0

    def test_escaped_quote_in_string(self):
        q = parse_query("SELECT sum(v) FROM t WHERE n = 'O''Brien' GROUP BY g")
        assert q.conditions[0].literal == "O'Brien"

    def test_multi_group_by(self):
        q = parse_query("SELECT avg(v) FROM t GROUP BY a, b")
        assert q.group_by == ("a", "b")

    def test_select_extra_columns_must_be_grouped(self):
        q = parse_query("SELECT avg(v), g FROM t GROUP BY g")
        assert q.select_columns == ("g",)
        with pytest.raises(QueryError):
            parse_query("SELECT avg(v), other FROM t GROUP BY g")


class TestLiterals:
    """Typed-literal contract: what the parser produces is what both
    the numpy layer and a SQL pushdown backend compare against."""

    def test_integer_literal_stays_int(self):
        q = parse_query("SELECT avg(v) FROM t WHERE a = 5 GROUP BY g")
        assert q.conditions[0].literal == 5
        assert type(q.conditions[0].literal) is int

    def test_float_literal_stays_float(self):
        q = parse_query("SELECT avg(v) FROM t WHERE a = 5.25 GROUP BY g")
        assert q.conditions[0].literal == 5.25
        assert type(q.conditions[0].literal) is float

    def test_leading_dot_float(self):
        q = parse_query("SELECT avg(v) FROM t WHERE a >= .5 GROUP BY g")
        assert q.conditions[0].literal == 0.5
        assert type(q.conditions[0].literal) is float

    def test_scientific_notation_is_float(self):
        q = parse_query(
            "SELECT avg(v) FROM t WHERE a < 1e3 AND b > 2.5E-2 GROUP BY g")
        assert q.conditions[0].literal == 1000.0
        assert type(q.conditions[0].literal) is float
        assert q.conditions[1].literal == 0.025

    def test_negative_integer_stays_int(self):
        q = parse_query("SELECT avg(v) FROM t WHERE a > -3 GROUP BY g")
        assert q.conditions[0].literal == -3
        assert type(q.conditions[0].literal) is int

    def test_sql_spelled_not_equal(self):
        q = parse_query("SELECT avg(v) FROM t WHERE a <> 7 GROUP BY g")
        assert q.conditions[0].op == "<>"
        assert q.conditions[0].literal == 7

    def test_int_literal_matches_int_coded_discrete(self, sensors_table):
        # sensorid values are Python ints; the old float coercion made
        # `sensorid = 3` compare 3.0 against int codes.
        q = parse_query(
            "SELECT avg(temp) FROM sensors WHERE sensorid = 3 GROUP BY time"
        ).to_query()
        results = q.execute(sensors_table)
        assert sum(r.group_size for r in results) == 3


class TestNullSemantics:
    def test_not_equal_excludes_missing_discrete_values(self):
        from repro.table import ColumnKind, ColumnSpec, Schema, Table
        schema = Schema([
            ColumnSpec("g", ColumnKind.DISCRETE),
            ColumnSpec("state", ColumnKind.DISCRETE),
            ColumnSpec("v", ColumnKind.CONTINUOUS),
        ])
        table = Table.from_rows(schema, [
            ("a", "TX", 1.0), ("a", None, 2.0), ("a", "CA", 3.0),
        ])
        q = parse_query(
            "SELECT sum(v) FROM t WHERE state != 'TX' GROUP BY g"
        ).to_query()
        results = q.execute(table)
        # Only the CA row matches; the None row satisfies neither = nor
        # != (SQL three-valued logic).
        assert results.by_key(("a",)).value == pytest.approx(3.0)
        assert results.by_key(("a",)).group_size == 1


class TestRejections:
    @pytest.mark.parametrize("sql", [
        "SELECT avg temp FROM t GROUP BY g",          # missing parens
        "SELECT avg(temp) FROM t",                     # no GROUP BY
        "SELECT avg(temp) GROUP BY g",                 # no FROM
        "avg(temp) FROM t GROUP BY g",                 # no SELECT
        "SELECT avg(temp) FROM t GROUP BY g extra",    # trailing tokens
        "SELECT avg(temp) FROM t WHERE GROUP BY g",    # empty condition
        "SELECT avg(temp) FROM t WHERE a ! 1 GROUP BY g",
    ])
    def test_malformed_rejected(self, sql):
        with pytest.raises(QueryError):
            parse_query(sql)


class TestExecution:
    def test_to_query_runs(self, sensors_table):
        q = parse_query("SELECT avg(temp) FROM sensors GROUP BY time").to_query()
        results = q.execute(sensors_table)
        assert results.by_key("1PM").value == pytest.approx(50.0)

    def test_where_equality_on_discrete(self, sensors_table):
        q = parse_query(
            "SELECT avg(temp) FROM sensors WHERE time = '11AM' GROUP BY time"
        ).to_query()
        results = q.execute(sensors_table)
        assert len(results) == 1

    def test_where_inequality_on_continuous(self, sensors_table):
        q = parse_query(
            "SELECT avg(temp) FROM sensors WHERE voltage < 2.5 GROUP BY time"
        ).to_query()
        results = q.execute(sensors_table)
        # Only the two low-voltage sensor-3 readings survive.
        assert sum(r.group_size for r in results) == 2

    def test_unknown_aggregate_rejected_at_to_query(self):
        parsed = parse_query("SELECT nope(v) FROM t GROUP BY g")
        from repro.errors import AggregateError
        with pytest.raises(AggregateError):
            parsed.to_query()

    def test_string_vs_continuous_comparison_rejected(self, sensors_table):
        q = parse_query(
            "SELECT avg(temp) FROM sensors WHERE voltage = 'x' GROUP BY time"
        ).to_query()
        with pytest.raises(QueryError):
            q.execute(sensors_table)

    def test_ordering_comparison_on_discrete_rejected(self, sensors_table):
        q = parse_query(
            "SELECT avg(temp) FROM sensors WHERE time < '1PM' GROUP BY time"
        ).to_query()
        with pytest.raises(QueryError):
            q.execute(sensors_table)

    def test_not_equal_on_discrete(self, sensors_table):
        q = parse_query(
            "SELECT avg(temp) FROM sensors WHERE sensorid != 3 GROUP BY time"
        ).to_query()
        results = q.execute(sensors_table)
        assert results.by_key("12PM").value == pytest.approx(35.0)
