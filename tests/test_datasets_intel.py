"""Unit tests for the Intel sensor-trace simulator."""

import numpy as np
import pytest

from repro.datasets.intel import IntelConfig, generate_intel, make_intel
from repro.errors import DatasetError


def tiny(workload=1):
    return generate_intel(IntelConfig(
        workload=workload, n_sensors=20, n_hours=10,
        readings_per_sensor_hour=4, failure_start=4, failure_hours=4))


class TestStructure:
    def test_row_count(self):
        ds = tiny()
        assert len(ds.table) == 20 * 10 * 4

    def test_schema(self):
        ds = tiny()
        assert ds.table.schema.names == ("hour", "sensorid", "voltage",
                                         "humidity", "light", "temp")

    def test_annotations_partition_hours(self):
        ds = tiny()
        assert ds.outlier_keys == [4, 5, 6, 7]
        assert set(ds.outlier_keys) | set(ds.holdout_keys) == set(range(10))

    def test_failure_mask_matches_failing_sensor(self):
        ds = tiny()
        sensor = ds.table.values("sensorid")
        hours = ds.table.values("hour")
        expected = np.asarray(
            [s == 15 and 4 <= h < 8 for s, h in zip(sensor, hours)])
        np.testing.assert_array_equal(ds.failure_mask, expected)

    def test_reproducible(self):
        assert tiny().table == tiny().table


class TestFailureModes:
    def test_w1_voltage_band(self):
        ds = tiny(workload=1)
        failing = ds.table.values("voltage")[ds.failure_mask]
        assert failing.min() >= 2.307 - 1e-9
        assert failing.max() <= 2.33 + 1e-9

    def test_w1_temperatures_above_100(self):
        ds = tiny(workload=1)
        temps = ds.table.values("temp")[ds.failure_mask]
        assert temps.min() > 95.0

    def test_w2_low_voltage(self):
        ds = tiny(workload=2)
        failing = ds.table.values("voltage")[ds.failure_mask]
        normal = ds.table.values("voltage")[~ds.failure_mask]
        assert failing.max() < normal.mean()

    def test_w2_light_band_peaks(self):
        ds = generate_intel(IntelConfig(
            workload=2, n_sensors=20, n_hours=12, readings_per_sensor_hour=30,
            failure_start=2, failure_hours=10))
        temps = ds.table.values("temp")[ds.failure_mask]
        light = ds.table.values("light")[ds.failure_mask]
        in_band = (light >= 283) & (light <= 354)
        assert in_band.any() and (~in_band).any()
        assert temps[in_band].min() > temps[~in_band].max()

    def test_normal_hours_have_low_stddev(self):
        ds = tiny()
        results = ds.query().execute(ds.table)
        outlier_stddev = [results.by_key(k).value for k in ds.outlier_keys]
        holdout_stddev = [results.by_key(k).value for k in ds.holdout_keys]
        assert min(outlier_stddev) > 4 * max(holdout_stddev)

    def test_windowed_query_template(self):
        # The paper's WHERE STARTDATE ≤ time ≤ ENDDATE clause.
        ds = tiny()
        results = ds.query(start_hour=2, end_hour=5).execute(ds.table)
        assert sorted(k[0] for k in results.keys()) == [2, 3, 4, 5]


class TestFactories:
    def test_w1_annotation_sizes_match_paper(self):
        ds = make_intel(1, readings_per_sensor_hour=1)
        assert len(ds.outlier_keys) == 20
        assert len(ds.holdout_keys) == 13

    def test_w2_annotation_sizes_match_paper(self):
        ds = make_intel(2, readings_per_sensor_hour=1)
        assert len(ds.outlier_keys) == 138
        assert len(ds.holdout_keys) == 21

    def test_unknown_workload_rejected(self):
        with pytest.raises(DatasetError):
            make_intel(3)

    def test_scorpion_query_attributes(self):
        ds = tiny()
        problem = ds.scorpion_query(c=0.5)
        assert set(problem.attributes) == {"sensorid", "voltage",
                                           "humidity", "light"}

    def test_outlier_row_indices(self):
        ds = tiny()
        rows = ds.outlier_row_indices()
        hours = set(ds.table.values("hour")[rows])
        assert hours == set(ds.outlier_keys)


class TestConfigValidation:
    def test_failure_window_must_fit(self):
        with pytest.raises(DatasetError):
            IntelConfig(n_hours=10, failure_start=8, failure_hours=5)

    def test_needs_normal_prefix(self):
        with pytest.raises(DatasetError):
            IntelConfig(failure_start=0, failure_hours=2, n_hours=10)

    def test_workload_validated(self):
        with pytest.raises(DatasetError):
            IntelConfig(workload=9)

    def test_failing_sensor_must_exist(self):
        with pytest.raises(DatasetError, match="sensor 15"):
            IntelConfig(workload=1, n_sensors=10)
