"""Unit tests for the regression-tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionerError
from repro.predicates.clause import RangeClause, SetClause
from repro.table import ColumnKind, ColumnSpec, Schema, Table
from repro.tree.node import TreeNode
from repro.tree.regression_tree import RegressionTree
from repro.tree.splits import (
    Split,
    best_split,
    candidate_splits,
    node_error,
    range_split_errors,
    split_error,
)


class TestSplits:
    def test_range_left_mask(self):
        split = Split("x", "range", 5.0)
        values = np.asarray([1.0, 5.0, 9.0])
        assert split.left_mask(values).tolist() == [True, False, False]

    def test_set_left_mask(self):
        split = Split("s", "set", "a")
        values = np.asarray(["a", "b", "a"], dtype=object)
        assert split.left_mask(values).tolist() == [True, False, True]

    def test_range_child_clauses_half_open(self):
        parent = RangeClause("x", 0.0, 10.0)
        left, right = Split("x", "range", 4.0).child_clauses(parent)
        assert (left.lo, left.hi, left.include_hi) == (0.0, 4.0, False)
        assert (right.lo, right.hi, right.include_hi) == (4.0, 10.0, True)

    def test_range_child_outside_parent_rejected(self):
        with pytest.raises(PartitionerError):
            Split("x", "range", 11.0).child_clauses(RangeClause("x", 0, 10))

    def test_set_child_clauses(self):
        parent = SetClause("s", ["a", "b", "c"])
        left, right = Split("s", "set", "b").child_clauses(parent)
        assert left.values == frozenset(["b"])
        assert right.values == frozenset(["a", "c"])

    def test_set_child_needs_two_values(self):
        with pytest.raises(PartitionerError):
            Split("s", "set", "a").child_clauses(SetClause("s", ["a"]))

    def test_candidate_splits_range_interior(self):
        values = np.linspace(0, 10, 50)
        splits = candidate_splits("x", "range", values, max_candidates=4)
        assert 0 < len(splits) <= 4
        for split in splits:
            assert 0.0 < float(split.value) < 10.0

    def test_candidate_splits_constant_column_empty(self):
        assert candidate_splits("x", "range", np.ones(10)) == []

    def test_candidate_splits_set_frequency_order(self):
        values = ["a"] * 5 + ["b"] * 3 + ["c"]
        splits = candidate_splits("s", "set", values, max_candidates=2)
        assert [s.value for s in splits] == ["a", "b"]

    def test_candidate_splits_unknown_kind(self):
        with pytest.raises(PartitionerError):
            candidate_splits("x", "weird", [1, 2])

    def test_node_error_is_std(self):
        assert node_error(np.asarray([1.0, 3.0])) == pytest.approx(1.0)
        assert node_error(np.asarray([5.0])) == 0.0
        assert node_error(np.asarray([])) == 0.0

    def test_split_error_weighted(self):
        targets = np.asarray([0.0, 0.0, 10.0, 10.0])
        perfect = split_error(targets, np.asarray([True, True, False, False]))
        assert perfect == 0.0
        bad = split_error(targets, np.asarray([True, False, True, False]))
        assert bad > 0.0

    def test_best_split_picks_minimum(self):
        values = np.asarray([1.0, 2.0, 9.0, 10.0])
        targets = np.asarray([0.0, 0.0, 5.0, 5.0])
        splits = [Split("x", "range", 5.0), Split("x", "range", 1.5)]
        choice = best_split(splits, [values, values], targets)
        assert choice[0].value == 5.0

    def test_best_split_respects_min_child(self):
        values = np.asarray([1.0, 9.0, 9.5, 10.0])
        targets = np.asarray([0.0, 5.0, 5.0, 5.0])
        choice = best_split([Split("x", "range", 5.0)], [values], targets,
                            min_child_size=2)
        assert choice is None


class TestRangeSplitErrors:
    def test_matches_generic_path(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0, 100, 200)
        targets = rng.normal(0, 1, 200) + (values > 50) * 10
        thresholds = np.asarray([10.0, 50.0, 90.0])
        fast, n_left, n_right = range_split_errors(values, targets, thresholds)
        for threshold, fast_error, nl, nr in zip(thresholds, fast, n_left, n_right):
            mask = values < threshold
            assert nl == mask.sum() and nr == (~mask).sum()
            assert fast_error == pytest.approx(split_error(targets, mask))

    def test_empty_values(self):
        errors, nl, nr = range_split_errors(np.asarray([]), np.asarray([]),
                                            np.asarray([1.0]))
        assert errors.tolist() == [0.0]

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_property_matches_generic(self, data):
        n = data.draw(st.integers(min_value=2, max_value=60))
        values = np.asarray(data.draw(st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=n, max_size=n)))
        targets = np.asarray(data.draw(st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=n, max_size=n)))
        threshold = data.draw(st.floats(min_value=0, max_value=100,
                                        allow_nan=False))
        errors, _, _ = range_split_errors(values, targets,
                                          np.asarray([threshold]))
        expected = split_error(targets, values < threshold)
        assert errors[0] == pytest.approx(expected, rel=1e-6, abs=1e-6)


class TestTreeNode:
    def test_bisect_builds_children(self):
        node = TreeNode({"x": RangeClause("x", 0, 10)})
        left, right = node.bisect(Split("x", "range", 4.0))
        assert not node.is_leaf
        assert left.predicate().clause_for("x").hi == 4.0
        assert right.predicate().clause_for("x").lo == 4.0

    def test_leaves_iteration(self):
        node = TreeNode({"x": RangeClause("x", 0, 10)})
        left, right = node.bisect(Split("x", "range", 5.0))
        left.bisect(Split("x", "range", 2.0))
        assert len(list(node.leaves())) == 3
        assert node.count_nodes() == 5
        assert node.depth_below() == 2


class TestRegressionTree:
    def _table(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 100, n)
        s = rng.choice(["a", "b"], n)
        y = np.where((x > 50) & (s == "a"), 10.0, 0.0) + rng.normal(0, 0.1, n)
        table = Table.from_columns(
            Schema([ColumnSpec("x", ColumnKind.CONTINUOUS),
                    ColumnSpec("s", ColumnKind.DISCRETE)]),
            {"x": x, "s": s})
        return table, y

    def test_fit_reduces_error(self):
        table, y = self._table()
        tree = RegressionTree(["x", "s"], min_samples=20).fit(table, y)
        predictions = tree.predict(table)
        residual = float(np.mean((predictions - y) ** 2))
        baseline = float(np.var(y))
        assert residual < baseline / 10

    def test_leaf_predicates_partition_table(self):
        table, y = self._table(n=200)
        tree = RegressionTree(["x", "s"], min_samples=20).fit(table, y)
        coverage = np.zeros(len(table), dtype=int)
        for predicate in tree.leaf_predicates():
            coverage += predicate.mask(table).astype(int)
        assert (coverage == 1).all()

    def test_max_depth_respected(self):
        table, y = self._table()
        tree = RegressionTree(["x", "s"], min_samples=4, max_depth=3).fit(table, y)
        assert tree.depth() <= 3

    def test_min_samples_respected(self):
        table, y = self._table(n=100)
        tree = RegressionTree(["x"], min_samples=40).fit(table, y)
        for leaf in tree.leaves():
            # A split of an admissible node needs min_samples rows.
            assert len(leaf.payload) >= 20

    def test_error_threshold_stops_early(self):
        table, y = self._table()
        tree = RegressionTree(["x", "s"], error_threshold=1e9).fit(table, y)
        assert len(tree.leaves()) == 1

    def test_constant_target_single_leaf(self):
        table, _ = self._table(n=50)
        tree = RegressionTree(["x", "s"]).fit(table, np.ones(50))
        assert len(tree.leaves()) == 1

    def test_unfitted_rejected(self):
        tree = RegressionTree(["x"])
        with pytest.raises(PartitionerError):
            tree.leaves()

    def test_mismatched_target_rejected(self):
        table, _ = self._table(n=10)
        with pytest.raises(PartitionerError):
            RegressionTree(["x"]).fit(table, np.ones(5))

    def test_empty_table_rejected(self):
        table, _ = self._table(n=10)
        empty = table.filter(np.zeros(10, dtype=bool))
        with pytest.raises(PartitionerError):
            RegressionTree(["x"]).fit(empty, np.asarray([]))

    def test_no_attributes_rejected(self):
        with pytest.raises(PartitionerError):
            RegressionTree([])
