"""Unit tests for ScorpionQuery validation and derivation."""

import pytest

from repro.core.problem import ScorpionQuery
from repro.errors import PartitionerError, QueryError


class TestValidation:
    def test_basic_construction(self, paper_problem):
        assert paper_problem.outlier_keys == [("12PM",), ("1PM",)]
        assert paper_problem.holdout_keys == [("11AM",)]

    def test_no_outliers_rejected(self, sensors_table, q1):
        with pytest.raises(QueryError):
            ScorpionQuery(sensors_table, q1, outliers=[])

    def test_overlap_rejected(self, sensors_table, q1):
        with pytest.raises(QueryError, match="both outlier and hold-out"):
            ScorpionQuery(sensors_table, q1, outliers=["12PM"], holdouts=["12PM"])

    def test_duplicate_outliers_rejected(self, sensors_table, q1):
        with pytest.raises(QueryError, match="duplicate"):
            ScorpionQuery(sensors_table, q1, outliers=["12PM", "12PM"])

    def test_unknown_key_rejected(self, sensors_table, q1):
        with pytest.raises(QueryError):
            ScorpionQuery(sensors_table, q1, outliers=["3AM"])

    def test_lambda_bounds(self, sensors_table, q1):
        with pytest.raises(PartitionerError):
            ScorpionQuery(sensors_table, q1, outliers=["12PM"], lam=1.5)

    def test_negative_c_rejected(self, sensors_table, q1):
        with pytest.raises(PartitionerError):
            ScorpionQuery(sensors_table, q1, outliers=["12PM"], c=-0.1)

    def test_negative_c_holdout_rejected(self, sensors_table, q1):
        with pytest.raises(PartitionerError):
            ScorpionQuery(sensors_table, q1, outliers=["12PM"], c_holdout=-1)


class TestErrorVectors:
    def test_scalar_broadcast(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM", "1PM"],
                                error_vectors=-1.0)
        assert problem.error_vectors == {("12PM",): -1.0, ("1PM",): -1.0}

    def test_mapping_by_scalar_key(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                error_vectors={"12PM": 1.0})
        assert problem.error_vectors[("12PM",)] == 1.0

    def test_mapping_by_tuple_key(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                error_vectors={("12PM",): -1.0})
        assert problem.error_vectors[("12PM",)] == -1.0

    def test_missing_vector_rejected(self, sensors_table, q1):
        with pytest.raises(QueryError, match="no error vector"):
            ScorpionQuery(sensors_table, q1, outliers=["12PM", "1PM"],
                          error_vectors={"12PM": 1.0})


class TestAttributes:
    def test_default_rest_attributes(self, paper_problem):
        assert set(paper_problem.attributes) == {"sensorid", "voltage", "humidity"}

    def test_explicit_attributes(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                attributes=["voltage"])
        assert problem.attributes == ("voltage",)

    def test_reserved_attribute_rejected(self, sensors_table, q1):
        with pytest.raises(QueryError):
            ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                          attributes=["temp"])

    def test_ignore(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                ignore=["humidity"])
        assert set(problem.attributes) == {"sensorid", "voltage"}

    def test_all_ignored_rejected(self, sensors_table, q1):
        with pytest.raises(PartitionerError):
            ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                          ignore=["humidity", "voltage", "sensorid"])

    def test_domain_built_from_table(self, paper_problem):
        assert paper_problem.domain["voltage"].lo == pytest.approx(2.3)
        assert paper_problem.domain["voltage"].hi == pytest.approx(2.7)


class TestDerived:
    def test_c_holdout_defaults_to_c(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM"], c=0.3)
        assert problem.c_holdout == 0.3

    def test_with_c_preserves_annotations(self, paper_problem):
        clone = paper_problem.with_c(0.2)
        assert clone.c == 0.2
        assert clone.outlier_keys == paper_problem.outlier_keys
        assert clone.holdout_keys == paper_problem.holdout_keys
        assert clone.error_vectors == paper_problem.error_vectors
        assert clone.attributes == paper_problem.attributes

    def test_results_have_provenance(self, paper_problem):
        for result in paper_problem.results:
            assert result.group_size == 3

    def test_repr(self, paper_problem):
        assert "outliers=2" in repr(paper_problem)
