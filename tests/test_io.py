"""Unit tests for repro.table.io (CSV round-trips and inference)."""

import pytest

from repro.errors import SchemaError
from repro.table import ColumnKind, ColumnSpec, Schema, Table, read_csv, write_csv

SCHEMA = Schema([
    ColumnSpec("name", ColumnKind.DISCRETE),
    ColumnSpec("value", ColumnKind.CONTINUOUS),
])


def test_round_trip(tmp_path):
    table = Table.from_rows(SCHEMA, [("a", 1.5), ("b", -2.0)])
    path = tmp_path / "t.csv"
    write_csv(table, path)
    loaded = read_csv(path, SCHEMA)
    assert loaded == table


def test_schema_inference(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("name,value\nalpha,1.5\nbeta,2\n")
    table = read_csv(path)
    assert table.schema["name"].is_discrete
    assert table.schema["value"].is_continuous
    assert table.values("value").tolist() == [1.5, 2.0]


def test_inference_mixed_column_is_discrete(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("v\n1.5\nnot-a-number\n")
    table = read_csv(path)
    assert table.schema["v"].is_discrete


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError):
        read_csv(path)


def test_ragged_row_rejected(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("a,b\n1,2\n3\n")
    with pytest.raises(SchemaError):
        read_csv(path)


def test_header_schema_mismatch_rejected(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("x,y\n1,2\n")
    with pytest.raises(SchemaError):
        read_csv(path, SCHEMA)


def test_bad_continuous_cell_rejected(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("name,value\na,oops\n")
    with pytest.raises(SchemaError):
        read_csv(path, SCHEMA)
