"""Execution-backend seam: resolution, the numpy reference engine, pure
SQL generation, cube pre-aggregation, and the SQL-layer correctness
fixes that ride with the backend contract (null-excluding ``!=``,
fingerprint invalidation).  Everything here runs without ``duckdb``
installed; the live engine is covered by ``test_backend_duckdb.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates import Avg, Sum
from repro.backend import (
    BACKEND_ENV_VAR,
    CubeIndex,
    ExecutionBackend,
    NumpyBackend,
    build_cube_numpy,
    resolve_backend,
)
from repro.backend import sqlgen
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.errors import BackendError
from repro.index.discrete import GroupDiscreteIndex
from repro.index.prefix import GroupAttributeIndex
from repro.query.groupby import GroupByQuery
from repro.query.sql import Condition, parse_query
from repro.service import invalidate_fingerprint, table_fingerprint
from repro.table import ColumnKind, ColumnSpec, Schema, Table

from tests.conftest import planted_sum_table


class TestResolveBackend:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "numpy"

    @pytest.mark.parametrize("name", ["numpy", "auto", "default", "",
                                      "NumPy"])
    def test_numpy_spellings(self, name):
        assert resolve_backend(name).name == "numpy"

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(BackendError, match="unknown backend"):
            resolve_backend("sqlite")

    def test_missing_engine_degrades_with_warning(self):
        # The container has no duckdb package; the knob must degrade to
        # the numpy reference with a warning and a counted fallback,
        # never fail the explain.  (With duckdb installed the live
        # backend resolves instead — also a valid outcome.)
        try:
            import duckdb  # noqa: F401
        except ImportError:
            with pytest.warns(RuntimeWarning, match="falling back"):
                backend = resolve_backend("duckdb")
            assert backend.name == "numpy"
            assert backend.stats.fallbacks == 1
        else:
            assert resolve_backend("duckdb").name == "duckdb"

    def test_fresh_instance_per_call(self):
        assert resolve_backend("numpy") is not resolve_backend("numpy")


class TestNumpyBackendReference:
    """The numpy backend must replicate the original in-place
    construction bit for bit — it IS the reference every other engine
    is measured against."""

    def test_group_total_states_bit_equal(self):
        rng = np.random.default_rng(7)
        groups = [rng.normal(size=(50, 2)), rng.normal(size=(3, 2)),
                  None, np.empty((0, 2))]
        backend = NumpyBackend()
        totals = backend.group_total_states(groups)
        assert totals[2] is None
        for states, total in zip(groups, totals):
            if states is None:
                continue
            np.testing.assert_array_equal(total, states.sum(axis=0))
        # The reference engine counts nothing — it is the baseline.
        assert backend.stats.routed_states == 0
        assert backend.stats.fallbacks == 0

    @pytest.mark.parametrize("exact", [True, False])
    def test_range_view_matches_direct_construction(self, exact):
        rng = np.random.default_rng(11)
        values = rng.uniform(0, 100, 64)
        values[5] = values[9]  # exercise stable tie-breaking
        states = (np.column_stack([np.arange(64.0), np.ones(64)])
                  if exact else rng.normal(size=(64, 2)))
        direct = GroupAttributeIndex(values, states, exact)
        order, sorted_values, prefix = NumpyBackend().build_range_view(
            values, states, exact)
        adopted = GroupAttributeIndex.from_arrays(order, sorted_values,
                                                  prefix)
        np.testing.assert_array_equal(adopted.order, direct.order)
        np.testing.assert_array_equal(adopted.sorted_values,
                                      direct.sorted_values)
        assert (adopted.prefix is None) == (direct.prefix is None)
        if direct.prefix is not None:
            np.testing.assert_array_equal(adopted.prefix, direct.prefix)

    @pytest.mark.parametrize("exact", [True, False])
    def test_discrete_view_matches_direct_construction(self, exact):
        rng = np.random.default_rng(13)
        codes = rng.integers(0, 5, 48).astype(np.int64)
        states = np.column_stack([np.arange(48.0), np.ones(48)])
        direct = GroupDiscreteIndex(codes, 5, states, exact)
        order, offsets, buckets = NumpyBackend().build_discrete_view(
            codes, 5, states, exact)
        adopted = GroupDiscreteIndex.from_arrays(order, offsets, buckets)
        np.testing.assert_array_equal(adopted.order, direct.order)
        np.testing.assert_array_equal(adopted.offsets, direct.offsets)
        assert (adopted.bucket_states is None) == \
            (direct.bucket_states is None)
        if direct.bucket_states is not None:
            np.testing.assert_array_equal(adopted.bucket_states,
                                          direct.bucket_states)

    def test_mask_count_matches_condition_masks(self, sensors_table):
        parsed = parse_query(
            "SELECT avg(temp) FROM sensors "
            "WHERE voltage >= 2.5 AND sensorid != 3 GROUP BY time")
        expected = int(parsed.where(sensors_table).sum())
        assert NumpyBackend().mask_count(
            sensors_table, parsed.conditions) == expected

    def test_execute_query_matches_groupby(self, sensors_table):
        parsed = parse_query("SELECT avg(temp) FROM sensors GROUP BY time")
        out = NumpyBackend().execute_query(sensors_table, parsed)
        direct = {r.key: float(r.value)
                  for r in parsed.to_query().execute(sensors_table)}
        assert out == direct


class TestSqlgen:
    def test_quote_identifier_doubles_quotes(self):
        assert sqlgen.quote_identifier('we"ird') == '"we""ird"'

    def test_quote_literal_string_escaping(self):
        assert sqlgen.quote_literal("O'Brien") == "'O''Brien'"

    def test_quote_literal_preserves_int_vs_float(self):
        assert sqlgen.quote_literal(5) == "5"
        assert sqlgen.quote_literal(5.0) == "5.0"
        assert sqlgen.quote_literal(None) == "NULL"
        assert sqlgen.quote_literal(True) == "1"

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf"), object()])
    def test_quote_literal_rejects_unrepresentable(self, bad):
        with pytest.raises(BackendError):
            sqlgen.quote_literal(bad)

    def test_condition_sql_spells_not_equal_portably(self):
        sql = sqlgen.condition_sql(Condition("state", "!=", "TX"))
        assert sql == '"state" <> \'TX\''

    def test_condition_sql_rejects_unknown_op(self):
        with pytest.raises(BackendError):
            sqlgen.condition_sql(Condition("a", "LIKE", "x"))

    def test_mask_count_sql(self):
        sql = sqlgen.mask_count_sql(
            "t", [Condition("a", ">=", 10), Condition("b", "=", "x")])
        assert sql == ('SELECT count(*) FROM "t" WHERE "a" >= 10 '
                       'AND "b" = \'x\'')

    def test_state_components_match_tuple_state_layouts(self):
        # Component order must equal each aggregate's tuple_states
        # column order — a fetched row IS a total state vector.
        assert sqlgen.state_component_sql("sum", "v") == \
            ('sum("v")', 'count(*)')
        assert sqlgen.state_component_sql("stddev", "v") == \
            ('sum("v")', 'sum("v" * "v")', 'count(*)')
        assert sqlgen.state_component_sql("count", "v") == ('count(*)',)

    def test_black_box_aggregate_not_pushable(self):
        with pytest.raises(BackendError, match="not pushable"):
            sqlgen.state_component_sql("median", "v")

    def test_grouped_query_sql_shape(self):
        sql = sqlgen.grouped_query_sql(
            "rel", "avg", "temp", ("time",),
            [Condition("sensorid", "!=", 3)])
        assert sql == ('SELECT "time", sum("temp"), count(*) FROM "rel" '
                       'WHERE "sensorid" <> 3 GROUP BY "time" '
                       'ORDER BY "time"')

    def test_prefix_states_sql_is_running_window(self):
        sql = sqlgen.prefix_states_sql("rel", "pos", ["s0"])
        assert "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW" in sql
        assert 'ORDER BY "pos"' in sql


class TestCube:
    def test_cells_match_direct_scan(self, sensors_table):
        cube = build_cube_numpy(sensors_table, ("time", "sensorid"),
                                "avg", "temp")
        assert cube.source == "numpy"
        assert cube.exact  # temp values are integer-valued
        times = sensors_table.values("time")
        sensors = sensors_table.values("sensorid")
        temps = np.asarray(sensors_table.values("temp"), dtype=np.float64)
        for key in cube.keys():
            t, s = key
            mask = np.asarray([(a, b) == (t, s)
                               for a, b in zip(times, sensors)])
            count, state = cube.cell(key)
            assert count == int(mask.sum())
            np.testing.assert_array_equal(
                state, Avg().tuple_states(temps[mask]).sum(axis=0))

    def test_slice_and_aggregate_value(self, sensors_table):
        cube = build_cube_numpy(sensors_table, ("time", "sensorid"),
                                "avg", "temp")
        count, state = cube.slice_states({"time": "12PM"})
        assert count == 3
        assert cube.aggregate_value({"time": "12PM"}) == \
            pytest.approx((35.0 + 35.0 + 100.0) / 3)
        # Set-valued constraint over one dimension.
        count, _ = cube.slice_states({"sensorid": [1, 2]})
        assert count == 6
        # Empty match recovers NaN, mirroring recover_batch.
        assert np.isnan(cube.aggregate_value({"time": "3AM"}))

    def test_absent_combination_is_zero_cell(self, sensors_table):
        cube = build_cube_numpy(sensors_table, ("time",), "sum", "temp")
        count, state = cube.cell(("3AM",))
        assert count == 0
        np.testing.assert_array_equal(state, np.zeros(2))

    def test_unknown_dimension_raises(self, sensors_table):
        cube = build_cube_numpy(sensors_table, ("time",), "sum", "temp")
        with pytest.raises(BackendError, match="not cube dimensions"):
            cube.slice_states({"voltage": 2.7})

    def test_validation(self, sensors_table):
        with pytest.raises(BackendError, match="at least one"):
            build_cube_numpy(sensors_table, (), "sum", "temp")
        with pytest.raises(BackendError, match="must be discrete"):
            build_cube_numpy(sensors_table, ("voltage",), "sum", "temp")
        with pytest.raises(BackendError, match="no state decomposition"):
            build_cube_numpy(sensors_table, ("time",), "median", "temp")
        with pytest.raises(BackendError, match="must be continuous"):
            build_cube_numpy(sensors_table, ("time",), "sum", "sensorid")

    def test_max_cells_guard(self, sensors_table):
        with pytest.raises(BackendError, match="exceed"):
            build_cube_numpy(sensors_table, ("time", "sensorid"),
                             "avg", "temp", max_cells=4)

    def test_same_cells_is_bitwise(self, sensors_table):
        a = build_cube_numpy(sensors_table, ("time",), "avg", "temp")
        b = build_cube_numpy(sensors_table, ("time",), "avg", "temp")
        assert a.same_cells(b)
        perturbed = {key: (count, state + 1e-9)
                     for key, (count, state) in b._cells.items()}
        c = CubeIndex(b.attributes, b.aggregate_name, b.agg_column,
                      perturbed, exact=b.exact, source="numpy")
        assert not a.same_cells(c)

    def test_numpy_build_counts_nothing(self, sensors_table):
        backend = NumpyBackend()
        backend.build_cube(sensors_table, ("time",), "avg", "temp")
        assert backend.stats.routed_cubes == 0


def _nullable_table() -> Table:
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("state", ColumnKind.DISCRETE),
        ColumnSpec("v", ColumnKind.CONTINUOUS),
    ])
    return Table.from_rows(schema, [
        ("a", "TX", 1.0),
        ("a", None, 2.0),
        ("a", "CA", 3.0),
        ("b", float("nan"), 4.0),
        ("b", "TX", 5.0),
    ])


class TestNullSemantics:
    """Satellite fix: discrete ``!=`` must not match missing values —
    SQL three-valued logic, shared by every backend."""

    def _backends(self):
        backends = [NumpyBackend()]
        try:
            from repro.backend import DuckDBBackend
            backends.append(DuckDBBackend())
        except Exception:
            pass  # duckdb not installed: numpy-only run
        return backends

    def test_not_equal_excludes_nulls(self):
        table = _nullable_table()
        condition = Condition("state", "!=", "TX")
        mask = condition.mask(table)
        # Rows 1 (None) and 3 (NaN) must NOT match despite != 'TX'.
        np.testing.assert_array_equal(
            mask, [False, False, True, False, False])
        for backend in self._backends():
            assert backend.mask_count(table, [condition]) == 1, backend

    def test_equality_never_matches_nulls(self):
        table = _nullable_table()
        condition = Condition("state", "=", "TX")
        np.testing.assert_array_equal(
            condition.mask(table), [True, False, False, False, True])
        for backend in self._backends():
            assert backend.mask_count(table, [condition]) == 2, backend

    def test_notnull_mask(self):
        table = _nullable_table()
        np.testing.assert_array_equal(
            table.column("state").notnull_mask(),
            [True, False, True, False, True])
        cont = Table.from_rows(
            Schema([ColumnSpec("v", ColumnKind.CONTINUOUS)]),
            [(1.0,), (float("nan"),), (3.0,)])
        np.testing.assert_array_equal(
            cont.column("v").notnull_mask(), [True, False, True])


class TestFingerprintInvalidation:
    """Satellite fix: the memoized table fingerprint must be
    explicitly invalidatable (tables are immutable by convention, not
    by enforcement)."""

    def test_fingerprint_is_memoized(self, sensors_table):
        first = table_fingerprint(sensors_table)
        assert table_fingerprint(sensors_table) == first

    def test_invalidate_forces_recompute_after_mutation(self, sensors_table):
        stale = table_fingerprint(sensors_table)
        # In-place mutation behind the memo's back (the documented
        # convention violation the hook exists for; columns are
        # read-only, so the violator flips the write flag too).
        values = sensors_table.column("temp").values
        values.setflags(write=True)
        try:
            values[0] = 999.0
        finally:
            values.setflags(write=False)
        assert table_fingerprint(sensors_table) == stale  # memo is stale
        invalidate_fingerprint(sensors_table)
        fresh = table_fingerprint(sensors_table)
        assert fresh != stale

    def test_invalidate_without_fingerprint_is_noop(self, sensors_table):
        invalidate_fingerprint(sensors_table)  # nothing memoized yet
        assert table_fingerprint(sensors_table)


class TestScorerBackendKnob:
    def test_scorer_resolves_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        table, outliers, holdouts = planted_sum_table(n_per_group=20)
        problem = ScorpionQuery(
            table=table, query=GroupByQuery("g", Sum(), "value"),
            outliers=outliers, holdouts=holdouts, error_vectors=+1.0)
        scorer = InfluenceScorer(problem)
        assert scorer._backend.name == "numpy"

    def test_backend_gauges_zero_on_numpy(self):
        table, outliers, holdouts = planted_sum_table(n_per_group=20)
        problem = ScorpionQuery(
            table=table, query=GroupByQuery("g", Sum(), "value"),
            outliers=outliers, holdouts=holdouts, error_vectors=+1.0)
        scorer = InfluenceScorer(problem, backend="numpy")
        scorer.prepare_index()
        stats = scorer.stats.as_dict()
        assert stats["backend_routed_states"] == 0
        assert stats["backend_routed_views"] == 0
        assert stats["backend_fallbacks"] == 0

    def test_total_states_unchanged_by_seam(self):
        # The deferred batched total-state build must equal the old
        # per-context states.sum(axis=0) bit for bit.
        table, outliers, holdouts = planted_sum_table(n_per_group=20)
        problem = ScorpionQuery(
            table=table, query=GroupByQuery("g", Sum(), "value"),
            outliers=outliers, holdouts=holdouts, error_vectors=+1.0)
        scorer = InfluenceScorer(problem)
        for context in scorer.contexts:
            np.testing.assert_array_equal(
                context.total_state, context.tuple_states.sum(axis=0))

    def test_explicit_instance_is_adopted(self):
        backend = NumpyBackend()
        table, outliers, holdouts = planted_sum_table(n_per_group=20)
        problem = ScorpionQuery(
            table=table, query=GroupByQuery("g", Sum(), "value"),
            outliers=outliers, holdouts=holdouts, error_vectors=+1.0)
        scorer = InfluenceScorer(problem, backend=backend)
        assert scorer._backend is backend
        assert isinstance(scorer._backend, ExecutionBackend)
