"""Unit tests for the Merger (paper Sections 4.3 and 6.3)."""

import numpy as np
import pytest

from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.core.merger import Merger, MergerParams, _ApproxIndex
from repro.core.partition import CandidatePredicate, GroupRemovalStats
from repro.errors import PartitionerError
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate

from tests.test_dt import avg_problem


def dt_candidates(problem, scorer):
    return DTPartitioner(seed=1).run(problem, scorer).candidates


class TestBasicMerging:
    def test_merges_fragments_into_planted_region(self):
        problem = avg_problem(n_per_group=300)
        scorer = InfluenceScorer(problem)
        candidates = dt_candidates(problem, scorer)
        merger = Merger(scorer, problem.domain,
                        params=MergerParams(expand_fraction=1.0,
                                            use_approximation=False))
        merged = merger.run(candidates)
        assert merged
        best = merged[0]
        clause = best.predicate.clause_for("x")
        assert clause is not None and clause.lo <= 45 and clause.hi >= 55

    def test_merged_influence_at_least_best_candidate(self):
        problem = avg_problem(n_per_group=300)
        scorer = InfluenceScorer(problem)
        candidates = dt_candidates(problem, scorer)
        merger = Merger(scorer, problem.domain,
                        params=MergerParams(expand_fraction=1.0))
        merged = merger.run(candidates)
        best_candidate_influence = max(
            scorer.score(c.predicate) for c in candidates)
        assert merged[0].influence >= best_candidate_influence - 1e-9

    def test_results_sorted_and_deduped(self):
        problem = avg_problem(n_per_group=200)
        scorer = InfluenceScorer(problem)
        merged = Merger(scorer, problem.domain).run(dt_candidates(problem, scorer))
        influences = [sp.influence for sp in merged]
        assert influences == sorted(influences, reverse=True)
        predicates = [sp.predicate for sp in merged]
        assert len(predicates) == len(set(predicates))

    def test_empty_input(self):
        problem = avg_problem(n_per_group=100)
        scorer = InfluenceScorer(problem)
        assert Merger(scorer, problem.domain).run([]) == []

    def test_unknown_param_rejected(self):
        problem = avg_problem(n_per_group=100)
        scorer = InfluenceScorer(problem)
        with pytest.raises(PartitionerError):
            Merger(scorer, problem.domain, nope=3)

    def test_bad_expand_fraction_rejected(self):
        problem = avg_problem(n_per_group=100)
        scorer = InfluenceScorer(problem)
        with pytest.raises(PartitionerError):
            Merger(scorer, problem.domain, expand_fraction=0.0)


class TestQuartileOptimization:
    def test_expands_fewer_candidates(self):
        problem = avg_problem(n_per_group=300)
        scorer = InfluenceScorer(problem)
        candidates = dt_candidates(problem, scorer)
        full = Merger(scorer, problem.domain,
                      params=MergerParams(expand_fraction=1.0))
        quart = Merger(scorer, problem.domain,
                       params=MergerParams(expand_fraction=0.25))
        full.run(candidates)
        quart.run(candidates)
        assert quart.report.n_expanded < full.report.n_expanded
        assert quart.report.n_expanded >= int(np.ceil(len(candidates) * 0.25))


class TestApproximation:
    def test_saves_scorer_calls(self):
        problem = avg_problem(n_per_group=300)
        scorer = InfluenceScorer(problem)
        candidates = dt_candidates(problem, scorer)
        approx = Merger(scorer, problem.domain,
                        params=MergerParams(use_approximation=True))
        approx.run(candidates)
        assert approx.report.n_scorer_calls_saved > 0

    def test_estimate_close_to_exact_on_whole_partitions(self):
        problem = avg_problem(n_per_group=400, with_holdouts=False)
        scorer = InfluenceScorer(problem)
        candidates = dt_candidates(problem, scorer)
        index = _ApproxIndex(candidates, problem.domain, scorer)
        merger = Merger(scorer, problem.domain)
        merger._index = index
        for candidate in candidates[:10]:
            exact = scorer.score(candidate.predicate, ignore_holdouts=True)
            estimate = merger._approximate(candidate.predicate)
            # A candidate's own stats are exact: estimate == exact score.
            assert estimate == pytest.approx(exact, rel=1e-6, abs=1e-9)

    def test_overlap_shares_geometry(self):
        problem = avg_problem(n_per_group=100, with_holdouts=False)
        scorer = InfluenceScorer(problem)
        stats = {scorer.outlier_contexts[0].key: GroupRemovalStats(10.0)}
        candidates = [
            CandidatePredicate(
                Predicate([RangeClause("x", 0, 10), RangeClause("y", 0, 10)]),
                score=1.0, group_stats=stats, volume=0.01),
        ]
        index = _ApproxIndex(candidates, problem.domain, scorer)
        contained = Predicate([RangeClause("x", 0, 20), RangeClause("y", 0, 20)])
        assert index.overlap_shares(contained)[0] == pytest.approx(1.0)
        half = Predicate([RangeClause("x", 0, 5), RangeClause("y", 0, 10)])
        assert index.overlap_shares(half)[0] == pytest.approx(0.5)
        disjoint = Predicate([RangeClause("x", 50, 60), RangeClause("y", 0, 10)])
        assert index.overlap_shares(disjoint)[0] == 0.0

    def test_overlap_shares_discrete(self, sum_problem):
        # sum_problem's domain has the discrete rest attribute "state".
        from repro.core.influence import InfluenceScorer as Scorer
        scorer = Scorer(sum_problem)
        stats = {scorer.outlier_contexts[0].key: GroupRemovalStats(10.0)}
        candidates = [
            CandidatePredicate(
                Predicate([SetClause("state", ["TX", "CA"])]),
                score=1.0, group_stats=stats, volume=0.5),
        ]
        index = _ApproxIndex(candidates, sum_problem.domain, scorer)
        one = Predicate([SetClause("state", ["TX"])])
        assert index.overlap_shares(one)[0] == pytest.approx(0.5)
        both = Predicate([SetClause("state", ["TX", "CA", "NY"])])
        assert index.overlap_shares(both)[0] == pytest.approx(1.0)
        none = Predicate([SetClause("state", ["WA"])])
        assert index.overlap_shares(none)[0] == 0.0

    def test_disabled_for_black_box_inputs(self):
        problem = avg_problem(n_per_group=100)
        scorer = InfluenceScorer(problem, use_incremental=False)
        merger = Merger(scorer, problem.domain,
                        params=MergerParams(use_approximation=True))
        assert not merger._approx_ready


class TestAdoptionVerification:
    def test_expansion_never_ends_below_start(self):
        problem = avg_problem(n_per_group=300)
        scorer = InfluenceScorer(problem)
        candidates = dt_candidates(problem, scorer)
        merger = Merger(scorer, problem.domain)
        merged = merger.run(candidates)
        for start in candidates[:5]:
            start_influence = scorer.score(start.predicate)
            assert merged[0].influence >= start_influence - 1e-9

    def test_adoptions_verified_through_batches(self):
        # A round's winning merges are exact-checked via one score_batch
        # call across expansion starts: no adoption check ever reaches
        # the scalar mask path (every scalar score() call downstream of
        # run() is a cache hit on a batch-computed value).
        problem = avg_problem(n_per_group=300)
        scorer = InfluenceScorer(problem)
        candidates = dt_candidates(problem, scorer)
        merger = Merger(scorer, problem.domain,
                        params=MergerParams(expand_fraction=1.0))
        before = scorer.stats.mask_scores
        batches_before = scorer.stats.batch_calls
        merged = merger.run(candidates)
        assert merged
        per_batch_mask_scores = (scorer.stats.mask_scores - before)
        # Scalar-path mask evaluations would show up as mask_scores not
        # attributable to batch chunks; with caching on there are none.
        assert scorer.stats.cache_hits > 0
        assert scorer.stats.batch_calls > batches_before
        assert per_batch_mask_scores == scorer.stats.masked_predicates

    def test_lockstep_equals_uncached_run(self):
        # Accept/reject decisions depend only on influence values, which
        # score_batch reproduces bit for bit — so a run without the memo
        # cache (every verification recomputed) lands on identical
        # predicates and influences.
        problem = avg_problem(n_per_group=300)
        cached_scorer = InfluenceScorer(problem)
        uncached_scorer = InfluenceScorer(problem, cache_scores=False)
        candidates = dt_candidates(problem, cached_scorer)
        params = MergerParams(expand_fraction=1.0, use_approximation=False)
        cached = Merger(cached_scorer, problem.domain, params=params).run(
            candidates)
        uncached = Merger(uncached_scorer, problem.domain, params=params).run(
            dt_candidates(problem, uncached_scorer))
        assert [sp.predicate for sp in cached] == \
            [sp.predicate for sp in uncached]
        assert [sp.influence for sp in cached] == \
            [sp.influence for sp in uncached]

    def test_parallel_scorer_preserves_merger_output(self):
        problem = avg_problem(n_per_group=300)
        serial_scorer = InfluenceScorer(problem)
        parallel_scorer = InfluenceScorer(problem, workers=2, batch_chunk=8)
        try:
            candidates = dt_candidates(problem, serial_scorer)
            params = MergerParams(expand_fraction=1.0)
            serial = Merger(serial_scorer, problem.domain, params=params).run(
                candidates)
            parallel = Merger(parallel_scorer, problem.domain,
                              params=params).run(
                dt_candidates(problem, parallel_scorer))
            assert [sp.predicate for sp in serial] == \
                [sp.predicate for sp in parallel]
            assert [sp.influence for sp in serial] == \
                [sp.influence for sp in parallel]
        finally:
            parallel_scorer.close()


class TestSeeds:
    def test_seeded_run_expands_seeds(self):
        problem = avg_problem(n_per_group=200)
        scorer = InfluenceScorer(problem)
        candidates = dt_candidates(problem, scorer)
        seed = [candidates[0].predicate]
        merger = Merger(scorer, problem.domain)
        merged = merger.run(candidates, seeds=seed)
        assert merger.report.n_expanded == 1
        assert merged
