"""Unit tests for the DT partitioner (paper Section 6.1)."""

import numpy as np
import pytest

from repro.aggregates import Avg, Median
from repro.core.dt import DTParams, DTPartitioner, _GroupData
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.errors import PartitionerError
from repro.query.groupby import GroupByQuery
from repro.table import ColumnKind, ColumnSpec, Schema, Table


def avg_problem(seed=0, n_per_group=300, with_holdouts=True, c=0.5):
    """AVG workload: groups g0/g1 carry hot tuples in x ∈ [40, 60]."""
    rng = np.random.default_rng(seed)
    n_groups = 4
    n = n_per_group * n_groups
    groups = np.repeat([f"g{i}" for i in range(n_groups)], n_per_group)
    x = rng.uniform(0, 100, n)
    y = rng.uniform(0, 100, n)
    value = rng.normal(10, 1, n)
    hot = np.isin(groups, ["g0", "g1"]) & (x >= 40) & (x <= 60)
    value[hot] += 80.0
    table = Table.from_columns(
        Schema([ColumnSpec("g", ColumnKind.DISCRETE),
                ColumnSpec("x", ColumnKind.CONTINUOUS),
                ColumnSpec("y", ColumnKind.CONTINUOUS),
                ColumnSpec("v", ColumnKind.CONTINUOUS)]),
        {"g": groups, "x": x, "y": y, "v": value})
    return ScorpionQuery(
        table=table,
        query=GroupByQuery("g", Avg(), "v"),
        outliers=["g0", "g1"],
        holdouts=["g2", "g3"] if with_holdouts else [],
        error_vectors=+1.0,
        c=c,
    )


class TestValidation:
    def test_requires_independent_aggregate(self, sensors_table):
        query = GroupByQuery("time", Median(), "temp")
        problem = ScorpionQuery(sensors_table, query, outliers=["12PM"])
        with pytest.raises(PartitionerError, match="independent"):
            DTPartitioner().run(problem)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(PartitionerError):
            DTPartitioner(no_such_knob=1)

    def test_bad_tau_rejected(self):
        with pytest.raises(PartitionerError):
            DTPartitioner(tau_min=0.9, tau_max=0.1)

    def test_bad_epsilon_rejected(self):
        with pytest.raises(PartitionerError):
            DTPartitioner(epsilon=1.5)


class TestThresholdCurve:
    """Section 6.1.1 / Figure 4: the error threshold shrinks to τ_min as
    the partition's max influence approaches the group's global max."""

    def _group(self, influences):
        influences = np.asarray(influences, dtype=np.float64)
        group = _GroupData(context=None, values={}, influences=influences)
        group.inf_lo = float(influences.min())
        group.inf_hi = float(influences.max())
        return group

    def test_tight_for_influential_partitions(self):
        dt = DTPartitioner()
        group = self._group(np.linspace(0, 100, 11))
        hot = dt._threshold(group, np.asarray([95.0, 100.0]))
        cold = dt._threshold(group, np.asarray([5.0, 10.0]))
        assert hot < cold

    def test_bounds_are_tau_times_spread(self):
        dt = DTPartitioner(tau_min=0.1, tau_max=0.4)
        group = self._group(np.linspace(0, 10, 11))
        hot = dt._threshold(group, np.asarray([10.0]))
        cold = dt._threshold(group, np.asarray([0.0]))
        assert hot == pytest.approx(0.1 * 10.0)
        assert cold == pytest.approx(0.4 * 10.0)

    def test_inflection_midpoint(self):
        dt = DTPartitioner(tau_min=0.1, tau_max=0.4, p_inflection=0.5)
        group = self._group(np.linspace(0, 10, 11))
        at_midpoint = dt._threshold(group, np.asarray([5.0]))
        assert at_midpoint == pytest.approx(0.4 * 10.0)

    def test_constant_influences_zero_threshold(self):
        dt = DTPartitioner()
        group = self._group(np.full(5, 3.0))
        assert dt._threshold(group, np.asarray([3.0])) == 0.0


class TestSampling:
    def test_initial_rate_formula(self):
        dt = DTPartitioner(epsilon=0.005, min_sample_size=1)
        rate = dt._initial_sample_rate(2000)
        # 1 − (1 − ε)^(rate·n) ≥ 0.95
        assert 1 - (1 - 0.005) ** (rate * 2000) >= 0.95 - 1e-9
        # And it is minimal up to rounding.
        assert 1 - (1 - 0.005) ** ((rate * 0.95) * 2000) < 0.95

    def test_rate_clipped_to_one(self):
        dt = DTPartitioner(epsilon=0.005)
        assert dt._initial_sample_rate(10) == 1.0

    def test_sampling_disabled(self):
        dt = DTPartitioner(sampling=False)
        assert dt._initial_sample_rate(100000) == 1.0

    def test_min_sample_size_floor(self):
        dt = DTPartitioner(epsilon=0.5, min_sample_size=50)
        assert dt._initial_sample_rate(1000) >= 0.05


class TestPartitioning:
    def test_finds_planted_region(self):
        problem = avg_problem()
        result = DTPartitioner(seed=1).run(problem)
        assert result.candidates, "expected candidates"
        # The partitioner emits fine partitions (the Merger coarsens
        # them): its best-scoring fragment must lie inside the planted
        # x ∈ [40, 60] region …
        best = max(result.candidates, key=lambda c: c.score)
        clause = best.predicate.clause_for("x")
        assert clause is not None
        assert clause.lo >= 35 and clause.hi <= 65
        # … and the high-scoring fragments together must cover it.
        positives = [c.predicate.clause_for("x") for c in result.candidates
                     if c.score > best.score / 4]
        assert min(c.lo for c in positives) <= 42
        assert max(c.hi for c in positives) >= 58

    def test_candidate_stats_consistent(self):
        problem = avg_problem(n_per_group=150)
        scorer = InfluenceScorer(problem)
        result = DTPartitioner(seed=1).run(problem, scorer)
        for candidate in result.candidates:
            mask = candidate.predicate.mask(problem.table)
            total = 0
            for ctx in scorer.outlier_contexts:
                matched = int(mask[ctx.indices].sum())
                stats = (candidate.group_stats or {}).get(ctx.key)
                if stats is None:
                    assert matched == 0
                else:
                    assert stats.count == matched
                total += matched
            assert total > 0, "candidates must match at least one outlier row"

    def test_partitions_have_homogeneous_influence(self):
        problem = avg_problem(n_per_group=400, with_holdouts=False)
        scorer = InfluenceScorer(problem)
        dt = DTPartitioner(seed=0, max_leaves=64)
        dt._query = problem
        dt._scorer = scorer
        dt._rng = np.random.default_rng(0)
        groups = [dt._prepare_group(scorer, ctx) for ctx in scorer.outlier_contexts]
        partitions = dt._partition(groups)
        assert len(partitions) > 1
        # Hot and cold tuples should not share the influential partitions.
        spreads = []
        for partition in partitions:
            for group, ng in zip(groups, partition.node_groups):
                if len(ng.rows) >= 2:
                    spreads.append(np.ptp(group.influences[ng.rows]))
        global_spread = max(g.inf_hi - g.inf_lo for g in groups)
        assert min(spreads) < global_spread / 4

    def test_max_leaves_cap(self):
        problem = avg_problem(n_per_group=400)
        result = DTPartitioner(max_leaves=8, seed=0).run(problem)
        # Leaves per tree bounded; combination may split further.
        assert len(result.candidates) <= 8 * 16

    def test_deterministic_given_seed(self):
        problem = avg_problem()
        a = DTPartitioner(seed=7).run(problem)
        b = DTPartitioner(seed=7).run(problem)
        assert [c.predicate for c in a.candidates] == [c.predicate for c in b.candidates]

    def test_no_holdouts_skips_combination(self):
        problem = avg_problem(with_holdouts=False)
        result = DTPartitioner(seed=1).run(problem)
        assert result.candidates

    def test_holdout_combination_produces_pieces(self):
        problem = avg_problem()
        with_h = DTPartitioner(seed=1).run(problem)
        assert with_h.candidates
        # All candidate predicates constrain only A_rest attributes.
        for candidate in with_h.candidates:
            assert set(candidate.predicate.attributes) <= set(problem.attributes)


class TestEndToEnd:
    def test_paper_example_with_tiny_params(self, paper_problem):
        result = DTPartitioner(min_leaf_size=2, seed=0).run(paper_problem)
        assert result.candidates
        best = max(result.candidates, key=lambda c: c.score)
        mask = best.predicate.mask(paper_problem.table)
        # The top partition must isolate the sensor-3 anomalies.
        assert mask[5] and mask[8]

    def test_black_box_independent_aggregate_supported(self, sensors_table):
        # A user-defined independent aggregate without incremental removal
        # exercises the sampled O(n²) influence path.
        class SlowAvg(Avg):
            name = "slowavg"
            is_incrementally_removable = False

            def compute(self, values):
                values = np.asarray(values, dtype=np.float64)
                if len(values) == 0:
                    raise PartitionerError("undefined")
                return float(np.mean(values))

            def state(self, values):  # pragma: no cover - defensive
                raise AssertionError("state must not be used")

            def tuple_states(self, values):
                raise AssertionError("tuple_states must not be used")

        query = GroupByQuery("time", SlowAvg(), "temp")
        problem = ScorpionQuery(sensors_table, query, outliers=["12PM"],
                                error_vectors=+1.0)
        scorer = InfluenceScorer(problem)
        assert not scorer.uses_incremental
        result = DTPartitioner(min_leaf_size=2, seed=0).run(problem, scorer)
        assert result.candidates
