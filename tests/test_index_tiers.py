"""Property tests for the discrete-bucket and 2-clause-conjunction
index tiers, driven through the shared differential oracle
(:func:`tests.conftest.assert_scoring_paths_agree`).

Coverage targets the tier-specific hazards: random discrete
cardinalities, set clauses naming values the table never takes (empty
buckets — globally or only in some groups), NaN-bearing continuous
columns on the conjunction's other side, degenerate one-row groups, and
conjunctions where either clause is the rarer (probe) side.  Plus the
planner's clean fallback when a conjunction references an attribute
with no prepared index view (the satellite bug-fix regression).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import Avg, StdDev, Sum
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.errors import PredicateError
from repro.index import (
    ConjunctionPlan,
    GroupDiscreteIndex,
    IndexPlanner,
    PrefixAggregateIndex,
    force_index_model,
)
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery
from repro.table import ColumnKind, ColumnSpec, Schema, Table

from tests.conftest import assert_scoring_paths_agree

SCHEMA = Schema([
    ColumnSpec("g", ColumnKind.DISCRETE),
    ColumnSpec("a1", ColumnKind.CONTINUOUS),
    ColumnSpec("a2", ColumnKind.CONTINUOUS),
    ColumnSpec("ac", ColumnKind.DISCRETE),
    ColumnSpec("ad", ColumnKind.DISCRETE),
    ColumnSpec("v", ColumnKind.CONTINUOUS),
])

#: a1 is drawn from a small grid so clause boundaries coincide with
#: duplicated data values; ``ac`` values come from this pool (per-group
#: subsets leave some buckets empty in some groups), ``ad`` is binary.
A1_GRID = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
AC_POOL = [f"c{i}" for i in range(12)]
AD_POOL = ["x", "y"]
#: Clause values beyond the pool — never present, so their buckets are
#: empty in every group.
AC_ABSENT = ["zz", "missing"]


def build_problem(aggregate, *, cardinality: int = 6,
                  integer_values: bool = False, nan_rate: float = 0.0,
                  rows_per_group: int = 30, one_row_group: bool = False,
                  perturbation: str = "delete", c: float = 0.5,
                  seed: int = 0) -> ScorpionQuery:
    rng = np.random.default_rng(seed)
    rows = []
    sizes = {"o1": rows_per_group,
             "o2": 1 if one_row_group else rows_per_group,
             "h1": rows_per_group}
    for gi, (group, shift) in enumerate((("o1", 4.0), ("o2", 2.0),
                                         ("h1", 0.0))):
        # Each group draws from a rotated slice of the code pool, so
        # some codes exist globally but have empty buckets per group.
        pool = [AC_POOL[(gi * 2 + j) % len(AC_POOL)]
                for j in range(max(cardinality, 1))]
        for _ in range(sizes[group]):
            a1 = float(rng.choice(A1_GRID))
            a2 = float(rng.uniform(0.0, 10.0))
            if nan_rate and rng.random() < nan_rate:
                a2 = float("nan")
            ac = str(rng.choice(pool))
            ad = str(rng.choice(AD_POOL))
            if integer_values:
                value = float(rng.integers(0, 50)) + shift
            else:
                value = float(rng.normal(10.0, 3.0)) + shift * a1
            rows.append((group, a1, a2, ac, ad, value))
    table = Table.from_rows(SCHEMA, rows)
    query = GroupByQuery("g", aggregate, "v")
    return ScorpionQuery(table, query, outliers=["o1", "o2"],
                         holdouts=["h1"], error_vectors=+1.0, c=c,
                         perturbation=perturbation)


@st.composite
def set_predicates(draw) -> Predicate:
    """Single set clauses over ``ac``/``ad``, mixing present, per-group
    -absent, and globally absent values."""
    attribute = draw(st.sampled_from(["ac", "ad"]))
    pool = AC_POOL + AC_ABSENT if attribute == "ac" else AD_POOL + ["w"]
    values = draw(st.sets(st.sampled_from(pool), min_size=1, max_size=4))
    return Predicate([SetClause(attribute, sorted(values))])


@st.composite
def range_clauses(draw, attribute=None) -> RangeClause:
    attribute = attribute or draw(st.sampled_from(["a1", "a2"]))
    lo = draw(st.one_of(st.sampled_from(A1_GRID),
                        st.floats(-1.0, 9.0, allow_nan=False)))
    width = draw(st.one_of(st.just(0.0), st.sampled_from([0.5, 2.0, 9.0]),
                           st.floats(0.0, 6.0, allow_nan=False)))
    hi = lo + width
    include_hi = draw(st.booleans()) or hi == lo
    return RangeClause(attribute, lo, hi, include_hi)


@st.composite
def conjunction_predicates(draw) -> Predicate:
    """2-clause conjunctions across every kind pairing — range×range,
    range×set, set×set — with selectivities varied enough that either
    clause ends up the rarer (probe) side."""
    kind = draw(st.sampled_from(["rr", "rs", "ss"]))
    if kind == "rr":
        return Predicate([draw(range_clauses(attribute="a1")),
                          draw(range_clauses(attribute="a2"))])
    if kind == "rs":
        set_clause = draw(set_predicates()).clauses[0]
        return Predicate([draw(range_clauses(attribute="a1"
                                             if set_clause.attribute != "a1"
                                             else "a2")),
                          set_clause])
    ac = draw(st.sets(st.sampled_from(AC_POOL + AC_ABSENT), min_size=1,
                      max_size=4))
    ad = draw(st.sets(st.sampled_from(AD_POOL + ["w"]), min_size=1,
                      max_size=2))
    return Predicate([SetClause("ac", sorted(ac)),
                      SetClause("ad", sorted(ad))])


class TestDiscreteBucketTier:
    @settings(max_examples=25, deadline=None)
    @given(predicates=st.lists(set_predicates(), max_size=10))
    def test_gather_tier_avg(self, predicates):
        assert_scoring_paths_agree(build_problem(Avg()), predicates)

    @settings(max_examples=25, deadline=None)
    @given(predicates=st.lists(set_predicates(), max_size=10))
    def test_bucket_tier_integer_sum(self, predicates):
        assert_scoring_paths_agree(
            build_problem(Sum(), integer_values=True), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(set_predicates(), max_size=8),
           cardinality=st.integers(1, 12))
    def test_random_cardinalities(self, predicates, cardinality):
        assert_scoring_paths_agree(
            build_problem(Avg(), cardinality=cardinality), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(set_predicates(), max_size=8))
    def test_one_row_group(self, predicates):
        assert_scoring_paths_agree(
            build_problem(Avg(), one_row_group=True), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(set_predicates(), max_size=8))
    def test_stddev_states(self, predicates):
        assert_scoring_paths_agree(build_problem(StdDev()), predicates)

    def test_globally_empty_buckets_score_zero(self):
        nothing = Predicate([SetClause("ac", AC_ABSENT)])
        values = assert_scoring_paths_agree(build_problem(Avg()), [nothing])
        assert values[0] == 0.0

    def test_set_tier_routes_and_counts(self):
        scorer = InfluenceScorer(build_problem(Sum(), integer_values=True),
                                 cache_scores=False)
        scorer.score_batch([Predicate([SetClause("ac", [AC_POOL[0]])]),
                            Predicate([SetClause("ad", ["x", "y"])])])
        assert scorer.stats.indexed_sets == 2
        assert scorer.stats.indexed_predicates == 2
        assert scorer.stats.masked_predicates == 0
        index = scorer.planner.index
        assert index.bucket_tier_groups("ac") == 3  # exact bucket tier

    def test_gather_tier_for_float_states(self):
        scorer = InfluenceScorer(build_problem(Avg()), cache_scores=False)
        scorer.prepare_index(["ac"])
        assert scorer.planner.index.bucket_tier_groups("ac") == 0


class TestConjunctionTier:
    @settings(max_examples=25, deadline=None)
    @given(predicates=st.lists(conjunction_predicates(), max_size=8))
    def test_all_pairings_avg(self, predicates):
        assert_scoring_paths_agree(build_problem(Avg()), predicates)

    @settings(max_examples=20, deadline=None)
    @given(predicates=st.lists(conjunction_predicates(), max_size=8))
    def test_all_pairings_integer_sum(self, predicates):
        assert_scoring_paths_agree(
            build_problem(Sum(), integer_values=True), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(conjunction_predicates(), max_size=6))
    def test_nan_bearing_other_side(self, predicates):
        assert_scoring_paths_agree(
            build_problem(Avg(), nan_rate=0.3), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(conjunction_predicates(), max_size=6))
    def test_one_row_group(self, predicates):
        assert_scoring_paths_agree(
            build_problem(Avg(), one_row_group=True), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(conjunction_predicates(), max_size=6))
    def test_ignore_holdouts(self, predicates):
        assert_scoring_paths_agree(build_problem(Avg()), predicates,
                                   ignore_holdouts=True)

    @pytest.mark.parametrize("narrow_side", ["range", "set"])
    def test_either_side_probes(self, narrow_side):
        """The planner must pick whichever clause matches fewer rows;
        both orientations must score identically to scalar."""
        problem = build_problem(Avg(), cardinality=12, seed=3)
        if narrow_side == "range":
            predicate = Predicate([RangeClause("a1", 2.0, 2.0),
                                   SetClause("ac", AC_POOL)])
        else:
            predicate = Predicate([RangeClause("a1", -10.0, 100.0),
                                   SetClause("ac", [AC_POOL[0]])])
        # force_index_model pins the plan-vs-mask choice: on a fixture
        # this small the real cost model may price the probe out.
        scorer = InfluenceScorer(problem, cache_scores=False,
                                 cost_model=force_index_model())
        plan = scorer.planner.plan_conjunction(predicate)
        assert plan is not None
        if narrow_side == "range":
            assert isinstance(plan.probe, RangeClause)
        else:
            assert isinstance(plan.probe, SetClause)
        assert_scoring_paths_agree(problem, [predicate])

    def test_unselective_conjunction_prefers_mask_kernel(self):
        """When even the rarer clause covers most of the labeled rows,
        probing cannot beat the mask kernel's amortized batch scan — the
        planner must fall back (and still score identically)."""
        problem = build_problem(Avg())
        predicate = Predicate([RangeClause("a1", -10.0, 100.0),
                               SetClause("ac", AC_POOL)])
        scorer = InfluenceScorer(problem, cache_scores=False)
        assert scorer.planner.plan_conjunction(predicate) is None
        values = scorer.score_batch([predicate])
        assert scorer.stats.conjunction_fallbacks == 1
        assert scorer.stats.masked_predicates == 1
        np.testing.assert_array_equal(
            values, assert_scoring_paths_agree(problem, [predicate]))

    def test_probe_estimate_is_exact(self):
        problem = build_problem(Avg(), seed=5)
        scorer = InfluenceScorer(problem, cache_scores=False)
        clause = RangeClause("a1", 1.0, 4.0)
        estimate = scorer.planner.index.estimate_clause_count(clause)
        a1 = np.concatenate([
            problem.table.values("a1")[r.indices]
            for r in problem.outlier_results + problem.holdout_results
        ])
        assert estimate == int(np.count_nonzero(clause.mask_values(a1)))


class TestWorkersTwo:
    """The acceptance bar: every tier bit-for-bit equal to scalar under
    the oracle at workers ∈ {1, 2} (serial legs run in every oracle
    call; these add the pooled leg)."""

    def test_mixed_tiers_parallel(self):
        batch = (
            [Predicate([RangeClause("a1", float(i), float(i + 3))])
             for i in range(8)]
            + [Predicate([SetClause("ac", [AC_POOL[i], "zz"])])
               for i in range(4)]
            + [Predicate([RangeClause("a1", float(i), float(i + 4)),
                          SetClause("ac", AC_POOL[i:i + 3])])
               for i in range(6)]
            + [Predicate.true()]
        )
        assert_scoring_paths_agree(build_problem(Avg()), batch,
                                   workers=2, batch_chunk=4,
                                   expect_pool=True)

    def test_bucket_tier_parallel_integer_sum(self):
        batch = [Predicate([SetClause("ac", AC_POOL[i:i + 2])])
                 for i in range(10)]
        assert_scoring_paths_agree(
            build_problem(Sum(), integer_values=True), batch,
            workers=2, batch_chunk=4, expect_pool=True)


class TestPlannerFallback:
    """Satellite regression: a conjunction referencing an attribute
    with no prepared index view must fall back to the mask kernel with
    a recorded counter — never crash."""

    def conjunction(self) -> Predicate:
        return Predicate([RangeClause("a1", 1.0, 5.0),
                          SetClause("ac", [AC_POOL[0], AC_POOL[1]])])

    def test_planner_without_codes_falls_back(self):
        problem = build_problem(Avg())
        scorer = InfluenceScorer(problem, cache_scores=False)
        index = scorer.planner.index
        # An index built without discrete codes (e.g. a caller wiring
        # PrefixAggregateIndex directly): the set side has no view.
        sparse = PrefixAggregateIndex(
            {attr: index._values[attr] for attr in index._values},
            index.group_slices,
            index._states,
        )
        planner = IndexPlanner(sparse)
        assert planner.plan_conjunction(self.conjunction()) is None
        route = planner.partition([self.conjunction()])
        assert route.masked == [self.conjunction()]
        assert route.conjunction_fallbacks == 1
        assert route.indexed_total == 0

    def test_scorer_falls_back_and_still_scores(self):
        problem = build_problem(Avg())
        reference = assert_scoring_paths_agree(problem, [self.conjunction()])
        scorer = InfluenceScorer(problem, cache_scores=False)
        # Strip one attribute's raw arrays out of the live index — the
        # regression shape: planner must route around the missing view.
        scorer.planner.index._codes.pop("ac")
        values = scorer.score_batch([self.conjunction()])
        np.testing.assert_array_equal(values, reference)
        assert scorer.stats.conjunction_fallbacks == 1
        assert scorer.stats.masked_predicates == 1
        assert scorer.stats.indexed_conjunctions == 0

    def test_set_clause_without_codes_falls_back(self):
        problem = build_problem(Avg())
        scorer = InfluenceScorer(problem, cache_scores=False)
        scorer.planner.index._codes.pop("ac")
        predicate = Predicate([SetClause("ac", [AC_POOL[0]])])
        expected = InfluenceScorer(problem, cache_scores=False,
                                   use_index=False).score(predicate)
        assert scorer.score_batch([predicate])[0] == expected
        assert scorer.stats.indexed_sets == 0
        assert scorer.stats.masked_predicates == 1

    def test_missing_attribute_errors_are_typed(self):
        problem = build_problem(Avg())
        index = InfluenceScorer(problem, cache_scores=False).planner.index
        with pytest.raises(PredicateError):
            index.ensure_discrete("nope")
        with pytest.raises(PredicateError):
            index.translate("nope", ["x"])
        with pytest.raises(PredicateError):
            index.n_codes("nope")
        with pytest.raises(PredicateError):
            index.estimate_clause_count(object())
        with pytest.raises(PredicateError):
            index.install_discrete_attribute("nope", [])
        with pytest.raises(PredicateError):
            index.install_discrete_attribute("ac", [])  # wrong group count
        assert not index.supports_clause(object())

    def test_codes_require_code_tables(self):
        problem = build_problem(Avg())
        index = InfluenceScorer(problem, cache_scores=False).planner.index
        with pytest.raises(PredicateError):
            PrefixAggregateIndex(
                {attr: index._values[attr] for attr in index._values},
                index.group_slices, index._states,
                codes_by_attr={"ac": index._codes["ac"]})


class TestGroupDiscreteIndex:
    """Bucket membership and removed states vs the mask reference."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_matches_mask_semantics(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        n = data.draw(st.integers(1, 60))
        n_codes = data.draw(st.integers(1, 8))
        codes = rng.integers(0, n_codes, size=n).astype(np.int64)
        states = np.column_stack([rng.normal(size=n), np.ones(n)])
        wanted = np.asarray(sorted(data.draw(st.sets(
            st.integers(0, n_codes - 1), max_size=n_codes))), dtype=np.int64)

        index = GroupDiscreteIndex(codes, n_codes, states, exact=False)
        mask = np.isin(codes, wanted)
        rows = index.rows_for_codes(wanted)
        assert sorted(rows) == list(np.flatnonzero(mask))
        assert int(index.bucket_counts[wanted].sum()) == \
            int(np.count_nonzero(mask))

    def test_bucket_tier_states_are_exact(self):
        rng = np.random.default_rng(7)
        codes = rng.integers(0, 5, size=200).astype(np.int64)
        states = np.column_stack([
            rng.integers(0, 1000, size=200).astype(np.float64),
            np.ones(200),
        ])
        index = GroupDiscreteIndex(codes, 5, states, exact=True)
        assert index.uses_buckets
        for c in range(5):
            np.testing.assert_array_equal(
                index.bucket_states[c], states[codes == c].sum(axis=0))

    def test_from_arrays_round_trip(self):
        codes = np.asarray([2, 0, 1, 0, 2], dtype=np.int64)
        states = np.ones((5, 2))
        built = GroupDiscreteIndex(codes, 3, states, exact=True)
        adopted = GroupDiscreteIndex.from_arrays(
            built.order, built.offsets, built.bucket_states)
        np.testing.assert_array_equal(adopted.order, built.order)
        assert adopted.n_codes == 3
        assert adopted.uses_buckets


class TestConjunctionPlanShape:
    def test_plan_is_picklable(self):
        import pickle

        plan = ConjunctionPlan(RangeClause("a1", 0.0, 1.0),
                               SetClause("ac", ["c0"]), probe_count=7)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.probe == plan.probe
        assert clone.other == plan.other
        assert clone.probe_count == 7
