"""Unit tests for filter-based feature selection (paper Section 6.4)."""

import numpy as np
import pytest

from repro.errors import PartitionerError
from repro.featsel import (
    attribute_relevance,
    mutual_information,
    pearson_correlation,
    select_attributes,
)
from repro.core.problem import ScorpionQuery
from repro.query.groupby import GroupByQuery
from repro.aggregates import Avg
from repro.table import ColumnKind, ColumnSpec, Schema, Table


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_is_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PartitionerError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_single_point_zero(self):
        assert pearson_correlation(np.asarray([1.0]), np.asarray([2.0])) == 0.0


class TestMutualInformation:
    def test_informative_labels(self):
        y = np.concatenate([np.zeros(50), np.ones(50) * 10])
        labels = ["lo"] * 50 + ["hi"] * 50
        assert mutual_information(labels, y) > 0.9

    def test_uninformative_labels(self):
        rng = np.random.default_rng(0)
        y = rng.normal(0, 1, 400)
        labels = rng.choice(["a", "b"], 400).tolist()
        assert mutual_information(labels, y) < 0.1

    def test_constant_values_zero(self):
        assert mutual_information(["a", "b"], np.ones(2)) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(PartitionerError):
            mutual_information(["a"], np.ones(2))


def relevance_problem(seed=0):
    """Influence driven by x and by the sensor id; noise dims irrelevant."""
    rng = np.random.default_rng(seed)
    n_groups, per_group = 4, 250
    n = n_groups * per_group
    groups = np.repeat([f"g{i}" for i in range(n_groups)], per_group)
    x = rng.uniform(0, 100, n)
    noise = rng.uniform(0, 100, n)
    sensor = rng.choice(["s1", "s2", "s3"], n)
    value = rng.normal(10, 1, n)
    hot = np.isin(groups, ["g0", "g1"]) & (x > 60) & (sensor == "s2")
    value[hot] += 50
    table = Table.from_columns(
        Schema([ColumnSpec("g", ColumnKind.DISCRETE),
                ColumnSpec("x", ColumnKind.CONTINUOUS),
                ColumnSpec("noise", ColumnKind.CONTINUOUS),
                ColumnSpec("sensor", ColumnKind.DISCRETE),
                ColumnSpec("v", ColumnKind.CONTINUOUS)]),
        {"g": groups, "x": x, "noise": noise, "sensor": sensor, "v": value})
    return ScorpionQuery(table, GroupByQuery("g", Avg(), "v"),
                         outliers=["g0", "g1"], holdouts=["g2", "g3"])


class TestAttributeRelevance:
    def test_signal_beats_noise(self):
        relevance = attribute_relevance(relevance_problem())
        assert relevance["x"] > relevance["noise"]
        assert relevance["sensor"] > 0.01

    def test_all_attributes_scored(self):
        relevance = attribute_relevance(relevance_problem())
        assert set(relevance) == {"x", "noise", "sensor"}

    def test_scores_bounded(self):
        relevance = attribute_relevance(relevance_problem())
        assert all(0.0 <= score <= 1.0 + 1e-9 for score in relevance.values())


class TestSelectAttributes:
    def test_drops_noise(self):
        selected = select_attributes(relevance_problem(), threshold=0.05)
        assert "noise" not in selected or len(selected) == 3

    def test_min_keep(self):
        selected = select_attributes(relevance_problem(), threshold=10.0,
                                     min_keep=2)
        assert len(selected) == 2

    def test_bad_min_keep_rejected(self):
        with pytest.raises(PartitionerError):
            select_attributes(relevance_problem(), min_keep=0)

    def test_selected_usable_as_problem_attributes(self):
        problem = relevance_problem()
        selected = select_attributes(problem, threshold=0.05)
        narrowed = ScorpionQuery(problem.raw_table, problem.query,
                                 outliers=problem.outlier_keys,
                                 holdouts=problem.holdout_keys,
                                 attributes=selected)
        assert set(narrowed.attributes) == set(selected)
