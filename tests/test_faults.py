"""Unit tests for the deterministic fault-injection registry.

Covers the ``SCORPION_FAULTS`` grammar (actions, args, hit schedules,
modifiers, every rejection path), schedule semantics (Nth hit, lists,
ranges, open ranges, seeded Bernoulli determinism), the ``~g``
generation filter against ``SCORPION_POOL_GENERATION``, programmatic
arming (install / clear / context-managed restore), per-point
hit/fire accounting, and the disabled fast path.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro.faults.registry as registry_mod
from repro.faults import (
    FaultError,
    FaultRegistry,
    FaultSpec,
    InjectedFault,
    clear_faults,
    fault_injection,
    fault_point,
    fault_stats,
    faults_enabled,
    install_faults,
    parse_faults,
    pool_generation,
)
from repro.faults.registry import GENERATION_ENV


@pytest.fixture(autouse=True)
def _preserve_ambient_registry():
    """Save/restore whatever schedule the process was armed with (the CI
    chaos leg arms one via the environment) so these tests can install
    and clear schedules freely."""
    previous = registry_mod._REGISTRY
    try:
        yield
    finally:
        registry_mod._REGISTRY = previous


class TestGrammar:
    def test_single_spec(self):
        (spec,) = parse_faults("worker.shard:crash@2")
        assert spec == FaultSpec(point="worker.shard", action="crash",
                                 hits=frozenset({2}))

    def test_multi_spec_with_blanks(self):
        specs = parse_faults("worker.shard:crash@2; ;shm.attach:oserror@1;")
        assert [s.point for s in specs] == ["worker.shard", "shm.attach"]
        assert [s.action for s in specs] == ["crash", "oserror"]

    def test_arg_and_defaults(self):
        (hang,) = parse_faults("serve.read:hang=0.25")
        assert hang.arg == 0.25
        (exit_spec,) = parse_faults("worker.shard:exit=3@1")
        assert exit_spec.arg == 3.0
        (bare,) = parse_faults("index.build:memerror")
        assert bare.arg is None and bare.hits is None \
            and bare.probability is None

    def test_hit_list_and_ranges(self):
        (listed,) = parse_faults("p:crash@2,5")
        assert listed.hits == frozenset({2, 5})
        (ranged,) = parse_faults("p:crash@2..4")
        assert (ranged.hits_from, ranged.hits_to) == (2, 4)
        (open_ranged,) = parse_faults("p:crash@2..")
        assert (open_ranged.hits_from, open_ranged.hits_to) == (2, None)

    def test_probability_and_mods(self):
        (spec,) = parse_faults("p:crash@p0.3~s42,g2")
        assert spec.probability == 0.3
        assert spec.seed == 42
        assert spec.max_generation == 2

    @pytest.mark.parametrize("raw", [
        "no-colon",                 # missing point:action
        ":crash@1",                 # empty point
        "p:frobnicate@1",           # unknown action
        "p:crash@zero",             # non-numeric hit
        "p:crash@0",                # hits are 1-based
        "p:crash@4..2",             # inverted range
        "p:crash@pnope",            # bad probability literal
        "p:crash@p1.5",             # probability out of [0, 1]
        "p:crash@1~z9",             # unknown modifier
        "p:crash@1~sx",             # non-numeric seed
    ])
    def test_rejections(self, raw):
        with pytest.raises(FaultError):
            parse_faults(raw)


def _fires(spec: FaultSpec, hits: int) -> list[int]:
    """Drive one armed registry ``hits`` times; return the 1-based hit
    numbers on which it fired (``crash`` specs only)."""
    reg = FaultRegistry([spec])
    fired = []
    for hit in range(1, hits + 1):
        try:
            reg.hit(spec.point)
        except InjectedFault:
            fired.append(hit)
    return fired


class TestSchedules:
    def test_nth_hit(self):
        spec = parse_faults("p:crash@3")[0]
        assert _fires(spec, 5) == [3]

    def test_hit_list(self):
        spec = parse_faults("p:crash@1,4")[0]
        assert _fires(spec, 5) == [1, 4]

    def test_closed_range(self):
        spec = parse_faults("p:crash@2..4")[0]
        assert _fires(spec, 6) == [2, 3, 4]

    def test_open_range(self):
        spec = parse_faults("p:crash@3..")[0]
        assert _fires(spec, 6) == [3, 4, 5, 6]

    def test_no_schedule_fires_every_hit(self):
        spec = parse_faults("p:crash")[0]
        assert _fires(spec, 3) == [1, 2, 3]

    def test_bernoulli_is_deterministic_per_seed(self):
        spec = parse_faults("p:crash@p0.5~s7")[0]
        first = _fires(spec, 40)
        assert _fires(spec, 40) == first          # same seed, same flips
        assert 0 < len(first) < 40                # actually probabilistic
        reseeded = parse_faults("p:crash@p0.5~s8")[0]
        assert _fires(reseeded, 40) != first      # seed changes the stream

    def test_bernoulli_stream_is_keyed_by_point(self):
        a = parse_faults("alpha:crash@p0.5~s7")[0]
        b = parse_faults("beta:crash@p0.5~s7")[0]
        fired_a = _fires(a, 40)
        fired_b = FaultRegistry([b])
        got_b = []
        for hit in range(1, 41):
            try:
                fired_b.hit("beta")
            except InjectedFault:
                got_b.append(hit)
        assert got_b != fired_a

    def test_actions_raise_the_right_types(self):
        with pytest.raises(OSError):
            FaultRegistry(parse_faults("p:oserror@1")).hit("p")
        with pytest.raises(MemoryError):
            FaultRegistry(parse_faults("p:memerror@1")).hit("p")
        with pytest.raises(InjectedFault):
            FaultRegistry(parse_faults("p:crash@1")).hit("p")

    def test_hang_sleeps_its_arg(self, monkeypatch):
        slept = []
        monkeypatch.setattr(registry_mod.time, "sleep", slept.append)
        FaultRegistry(parse_faults("p:hang=1.5@1")).hit("p")
        assert slept == [1.5]


class TestGenerationFilter:
    def test_fires_only_below_max_generation(self, monkeypatch):
        spec = parse_faults("p:crash@1..~g1")[0]
        monkeypatch.setenv(GENERATION_ENV, "0")
        assert pool_generation() == 0
        assert _fires(spec, 2) == [1, 2]
        monkeypatch.setenv(GENERATION_ENV, "1")
        assert pool_generation() == 1
        assert _fires(spec, 2) == []

    def test_garbage_generation_reads_as_zero(self, monkeypatch):
        monkeypatch.setenv(GENERATION_ENV, "not-an-int")
        assert pool_generation() == 0
        monkeypatch.delenv(GENERATION_ENV)
        assert pool_generation() == 0


class TestArming:
    def test_disabled_fast_path(self):
        clear_faults()
        assert not faults_enabled()
        assert fault_stats() == {}
        fault_point("anything")  # must be a no-op, not a KeyError

    def test_install_and_clear(self):
        install_faults("p:crash@1")
        assert faults_enabled()
        with pytest.raises(InjectedFault):
            fault_point("p")
        clear_faults()
        fault_point("p")  # disarmed: silent

    def test_context_restores_previous_registry(self):
        ambient = install_faults("outer:crash@1")
        with fault_injection("inner:oserror@1"):
            with pytest.raises(OSError):
                fault_point("inner")
            fault_point("outer")  # ambient schedule replaced, not merged
        assert registry_mod._REGISTRY is ambient
        with pytest.raises(InjectedFault):
            fault_point("outer")

    def test_context_restores_disabled_state(self):
        clear_faults()
        with fault_injection("p:crash@1"):
            assert faults_enabled()
        assert not faults_enabled()

    def test_stats_count_hits_and_fires(self):
        with fault_injection("p:crash@2;q:oserror@1"):
            fault_point("p")
            with pytest.raises(InjectedFault):
                fault_point("p")
            fault_point("p")  # past its hit: counted, not fired
            assert fault_stats() == {
                "p": {"hits": 3, "fired": 1},
                "q": {"hits": 0, "fired": 0},
            }

    def test_unarmed_points_still_counted(self):
        with fault_injection("p:crash@99"):
            fault_point("unrelated")
            assert fault_stats()["unrelated"] == {"hits": 1, "fired": 0}

    def test_env_arms_a_fresh_process(self):
        """The spawn-worker path: a process started with
        ``SCORPION_FAULTS`` set arms itself at import."""
        code = (
            "from repro.faults import faults_enabled, fault_point, "
            "InjectedFault\n"
            "assert faults_enabled()\n"
            "try:\n"
            "    fault_point('p')\n"
            "except InjectedFault:\n"
            "    raise SystemExit(0)\n"
            "raise SystemExit(1)\n")
        env = dict(os.environ, SCORPION_FAULTS="p:crash@1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              cwd=os.path.dirname(os.path.dirname(
                                  os.path.abspath(__file__))),
                              timeout=60)
        assert proc.returncode == 0
