"""Unit tests for repro.table.table."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.table import ColumnKind, ColumnSpec, Schema, Table

SCHEMA = Schema([
    ColumnSpec("g", ColumnKind.DISCRETE),
    ColumnSpec("x", ColumnKind.CONTINUOUS),
])
ROWS = [("a", 1.0), ("b", 2.0), ("a", 3.0), ("c", 4.0)]


def small() -> Table:
    return Table.from_rows(SCHEMA, ROWS)


class TestConstruction:
    def test_from_rows(self):
        table = small()
        assert len(table) == 4
        assert table.num_columns == 2

    def test_from_rows_wrong_width_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows(SCHEMA, [("a", 1.0, 9)])

    def test_from_columns(self):
        table = Table.from_columns(SCHEMA, {"g": ["a"], "x": [1.0]})
        assert table.row(0) == {"g": "a", "x": 1.0}

    def test_from_columns_missing_rejected(self):
        with pytest.raises(SchemaError, match="missing"):
            Table.from_columns(SCHEMA, {"g": ["a"]})

    def test_from_columns_extra_rejected(self):
        with pytest.raises(SchemaError, match="unknown"):
            Table.from_columns(SCHEMA, {"g": ["a"], "x": [1.0], "y": [2]})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns(SCHEMA, {"g": ["a", "b"], "x": [1.0]})

    def test_empty(self):
        table = Table.empty(SCHEMA)
        assert len(table) == 0
        assert table.schema == SCHEMA

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table([])


class TestAccess:
    def test_column_and_values(self):
        assert small().values("x").tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            small().column("zz")

    def test_row_negative_index(self):
        assert small().row(-1) == {"g": "c", "x": 4.0}

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            small().row(4)

    def test_iter_rows(self):
        rows = list(small().iter_rows())
        assert rows[2] == {"g": "a", "x": 3.0}

    def test_equality(self):
        assert small() == small()
        assert small() != small().take([0, 1, 2])


class TestRelationalOps:
    def test_filter(self):
        mask = np.asarray([True, False, True, False])
        assert small().filter(mask).values("x").tolist() == [1.0, 3.0]

    def test_filter_wrong_shape_rejected(self):
        with pytest.raises(SchemaError):
            small().filter(np.asarray([True]))

    def test_take_preserves_order(self):
        taken = small().take([3, 0])
        assert taken.values("x").tolist() == [4.0, 1.0]

    def test_take_allows_duplicates(self):
        assert len(small().take([0, 0, 0])) == 3

    def test_project(self):
        projected = small().project(["x"])
        assert projected.schema.names == ("x",)

    def test_concat(self):
        doubled = small().concat(small())
        assert len(doubled) == 8

    def test_concat_schema_mismatch_rejected(self):
        other = Table.from_columns(Schema([ColumnSpec("g", ColumnKind.DISCRETE)]),
                                   {"g": ["z"]})
        with pytest.raises(SchemaError):
            small().concat(other)


class TestGrouping:
    def test_group_indices_single_key(self):
        groups = small().group_indices("g")
        assert set(groups) == {("a",), ("b",), ("c",)}
        assert groups[("a",)].tolist() == [0, 2]

    def test_group_indices_multi_key(self):
        schema = Schema([
            ColumnSpec("a", ColumnKind.DISCRETE),
            ColumnSpec("b", ColumnKind.DISCRETE),
        ])
        table = Table.from_rows(schema, [("x", 1), ("x", 2), ("x", 1)])
        groups = table.group_indices(["a", "b"])
        assert groups[("x", 1)].tolist() == [0, 2]

    def test_group_indices_cover_all_rows(self):
        groups = small().group_indices("g")
        total = sum(len(ix) for ix in groups.values())
        assert total == len(small())

    def test_group_indices_empty_by_rejected(self):
        with pytest.raises(SchemaError):
            small().group_indices([])


class TestDisplay:
    def test_to_string_contains_header_and_rows(self):
        rendered = small().to_string()
        assert "g" in rendered and "x" in rendered
        assert "a" in rendered

    def test_to_string_truncates(self):
        rendered = small().to_string(max_rows=2)
        assert "more rows" in rendered
