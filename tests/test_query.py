"""Unit tests for the group-by engine, result sets, and provenance."""

import numpy as np
import pytest

from repro.aggregates import Avg, StdDev, Sum
from repro.errors import QueryError
from repro.query.groupby import GroupByQuery
from repro.query.provenance import Provenance
from repro.query.result import AggregateResult, ResultSet
from repro.table import ColumnKind, ColumnSpec, Schema, Table


class TestGroupByQuery:
    def test_q1_results_match_paper(self, sensors_table, q1):
        results = q1.execute(sensors_table)
        assert results.by_key("11AM").value == pytest.approx(34.667, abs=1e-3)
        assert results.by_key("12PM").value == pytest.approx(56.667, abs=1e-3)
        assert results.by_key("1PM").value == pytest.approx(50.0)

    def test_provenance_indices(self, sensors_table, q1):
        results = q1.execute(sensors_table)
        assert results.by_key("12PM").indices.tolist() == [3, 4, 5]

    def test_group_sizes(self, sensors_table, q1):
        for result in q1.execute(sensors_table):
            assert result.group_size == 3

    def test_multi_column_group_by(self, sensors_table):
        query = GroupByQuery(["time", "sensorid"], Avg(), "temp")
        results = query.execute(sensors_table)
        assert len(results) == 9

    def test_where_filters_before_grouping(self, sensors_table):
        query = GroupByQuery(
            "time", Avg(), "temp",
            where=lambda t: t.column("sensorid").membership_mask([1, 2]))
        results = query.execute(sensors_table)
        assert results.by_key("12PM").value == pytest.approx(35.0)

    def test_where_provenance_refers_to_filtered_table(self, sensors_table):
        query = GroupByQuery(
            "time", Avg(), "temp",
            where=lambda t: t.column("sensorid").membership_mask([3]))
        filtered = query.filtered(sensors_table)
        results = query.execute(sensors_table)
        for result in results:
            assert int(np.max(result.indices)) < len(filtered)

    def test_rest_attributes(self, sensors_table, q1):
        rest = q1.rest_attributes(sensors_table)
        assert set(rest) == {"sensorid", "voltage", "humidity"}

    def test_rest_attributes_with_ignore(self, sensors_table, q1):
        rest = q1.rest_attributes(sensors_table, ignore=["humidity"])
        assert set(rest) == {"sensorid", "voltage"}

    def test_agg_column_in_group_by_rejected(self):
        with pytest.raises(QueryError):
            GroupByQuery("temp", Avg(), "temp")

    def test_empty_group_by_rejected(self):
        with pytest.raises(QueryError):
            GroupByQuery([], Avg(), "temp")

    def test_non_aggregate_rejected(self):
        with pytest.raises(QueryError):
            GroupByQuery("time", "avg", "temp")

    def test_discrete_agg_column_rejected(self, sensors_table):
        query = GroupByQuery("time", Avg(), "sensorid")
        with pytest.raises(QueryError):
            query.execute(sensors_table)

    def test_stddev_query(self, sensors_table):
        query = GroupByQuery("time", StdDev(), "temp")
        results = query.execute(sensors_table)
        assert results.by_key("11AM").value == pytest.approx(
            float(np.std([34.0, 35.0, 35.0])))


class TestResultSet:
    def _results(self) -> ResultSet:
        return ResultSet(
            [AggregateResult(("b",), 2.0, np.asarray([1])),
             AggregateResult(("a",), 1.0, np.asarray([0]))],
            group_by=("g",), aggregate_name="sum", aggregate_column="v")

    def test_sorted_by_key(self):
        assert self._results().keys() == [("a",), ("b",)]

    def test_by_key_scalar_wrapping(self):
        assert self._results().by_key("a").value == 1.0

    def test_by_key_missing(self):
        with pytest.raises(QueryError):
            self._results().by_key("zz")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(QueryError):
            ResultSet([AggregateResult(("a",), 1.0, np.asarray([0])),
                       AggregateResult(("a",), 2.0, np.asarray([1]))],
                      ("g",), "sum", "v")

    def test_values_array(self):
        np.testing.assert_array_equal(self._results().values(), [1.0, 2.0])

    def test_to_string(self):
        rendered = self._results().to_string()
        assert "sum(v)" in rendered and "a" in rendered

    def test_mixed_key_types_sortable(self):
        results = ResultSet(
            [AggregateResult((1,), 1.0, np.asarray([0])),
             AggregateResult(("a",), 2.0, np.asarray([1]))],
            ("g",), "sum", "v")
        assert len(results.keys()) == 2


class TestProvenance:
    def test_resolve_by_key(self, sensors_table, q1):
        results = q1.execute(sensors_table)
        prov = Provenance(q1.filtered(sensors_table), results)
        resolved = prov.resolve(["12PM", ("1PM",)])
        assert [r.key for r in resolved] == [("12PM",), ("1PM",)]

    def test_resolve_by_result_object(self, sensors_table, q1):
        results = q1.execute(sensors_table)
        prov = Provenance(q1.filtered(sensors_table), results)
        resolved = prov.resolve([results.by_key("11AM")])
        assert resolved[0].key == ("11AM",)

    def test_union_input_group_dedupes(self, sensors_table, q1):
        results = q1.execute(sensors_table)
        prov = Provenance(q1.filtered(sensors_table), results)
        both = prov.resolve(["12PM", "1PM"])
        union = prov.union_input_group(both)
        assert union.tolist() == [3, 4, 5, 6, 7, 8]

    def test_union_empty(self, sensors_table, q1):
        results = q1.execute(sensors_table)
        prov = Provenance(q1.filtered(sensors_table), results)
        assert len(prov.union_input_group([])) == 0

    def test_input_rows_materialization(self, sensors_table, q1):
        results = q1.execute(sensors_table)
        prov = Provenance(q1.filtered(sensors_table), results)
        rows = prov.input_rows(results.by_key("12PM"))
        assert len(rows) == 3
        assert rows.values("temp").tolist() == [35.0, 35.0, 100.0]

    def test_out_of_range_indices_rejected(self, sensors_table, q1):
        results = q1.execute(sensors_table)
        tiny = sensors_table.take([0, 1])
        with pytest.raises(QueryError):
            Provenance(tiny, results)
