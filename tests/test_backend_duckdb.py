"""Live DuckDB pushdown backend: the differential oracle against the
numpy reference engine.

The whole module skips when the ``duckdb`` package is not installed
(the dedicated CI job installs it); the engine-free halves of the
backend — resolution, SQL generation, the numpy reference, graceful
degradation — are covered unconditionally in ``test_backend.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

duckdb = pytest.importorskip("duckdb")

from repro.backend import DuckDBBackend, NumpyBackend, resolve_backend
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.query.groupby import GroupByQuery
from repro.query.sql import Condition, parse_query
from repro.aggregates import Sum
from repro.table import ColumnKind, ColumnSpec, Schema, Table

from tests.conftest import planted_sum_table


@pytest.fixture
def backend():
    b = DuckDBBackend()
    yield b
    b.close()


@pytest.fixture
def reference():
    return NumpyBackend()


def _sum_problem(n_per_group=40):
    table, outliers, holdouts = planted_sum_table(n_per_group=n_per_group)
    return ScorpionQuery(
        table=table, query=GroupByQuery("g", Sum(), "value"),
        outliers=outliers, holdouts=holdouts, error_vectors=+1.0, c=0.5)


class TestResolution:
    def test_duckdb_resolves_live(self):
        backend = resolve_backend("duckdb")
        assert isinstance(backend, DuckDBBackend)
        assert backend.name == "duckdb"


class TestGroupTotalStates:
    def test_exact_states_bit_equal_and_routed(self, backend, reference):
        rng = np.random.default_rng(3)
        groups = [
            np.column_stack([rng.integers(0, 100, 30).astype(np.float64),
                             np.ones(30)]),
            np.column_stack([rng.integers(-5, 5, 7).astype(np.float64),
                             np.ones(7)]),
            None,
            np.empty((0, 2)),
        ]
        expected = reference.group_total_states(groups)
        got = backend.group_total_states(groups)
        assert got[2] is None
        for e, g in zip(expected, got):
            if e is None:
                continue
            np.testing.assert_array_equal(g, e)
        assert backend.stats.routed_states == 2  # two non-empty exact

    def test_non_exact_states_fall_back(self, backend, reference):
        rng = np.random.default_rng(5)
        groups = [rng.normal(size=(20, 2))]  # non-integer: not exact
        expected = reference.group_total_states(groups)
        got = backend.group_total_states(groups)
        np.testing.assert_array_equal(got[0], expected[0])
        assert backend.stats.routed_states == 0
        assert backend.stats.fallbacks == 1


class TestIndexViews:
    def test_range_view_bit_equal(self, backend, reference):
        rng = np.random.default_rng(7)
        values = rng.uniform(0, 100, 64)
        values[3] = values[40]  # stable-sort tie
        states = np.column_stack([
            rng.integers(0, 50, 64).astype(np.float64), np.ones(64)])
        expected = reference.build_range_view(values, states, True)
        got = backend.build_range_view(values, states, True)
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(g, e)
        assert backend.stats.routed_views == 1

    def test_discrete_view_bit_equal(self, backend, reference):
        rng = np.random.default_rng(9)
        codes = rng.integers(0, 6, 48).astype(np.int64)
        states = np.column_stack([
            rng.integers(0, 50, 48).astype(np.float64), np.ones(48)])
        expected = reference.build_discrete_view(codes, 6, states, True)
        got = backend.build_discrete_view(codes, 6, states, True)
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(g, e)
        assert backend.stats.routed_views == 1

    def test_inexact_view_has_no_prefix(self, backend):
        rng = np.random.default_rng(11)
        values = rng.uniform(0, 1, 16)
        states = rng.normal(size=(16, 2))
        order, sorted_values, prefix = backend.build_range_view(
            values, states, False)
        assert prefix is None
        np.testing.assert_array_equal(sorted_values, np.sort(values))


class TestSqlLayer:
    def test_mask_count_matches(self, backend, reference, sensors_table):
        parsed = parse_query(
            "SELECT avg(temp) FROM sensors "
            "WHERE voltage >= 2.5 AND sensorid != 3 GROUP BY time")
        expected = reference.mask_count(sensors_table, parsed.conditions)
        assert backend.mask_count(sensors_table, parsed.conditions) == \
            expected
        assert backend.stats.routed_queries == 1

    def test_not_equal_excludes_nulls(self, backend, reference):
        schema = Schema([
            ColumnSpec("state", ColumnKind.DISCRETE),
            ColumnSpec("v", ColumnKind.CONTINUOUS),
        ])
        table = Table.from_rows(schema, [
            ("TX", 1.0), (None, 2.0), ("CA", 3.0), (float("nan"), 4.0)])
        conditions = [Condition("state", "!=", "TX")]
        assert reference.mask_count(table, conditions) == 1
        assert backend.mask_count(table, conditions) == 1

    def test_execute_query_bit_equal_on_exact_values(self, backend,
                                                     reference,
                                                     sensors_table):
        # temp values are integer-valued, so even AVG recombination is
        # exact and the strict equality leg of the tolerance contract
        # applies.
        parsed = parse_query(
            "SELECT avg(temp) FROM sensors WHERE sensorid != 3 "
            "GROUP BY time")
        expected = reference.execute_query(sensors_table, parsed)
        got = backend.execute_query(sensors_table, parsed)
        assert set(got) == set(expected)
        for key, value in expected.items():
            assert got[key] == value, key

    def test_execute_query_tolerance_on_float_recombination(self, backend,
                                                            reference):
        # Non-integer values: the engine may sum in a different order
        # than numpy's pairwise reduction — the ONE documented
        # tolerance in the backend contract (rtol ~1e-12).
        rng = np.random.default_rng(13)
        n = 500
        schema = Schema([
            ColumnSpec("g", ColumnKind.DISCRETE),
            ColumnSpec("v", ColumnKind.CONTINUOUS),
        ])
        table = Table.from_columns(schema, {
            "g": np.repeat(["a", "b"], n // 2),
            "v": rng.normal(size=n),
        })
        parsed = parse_query("SELECT stddev(v) FROM t GROUP BY g")
        expected = reference.execute_query(table, parsed)
        got = backend.execute_query(table, parsed)
        assert set(got) == set(expected)
        for key in expected:
            assert got[key] == pytest.approx(expected[key], rel=1e-12)

    def test_nan_condition_column_falls_back(self, backend, reference):
        # DuckDB's NaN ordering differs from numpy's; a condition over a
        # NaN-carrying continuous column must take the reference path.
        schema = Schema([
            ColumnSpec("g", ColumnKind.DISCRETE),
            ColumnSpec("v", ColumnKind.CONTINUOUS),
        ])
        table = Table.from_rows(schema, [
            ("a", 1.0), ("a", float("nan")), ("a", 3.0)])
        conditions = [Condition("v", ">", 0.5)]
        expected = reference.mask_count(table, conditions)
        assert backend.mask_count(table, conditions) == expected == 2
        assert backend.stats.fallbacks == 1
        assert backend.stats.routed_queries == 0

    def test_black_box_aggregate_falls_back(self, backend, reference,
                                            sensors_table):
        parsed = parse_query(
            "SELECT median(temp) FROM sensors GROUP BY time")
        expected = reference.execute_query(sensors_table, parsed)
        got = backend.execute_query(sensors_table, parsed)
        assert got == expected
        assert backend.stats.fallbacks == 1


class TestCube:
    def test_cube_build_bit_equal(self, backend, reference, sensors_table):
        numpy_cube = reference.build_cube(sensors_table,
                                          ("time", "sensorid"),
                                          "avg", "temp")
        duck_cube = backend.build_cube(sensors_table, ("time", "sensorid"),
                                       "avg", "temp")
        assert duck_cube.source == "duckdb"
        assert duck_cube.exact
        assert duck_cube.same_cells(numpy_cube)
        assert backend.stats.routed_cubes == 1

    def test_non_exact_cube_falls_back_to_numpy_build(self, backend):
        rng = np.random.default_rng(17)
        schema = Schema([
            ColumnSpec("g", ColumnKind.DISCRETE),
            ColumnSpec("v", ColumnKind.CONTINUOUS),
        ])
        table = Table.from_columns(schema, {
            "g": np.repeat(["a", "b"], 10),
            "v": rng.normal(size=20),
        })
        cube = backend.build_cube(table, ("g",), "sum", "v")
        assert cube.source == "numpy"
        assert backend.stats.fallbacks == 1


class TestScorerIntegration:
    def test_influences_bit_equal_and_routed(self):
        problem = _sum_problem()
        numpy_scorer = InfluenceScorer(problem, cache_scores=False,
                                       backend="numpy")
        duck_scorer = InfluenceScorer(problem, cache_scores=False,
                                      backend="duckdb")
        attrs = duck_scorer.prepare_index()
        numpy_scorer.prepare_index(attrs)
        # Planted SUM states are integer-valued, so the pushdowns engage.
        assert duck_scorer.stats.backend_routed_states > 0
        assert duck_scorer.stats.backend_routed_views > 0
        for context_n, context_d in zip(numpy_scorer.contexts,
                                        duck_scorer.contexts):
            np.testing.assert_array_equal(context_d.total_state,
                                          context_n.total_state)

    def test_explain_bit_equal(self):
        problem = _sum_problem()
        base = Scorpion(algorithm="dt", backend="numpy").explain(problem)
        pushed = Scorpion(algorithm="dt", backend="duckdb").explain(
            _sum_problem())
        assert [str(e.predicate) for e in pushed.explanations] == \
            [str(e.predicate) for e in base.explanations]
        assert [e.influence for e in pushed.explanations] == \
            [e.influence for e in base.explanations]
        assert pushed.scorer_stats["backend_routed_states"] > 0
