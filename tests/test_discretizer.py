"""Unit tests for the equi-width discretizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PredicateError
from repro.predicates.discretizer import EquiWidthDiscretizer


class TestCells:
    def test_cells_tile_domain(self):
        grid = EquiWidthDiscretizer("a", 0.0, 100.0, 4)
        cells = grid.cells()
        assert len(cells) == 4
        assert cells[0].lo == 0.0 and cells[-1].hi == 100.0

    def test_interior_cells_half_open_last_closed(self):
        grid = EquiWidthDiscretizer("a", 0.0, 10.0, 2)
        first, last = grid.cells()
        assert not first.include_hi
        assert last.include_hi

    def test_cell_index_bounds(self):
        grid = EquiWidthDiscretizer("a", 0.0, 10.0, 2)
        with pytest.raises(PredicateError):
            grid.cell(2)
        with pytest.raises(PredicateError):
            grid.cell(-1)

    def test_degenerate_domain_single_cell(self):
        grid = EquiWidthDiscretizer("a", 5.0, 5.0, 15)
        assert grid.n_bins == 1
        assert grid.cell(0).mask_values(np.asarray([5.0])).tolist() == [True]

    def test_invalid_parameters(self):
        with pytest.raises(PredicateError):
            EquiWidthDiscretizer("a", 0.0, 1.0, 0)
        with pytest.raises(PredicateError):
            EquiWidthDiscretizer("a", 2.0, 1.0, 3)


class TestConsecutiveRanges:
    def test_count_formula(self):
        # The paper: quadratic growth — n(n+1)/2 consecutive ranges.
        grid = EquiWidthDiscretizer("a", 0.0, 1.0, 15)
        assert len(grid.consecutive_ranges()) == 15 * 16 // 2

    def test_includes_full_domain(self):
        grid = EquiWidthDiscretizer("a", 0.0, 30.0, 3)
        spans = [(r.lo, r.hi) for r in grid.consecutive_ranges()]
        assert (0.0, 30.0) in spans

    def test_top_ranges_closed(self):
        grid = EquiWidthDiscretizer("a", 0.0, 30.0, 3)
        for clause in grid.consecutive_ranges():
            assert clause.include_hi == (clause.hi == 30.0)


class TestBinIndex:
    def test_values_land_in_their_cell(self):
        grid = EquiWidthDiscretizer("a", 0.0, 100.0, 10)
        for value in (0.0, 9.99, 10.0, 55.0, 99.9):
            cell = grid.cell(grid.bin_index(value))
            assert cell.mask_values(np.asarray([value]))[0]

    def test_domain_max_lands_in_last_cell(self):
        grid = EquiWidthDiscretizer("a", 0.0, 100.0, 10)
        assert grid.bin_index(100.0) == 9

    def test_out_of_domain_clamped(self):
        grid = EquiWidthDiscretizer("a", 0.0, 100.0, 10)
        assert grid.bin_index(-5.0) == 0
        assert grid.bin_index(150.0) == 9

    @settings(max_examples=100, deadline=None)
    @given(value=st.floats(min_value=0, max_value=100, allow_nan=False),
           n_bins=st.integers(min_value=1, max_value=20))
    def test_bin_index_consistent_with_cells(self, value, n_bins):
        grid = EquiWidthDiscretizer("a", 0.0, 100.0, n_bins)
        cell = grid.cell(grid.bin_index(value))
        assert cell.mask_values(np.asarray([value]))[0]


class TestCellPartitionProperty:
    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.floats(min_value=0, max_value=100,
                                     allow_nan=False), min_size=1, max_size=40),
           n_bins=st.integers(min_value=1, max_value=12))
    def test_cells_partition_every_value(self, values, n_bins):
        grid = EquiWidthDiscretizer("a", 0.0, 100.0, n_bins)
        array = np.asarray(values)
        membership = np.zeros(len(array), dtype=int)
        for cell in grid.cells():
            membership += cell.mask_values(array).astype(int)
        assert (membership == 1).all()
