"""Integration tests: the full pipeline on each workload family, plus
cross-algorithm consistency checks."""

import numpy as np
import pytest

from repro import Scorpion, ScorpionQuery
from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.datasets import (
    ExpensesConfig,
    IntelConfig,
    generate_expenses,
    generate_intel,
    make_synth,
)
from repro.eval import score_predicate
from repro.featsel import select_attributes


class TestSynthPipeline:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_synth(2, "easy", tuples_per_group=400, seed=2)

    def test_dt_finds_cube(self, dataset):
        problem = dataset.scorpion_query(c=0.1)
        result = Scorpion(algorithm="dt").explain(problem)
        stats = score_predicate(result.best.predicate, dataset.table,
                                dataset.truth_outer(),
                                dataset.outlier_row_indices())
        assert stats.f_score > 0.7

    def test_mc_finds_cube(self, dataset):
        problem = dataset.scorpion_query(c=0.1)
        result = Scorpion(algorithm="mc").explain(problem)
        stats = score_predicate(result.best.predicate, dataset.table,
                                dataset.truth_outer(),
                                dataset.outlier_row_indices())
        assert stats.f_score > 0.6

    def test_holdouts_perturbed_less_than_outliers(self, dataset):
        # λ = 0.5 only *caps* hold-out perturbation (Section 3.2): the
        # chosen predicate may remove hold-out rows, but its relative
        # effect on every hold-out must stay below its relative effect
        # on the outliers it is meant to fix.
        problem = dataset.scorpion_query(c=0.1)
        result = Scorpion(algorithm="dt").explain(problem)
        best = result.best

        def relative_change(updated_by_key):
            changes = []
            for key, updated in updated_by_key.items():
                original = problem.results.by_key(key).value
                changes.append(abs(updated - original) / abs(original))
            return changes

        outlier_changes = relative_change(best.updated_outliers)
        holdout_changes = relative_change(best.updated_holdouts)
        assert max(holdout_changes) < min(outlier_changes)

    def test_higher_c_more_selective(self, dataset):
        scorpion = Scorpion(algorithm="dt", use_cache=True)
        coarse = scorpion.explain(dataset.scorpion_query(c=0.0))
        fine = scorpion.explain(dataset.scorpion_query(c=1.0))
        coarse_rows = coarse.best.predicate.mask(dataset.table).sum()
        fine_rows = fine.best.predicate.mask(dataset.table).sum()
        assert fine_rows <= coarse_rows


class TestIntelPipeline:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_intel(IntelConfig(
            workload=1, n_sensors=30, n_hours=20, readings_per_sensor_hour=5,
            failure_start=8, failure_hours=8))

    def test_identifies_failing_sensor(self, dataset):
        problem = dataset.scorpion_query(c=0.5)
        result = Scorpion(algorithm="dt").explain(problem)
        clause = result.best.predicate.clause_for("sensorid")
        assert clause is not None and 15 in clause.values

    def test_f_score_against_failure_rows(self, dataset):
        problem = dataset.scorpion_query(c=0.5)
        result = Scorpion(algorithm="dt").explain(problem)
        stats = score_predicate(result.best.predicate, dataset.table,
                                dataset.failure_mask,
                                dataset.outlier_row_indices())
        assert stats.f_score > 0.9

    def test_feature_selection_keeps_sensorid(self, dataset):
        problem = dataset.scorpion_query(c=0.5)
        selected = select_attributes(problem, threshold=0.02)
        assert "sensorid" in selected

    def test_narrowed_problem_still_solves(self, dataset):
        problem = dataset.scorpion_query(c=0.5)
        selected = select_attributes(problem, threshold=0.02)
        narrowed = ScorpionQuery(
            dataset.table, problem.query,
            outliers=dataset.outlier_keys, holdouts=dataset.holdout_keys,
            error_vectors=+1.0, c=0.5, attributes=selected)
        result = Scorpion(algorithm="dt").explain(narrowed)
        clause = result.best.predicate.clause_for("sensorid")
        assert clause is not None and 15 in clause.values


class TestExpensesPipeline:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_expenses(ExpensesConfig(
            n_days=60, rows_per_day=40, n_recipients=200, n_cities=20,
            n_zips=20, n_outlier_days=4, seed=3))

    def test_auto_selects_mc(self, dataset):
        result = Scorpion().explain(dataset.scorpion_query(c=0.5))
        assert result.algorithm == "mc"

    def test_high_c_finds_media_buys(self, dataset):
        result = Scorpion().explain(dataset.scorpion_query(c=0.8))
        stats = score_predicate(result.best.predicate,
                                dataset.effective_table(),
                                dataset.effective_truth_mask(),
                                dataset.outlier_row_indices())
        assert stats.f_score > 0.8

    def test_predicate_names_the_filing_or_vendor(self, dataset):
        result = Scorpion().explain(dataset.scorpion_query(c=0.8))
        text = str(result.best.predicate)
        assert "800316" in text or "GMMB" in text


class TestCrossAlgorithmConsistency:
    def test_all_algorithms_remove_planted_rows(self):
        dataset = make_synth(2, "easy", tuples_per_group=300, seed=4)
        problem = dataset.scorpion_query(c=0.1)
        planted = dataset.label_outer()
        for algorithm, kwargs in (("dt", {}), ("mc", {})):
            scorpion = Scorpion(algorithm=algorithm)
            result = scorpion.explain(problem)
            mask = result.best.predicate.mask(dataset.table)
            outlier_rows = dataset.outlier_row_indices()
            recall = (mask & planted)[outlier_rows].sum() / planted[outlier_rows].sum()
            assert recall > 0.5, algorithm

    def test_scorer_agreement_between_algorithms(self):
        dataset = make_synth(2, "easy", tuples_per_group=300, seed=4)
        problem = dataset.scorpion_query(c=0.1)
        scorer = InfluenceScorer(problem)
        dt = Scorpion(algorithm="dt").explain(problem)
        mc = Scorpion(algorithm="mc").explain(problem)
        # Reported influences are reproducible through a fresh scorer.
        assert scorer.score(dt.best.predicate) == pytest.approx(
            dt.best.influence, rel=1e-9)
        assert scorer.score(mc.best.predicate) == pytest.approx(
            mc.best.influence, rel=1e-9)


class TestBlackBoxEndToEnd:
    def test_naive_on_median_aggregate(self):
        rng = np.random.default_rng(7)
        from repro.aggregates import Median
        from repro.query.groupby import GroupByQuery
        from repro.table import ColumnKind, ColumnSpec, Schema, Table
        n_groups, per_group = 4, 80
        groups = np.repeat([f"g{i}" for i in range(n_groups)], per_group)
        x = rng.uniform(0, 100, n_groups * per_group)
        v = rng.normal(10, 0.5, n_groups * per_group)
        hot = np.isin(groups, ["g0", "g1"]) & (x > 50)
        v[hot] = 40.0  # shifts the median of g0/g1
        table = Table.from_columns(
            Schema([ColumnSpec("g", ColumnKind.DISCRETE),
                    ColumnSpec("x", ColumnKind.CONTINUOUS),
                    ColumnSpec("v", ColumnKind.CONTINUOUS)]),
            {"g": groups, "x": x, "v": v})
        problem = ScorpionQuery(table, GroupByQuery("g", Median(), "v"),
                                outliers=["g0", "g1"], holdouts=["g2", "g3"],
                                error_vectors=+1.0, c=0.2)
        result = Scorpion().explain(problem)
        assert result.algorithm == "naive"
        clause = result.best.predicate.clause_for("x")
        assert clause is not None and clause.lo >= 40
