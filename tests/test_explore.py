"""Unit tests for the c-explorer (the paper's Section 7 / 8.3.3 slider)."""

import pytest

from repro.core.explore import CExploration, CExplorer, LadderStep
from repro.core.scorpion import Scorpion
from repro.errors import PartitionerError

from tests.conftest import planted_sum_table


@pytest.fixture(scope="module")
def problem():
    from repro.aggregates import Sum
    from repro.core.problem import ScorpionQuery
    from repro.query.groupby import GroupByQuery
    table, outliers, holdouts = planted_sum_table(n_per_group=150)
    return ScorpionQuery(table, GroupByQuery("g", Sum(), "value"),
                         outliers=outliers, holdouts=holdouts,
                         error_vectors=+1.0, c=0.5)


class TestValidation:
    def test_empty_sweep_rejected(self):
        with pytest.raises(PartitionerError):
            CExplorer(c_values=())

    def test_negative_c_rejected(self):
        with pytest.raises(PartitionerError):
            CExplorer(c_values=(0.5, -0.1))

    def test_sweep_sorted_high_to_low(self):
        explorer = CExplorer(c_values=(0.1, 0.9, 0.5, 0.9))
        assert explorer.c_values == (0.9, 0.5, 0.1)


class TestExploration:
    @pytest.fixture(scope="class")
    def exploration(self, problem):
        return CExplorer(c_values=(1.0, 0.5, 0.2, 0.0)).explore(problem)

    def test_trace_covers_sweep(self, exploration):
        assert [c for c, _ in exploration.trace] == [1.0, 0.5, 0.2, 0.0]

    def test_ladder_steps_are_contiguous(self, exploration):
        steps = exploration.steps
        assert steps
        for step in steps:
            assert step.c_lo <= step.c_hi
        for previous, current in zip(steps, steps[1:]):
            assert current.c_hi <= previous.c_lo

    def test_adjacent_steps_distinct(self, exploration):
        predicates = exploration.predicates
        for a, b in zip(predicates, predicates[1:]):
            assert a != b

    def test_selectivity_decreases_down_the_ladder(self, exploration, problem):
        rows = [step.explanation.n_matched for step in exploration.steps]
        # Lower c (later steps) tolerates larger predicates.
        assert rows == sorted(rows)

    def test_at_picks_nearest_c(self, exploration):
        assert exploration.at(0.45).predicate == dict(exploration.trace)[0.5].predicate
        assert exploration.at(5.0).predicate == dict(exploration.trace)[1.0].predicate

    def test_to_string(self, exploration):
        rendered = exploration.to_string()
        assert "c-ladder" in rendered
        assert str(exploration.steps[0].predicate) in rendered

    def test_at_on_empty_raises(self):
        with pytest.raises(PartitionerError):
            CExploration(steps=[], trace=[]).at(0.5)


class TestCacheSharing:
    def test_dt_sweep_shares_cache(self, problem):
        # Force the DT path so the cache applies.
        scorpion = Scorpion(algorithm="dt", use_cache=True)
        CExplorer(scorpion, c_values=(0.5, 0.2, 0.0)).explore(problem)
        assert scorpion.cache.partition_misses == 1
        assert scorpion.cache.partition_hits == 2


class TestLadderStep:
    def test_str(self):
        from repro.predicates.clause import SetClause
        from repro.predicates.predicate import Predicate
        step = LadderStep(0.1, 0.5, Predicate([SetClause("s", ["a"])]), None)
        assert "c ∈ [0.1, 0.5]" in str(step)
