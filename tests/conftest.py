"""Shared fixtures: the paper's running example and small helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates import Avg, Sum
from repro.core.problem import ScorpionQuery
from repro.query.groupby import GroupByQuery
from repro.table import ColumnKind, ColumnSpec, Schema, Table

SENSOR_SCHEMA = Schema([
    ColumnSpec("time", ColumnKind.DISCRETE),
    ColumnSpec("sensorid", ColumnKind.DISCRETE),
    ColumnSpec("voltage", ColumnKind.CONTINUOUS),
    ColumnSpec("humidity", ColumnKind.CONTINUOUS),
    ColumnSpec("temp", ColumnKind.CONTINUOUS),
])

# Table 1 of the paper, verbatim.
SENSOR_ROWS = [
    ("11AM", 1, 2.64, 0.4, 34.0),
    ("11AM", 2, 2.65, 0.5, 35.0),
    ("11AM", 3, 2.63, 0.4, 35.0),
    ("12PM", 1, 2.70, 0.3, 35.0),
    ("12PM", 2, 2.70, 0.5, 35.0),
    ("12PM", 3, 2.30, 0.4, 100.0),
    ("1PM", 1, 2.70, 0.3, 35.0),
    ("1PM", 2, 2.70, 0.5, 35.0),
    ("1PM", 3, 2.30, 0.5, 80.0),
]


@pytest.fixture
def sensors_table() -> Table:
    """The paper's Table 1."""
    return Table.from_rows(SENSOR_SCHEMA, SENSOR_ROWS)


@pytest.fixture
def q1(sensors_table) -> GroupByQuery:
    """The paper's Q1: SELECT avg(temp) FROM sensors GROUP BY time."""
    return GroupByQuery("time", Avg(), "temp")


@pytest.fixture
def paper_problem(sensors_table, q1) -> ScorpionQuery:
    """Table 2's annotations: 12PM and 1PM are too-high outliers, 11AM is
    the hold-out."""
    return ScorpionQuery(
        table=sensors_table,
        query=q1,
        outliers=["12PM", "1PM"],
        holdouts=["11AM"],
        error_vectors=+1.0,
        c=1.0,
    )


def planted_sum_table(seed: int = 0, n_per_group: int = 100,
                      n_groups: int = 4) -> tuple[Table, list, list]:
    """A small SUM workload with a planted hot region in groups g0/g1:
    rows with a1 ∈ [40, 60] and state = 'TX' carry value 50 instead of 1.

    Returns (table, outlier_keys, holdout_keys).
    """
    rng = np.random.default_rng(seed)
    n = n_per_group * n_groups
    groups = np.repeat([f"g{i}" for i in range(n_groups)], n_per_group)
    a1 = rng.uniform(0, 100, n)
    state = rng.choice(["CA", "NY", "TX", "WA"], n)
    value = np.ones(n)
    hot = (np.isin(groups, ["g0", "g1"]) & (state == "TX")
           & (a1 >= 40) & (a1 <= 60))
    value[hot] = 50.0
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("a1", ColumnKind.CONTINUOUS),
        ColumnSpec("state", ColumnKind.DISCRETE),
        ColumnSpec("value", ColumnKind.CONTINUOUS),
    ])
    table = Table.from_columns(schema, {
        "g": groups, "a1": a1, "state": state, "value": value,
    })
    return table, ["g0", "g1"], [f"g{i}" for i in range(2, n_groups)]


@pytest.fixture
def sum_problem() -> ScorpionQuery:
    """A planted-subspace SUM problem (anti-monotone, MC-compatible)."""
    table, outliers, holdouts = planted_sum_table()
    return ScorpionQuery(
        table=table,
        query=GroupByQuery("g", Sum(), "value"),
        outliers=outliers,
        holdouts=holdouts,
        error_vectors=+1.0,
        c=0.5,
    )
